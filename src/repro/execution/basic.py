"""Row-at-a-time physical operators: filter, project, distinct, sort, union.

All expressions are compiled to closures at construction time; ``execute``
only runs the closures.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import operator

from repro.algebra.expressions import Expression
from repro.errors import MemoryBudgetExceeded, PlanError
from repro.execution.base import PhysicalOperator
from repro.execution.context import ExecutionContext
from repro.storage.schema import Column, Schema
from repro.storage.table import Row
from repro.storage.types import grouping_key


class _Descending:
    """Inverts comparisons for one element of a composite sort key.

    A single stable ascending sort — and, crucially, ``heapq.merge``
    during spill-run merging, which takes exactly one key function —
    can then express per-column DESC. Ties compare equal so stability
    is preserved, which keeps the spilled sort byte-identical to the
    in-memory right-to-left multi-pass sort.
    """

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __lt__(self, other):
        return other.key < self.key

    def __eq__(self, other):
        return other.key == self.key

    def __hash__(self):
        return hash(self.key)


class PFilter(PhysicalOperator):
    """Keep rows where the predicate evaluates to TRUE (not NULL)."""

    def __init__(self, child: PhysicalOperator, predicate: Expression):
        self.child = child
        self.predicate = predicate
        self.schema = child.schema
        self._evaluate = predicate.compile(child.schema)

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        evaluate = self._evaluate
        counters = ctx.counters
        record = None if ctx.metrics is None else ctx.metrics.record_for(self)
        for row in self.child.execute(ctx):
            counters.comparisons += 1
            if record is not None:
                record.comparisons += 1
            if evaluate(row, ctx) is True:
                counters.rows += 1
                yield row

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Filter[{self.predicate}]"


class PProject(PhysicalOperator):
    """Evaluate a list of expressions per row (no duplicate elimination)."""

    def __init__(
        self,
        child: PhysicalOperator,
        items: Sequence[tuple[Expression, str]],
    ):
        self.child = child
        self.items = tuple(items)
        self.schema = Schema(
            Column(name, expr.infer(child.schema)) for expr, name in self.items
        )
        self._evaluators = [expr.compile(child.schema) for expr, _ in self.items]

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        evaluators = self._evaluators
        counters = ctx.counters
        for row in self.child.execute(ctx):
            counters.rows += 1
            yield tuple(evaluate(row, ctx) for evaluate in evaluators)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        inner = ", ".join(name for _, name in self.items)
        return f"Project[{inner}]"


class PPrune(PhysicalOperator):
    """Positional column pruning preserving the original Column metadata."""

    def __init__(self, child: PhysicalOperator, references: Sequence[str]):
        self.child = child
        self.references = tuple(references)
        self._positions = child.schema.indices_of(references)
        self.schema = child.schema.project(references)
        self._getter = self._make_getter(self._positions)

    @staticmethod
    def _make_getter(positions):
        if len(positions) == 1:
            position = positions[0]
            return lambda row: (row[position],)
        return operator.itemgetter(*positions)

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        getter = self._getter
        counters = ctx.counters
        for row in self.child.execute(ctx):
            counters.rows += 1
            yield getter(row)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Prune[{', '.join(self.references)}]"


class PDistinct(PhysicalOperator):
    """Duplicate elimination over whole rows.

    Streaming hash dedup by default; under a governor memory budget it
    switches to a two-phase external algorithm (sort-by-key dedup, then
    sort-by-arrival) that emits exactly the streaming path's rows in
    exactly its first-appearance order while holding only a bounded
    buffer resident (DESIGN.md §14.5).
    """

    def __init__(self, child: PhysicalOperator):
        self.child = child
        self.schema = child.schema

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        counters = ctx.counters
        governor = ctx.governor
        threshold = None if governor is None else governor.spill_threshold()
        if threshold is not None:
            yield from self._execute_spill(ctx, governor, threshold)
            return
        seen: set[tuple] = set()
        width = len(self.schema)
        try:
            for row in self.child.execute(ctx):
                key = grouping_key(row)
                counters.hash_inserts += 1
                if key in seen:
                    continue
                seen.add(key)
                counters.buffered_cells += width
                if governor is not None:
                    governor.charge_cells(width)
                counters.rows += 1
                yield row
        finally:
            if governor is not None:
                governor.release_cells(len(seen) * width)

    def _execute_spill(
        self, ctx: ExecutionContext, governor, threshold: int
    ) -> Iterator[Row]:
        """External distinct preserving first-appearance order.

        Phase 1 buffers ``(seq, row)`` pairs and spills runs sorted by
        the row's grouping key; the stable merge makes the first item of
        every equal-key cluster the one with the globally smallest
        arrival ``seq``, so dropping the rest keeps exactly the row the
        streaming path would have emitted. Phase 2 external-sorts the
        survivors back into ``seq`` order. Phase 1's resident tail feeds
        the merge while phase 2 accumulates, so each phase flushes at
        half the threshold to stay inside the shared budget.
        """
        import operator as _operator

        from repro.storage.spill import SpillRun, merge_runs

        counters = ctx.counters
        record = None if ctx.metrics is None else ctx.metrics.record_for(self)
        width = max(1, len(self.schema))
        half = max(width, threshold // 2)
        key_of = lambda item: grouping_key(item[1])  # noqa: E731
        seq_of = _operator.itemgetter(0)
        runs1: list = []
        runs2: list = []
        buf1: list = []
        buf2: list = []
        state = {"res1": 0, "res2": 0, "spilled_rows": 0, "spill_bytes": 0}

        def flush(buf, runs, res, sort_key):
            buf.sort(key=sort_key)
            counters.comparisons += len(buf)
            run = SpillRun(buf)
            runs.append(run)
            state["spilled_rows"] += run.records
            state["spill_bytes"] += run.bytes_written
            governor.release_cells(state[res])
            state[res] = 0
            buf.clear()

        def charge(buf, runs, res, sort_key):
            if state[res] and state[res] + width > half:
                flush(buf, runs, res, sort_key)
            try:
                governor.charge_cells(width)
            except MemoryBudgetExceeded:
                if not state[res]:
                    raise
                flush(buf, runs, res, sort_key)
                governor.charge_cells(width)
            state[res] += width

        try:
            for seq, row in enumerate(self.child.execute(ctx)):
                counters.hash_inserts += 1
                counters.buffered_cells += width
                charge(buf1, runs1, "res1", key_of)
                buf1.append((seq, row))
            buf1.sort(key=key_of)
            counters.comparisons += len(buf1)
            merged = (
                merge_runs([*runs1, buf1], key=key_of) if runs1 else iter(buf1)
            )
            previous: object = object()  # never equals a grouping key
            for item in merged:
                key = key_of(item)
                if key == previous:
                    continue
                previous = key
                counters.buffered_cells += width
                charge(buf2, runs2, "res2", seq_of)
                buf2.append(item)
            # Phase 1 is fully consumed: free its tail before emitting.
            governor.release_cells(state["res1"])
            state["res1"] = 0
            for run in runs1:
                run.close()
            buf1.clear()
            buf2.sort(key=seq_of)
            counters.comparisons += len(buf2)
            counters.spill_runs += len(runs1) + len(runs2)
            counters.spilled_rows += state["spilled_rows"]
            counters.spill_bytes += state["spill_bytes"]
            if record is not None:
                record.spill_runs += len(runs1) + len(runs2)
                record.spilled_rows += state["spilled_rows"]
                record.spill_bytes += state["spill_bytes"]
            final = (
                merge_runs([*runs2, buf2], key=seq_of) if runs2 else buf2
            )
            for _seq, row in final:
                counters.rows += 1
                yield row
        finally:
            governor.release_cells(state["res1"] + state["res2"])
            for run in runs1:
                run.close()
            for run in runs2:
                run.close()

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)


class PSort(PhysicalOperator):
    """Sort; NULLS FIRST, stable, per-column asc/desc.

    Fully in-memory by default; under a governor memory budget it runs
    an external merge sort over :class:`~repro.storage.spill.SpillRun`
    files (DESIGN.md §14.5). The spilled output is byte-identical to the
    in-memory path: the composite key below is the single-pass
    equivalent of the stable right-to-left multi-pass sort, and the
    stable ``heapq.merge`` (runs in creation order, resident tail last)
    reproduces arrival-order ties exactly.
    """

    def __init__(
        self, child: PhysicalOperator, items: Sequence[tuple[str, bool]]
    ):
        self.child = child
        self.items = tuple(items)
        self.schema = child.schema
        self._positions = [
            (child.schema.index_of(reference), ascending)
            for reference, ascending in self.items
        ]

    def _composite_key(self, row: Row) -> tuple:
        parts = []
        for position, ascending in self._positions:
            part = grouping_key((row[position],))[0]
            parts.append(part if ascending else _Descending(part))
        return tuple(parts)

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        counters = ctx.counters
        governor = ctx.governor
        threshold = None if governor is None else governor.spill_threshold()
        if threshold is not None:
            yield from self._execute_spill(ctx, governor, threshold)
            return
        rows = list(self.child.execute(ctx))
        cells = len(rows) * len(self.schema)
        counters.buffered_cells += cells
        try:
            if governor is not None:
                governor.charge_cells(cells)
            # Stable multi-key sort: apply keys right-to-left.
            for position, ascending in reversed(self._positions):
                rows.sort(
                    key=lambda row: grouping_key((row[position],)),
                    reverse=not ascending,
                )
            counters.comparisons += len(rows)
            for row in rows:
                counters.rows += 1
                yield row
        finally:
            if governor is not None:
                governor.release_cells(cells)

    def _execute_spill(
        self, ctx: ExecutionContext, governor, threshold: int
    ) -> Iterator[Row]:
        """External merge sort under a memory budget.

        Mirrors GApply's ``_partition_sort_spill`` discipline: buffer up
        to the threshold, sort + write a run, release the resident
        cells; a rejected charge with something resident flushes and
        retries (the budget is shared with other operators), with
        nothing resident the budget is genuinely too small for one row
        and the typed error propagates.
        """
        from repro.storage.spill import SpillRun, merge_runs

        counters = ctx.counters
        record = None if ctx.metrics is None else ctx.metrics.record_for(self)
        width = max(1, len(self.schema))
        sort_key = self._composite_key
        runs: list = []
        buffer: list = []
        state = {"resident": 0, "spilled_rows": 0, "spill_bytes": 0}

        def flush_run():
            buffer.sort(key=sort_key)
            counters.comparisons += len(buffer)
            run = SpillRun(buffer)
            runs.append(run)
            state["spilled_rows"] += run.records
            state["spill_bytes"] += run.bytes_written
            governor.release_cells(state["resident"])
            state["resident"] = 0
            buffer.clear()

        try:
            for row in self.child.execute(ctx):
                counters.buffered_cells += width
                if state["resident"] and state["resident"] + width > threshold:
                    flush_run()
                try:
                    governor.charge_cells(width)
                except MemoryBudgetExceeded:
                    if not state["resident"]:
                        raise
                    flush_run()
                    governor.charge_cells(width)
                buffer.append(row)
                state["resident"] += width
            buffer.sort(key=sort_key)
            counters.comparisons += len(buffer)
            counters.spill_runs += len(runs)
            counters.spilled_rows += state["spilled_rows"]
            counters.spill_bytes += state["spill_bytes"]
            if record is not None:
                record.spill_runs += len(runs)
                record.spilled_rows += state["spilled_rows"]
                record.spill_bytes += state["spill_bytes"]
            merged = (
                merge_runs([*runs, buffer], key=sort_key) if runs else buffer
            )
            for row in merged:
                counters.rows += 1
                yield row
        finally:
            governor.release_cells(state["resident"])
            for run in runs:
                run.close()

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        inner = ", ".join(
            f"{ref}{'' if asc else ' DESC'}" for ref, asc in self.items
        )
        return f"Sort[{inner}]"


class PUnionAll(PhysicalOperator):
    """Concatenate children outputs (bag union)."""

    def __init__(self, inputs: Sequence[PhysicalOperator]):
        if not inputs:
            raise PlanError("PUnionAll requires at least one input")
        self.inputs = tuple(inputs)
        self.schema = Schema(
            Column(c.name, c.dtype) for c in self.inputs[0].schema
        )

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        counters = ctx.counters
        for child in self.inputs:
            for row in child.execute(ctx):
                counters.rows += 1
                yield row

    def children(self) -> tuple[PhysicalOperator, ...]:
        return self.inputs


class PRemap(PhysicalOperator):
    """Positional passthrough with explicit output column identities."""

    def __init__(
        self,
        child: PhysicalOperator,
        items: Sequence[tuple[str, Column]],
    ):
        self.child = child
        self.items = tuple(items)
        self._positions = [child.schema.index_of(ref) for ref, _ in self.items]
        columns = []
        for (reference, column), position in zip(self.items, self._positions):
            source = child.schema[position]
            columns.append(
                Column(
                    column.name,
                    source.dtype,
                    column.qualifier,
                    column.nullable or source.nullable,
                )
            )
        self.schema = Schema(columns)
        self._getter = PPrune._make_getter(self._positions)

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        getter = self._getter
        counters = ctx.counters
        for row in self.child.execute(ctx):
            counters.rows += 1
            yield getter(row)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)


class PAlias(PhysicalOperator):
    """Identity on rows; re-qualifies the output schema (derived-table AS)."""

    def __init__(self, child: PhysicalOperator, name: str):
        self.child = child
        self.name = name
        self.schema = child.schema.qualify(name)

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        return self.child.execute(ctx)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Alias({self.name})"


class PLimit(PhysicalOperator):
    """Emit at most ``limit`` rows (used by examples and the tagger demos)."""

    def __init__(self, child: PhysicalOperator, limit: int):
        self.child = child
        self.limit = limit
        self.schema = child.schema

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        if self.limit <= 0:
            return
        emitted = 0
        for row in self.child.execute(ctx):
            ctx.counters.rows += 1
            yield row
            emitted += 1
            if emitted >= self.limit:
                return

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"Limit[{self.limit}]"
