"""Execution context: parameter bindings and instrumentation counters.

Two kinds of parameters flow through plan execution:

* **scalar parameters** — bound per outer row by a correlated
  :class:`~repro.execution.apply.PApply`; read by compiled
  :class:`~repro.algebra.expressions.Parameter` expressions;
* **relation-valued parameters** — the paper's ``$group``: a whole multiset
  of tuples bound per group by :class:`~repro.execution.gapply.PGApply` and
  read by the per-group plan's GroupScan leaf.

Contexts are immutable-ish: binding produces a child context sharing the
same :class:`Counters`, so nested Apply/GApply levels never clobber each
other's bindings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.errors import ExecutionError
from repro.storage.table import Row

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.execution.governor import Governor
    from repro.observe.metrics import MetricsRegistry
    from repro.observe.trace import Tracer


@dataclass
class Counters:
    """Deterministic work counters, shared across one plan execution.

    Wall-clock time in a Python engine is noisy at small scales; these
    counters provide a stable cost proxy that benchmarks report alongside
    elapsed time. ``rows`` counts every tuple emitted by any operator;
    the named counters break work down by operator family.
    """

    rows: int = 0
    table_scan_rows: int = 0
    group_scan_rows: int = 0
    join_probes: int = 0
    hash_inserts: int = 0
    comparisons: int = 0
    inner_executions: int = 0  # per-row Apply inner plan runs
    group_executions: int = 0  # per-group PGQ runs
    groups_partitioned: int = 0
    peak_partition_rows: int = 0
    buffered_cells: int = 0  # cells (rows x width) written to partition/sort/distinct buffers
    spill_runs: int = 0      # partition-phase flushes to disk
    spilled_rows: int = 0    # rows written to spill run files
    spill_bytes: int = 0     # encoded bytes written to spill run files

    def snapshot(self) -> dict[str, int]:
        return {
            name: getattr(self, name)
            for name in (
                "rows",
                "table_scan_rows",
                "group_scan_rows",
                "join_probes",
                "hash_inserts",
                "comparisons",
                "inner_executions",
                "group_executions",
                "groups_partitioned",
                "peak_partition_rows",
                "buffered_cells",
                "spill_runs",
                "spilled_rows",
                "spill_bytes",
            )
        }

    def merge(self, other: "Counters") -> None:
        """Fold another counter set in: sums, except max for the peak.

        Merging is commutative and associative, which is what lets GApply's
        parallel execution phase count work locally in each worker and
        still report totals identical to the serial run regardless of
        completion order (results are merged in dispatch order anyway).
        """
        for name, value in other.snapshot().items():
            if name == "peak_partition_rows":
                self.peak_partition_rows = max(self.peak_partition_rows, value)
            else:
                setattr(self, name, getattr(self, name) + value)

    @classmethod
    def from_snapshot(cls, snapshot: Mapping[str, int]) -> "Counters":
        """Rebuild counters from a :meth:`snapshot` dict (how process
        workers ship their work counts across the pickle boundary)."""
        return cls(**snapshot)

    @property
    def total_work(self) -> int:
        """Single scalar summary used by benchmark tables."""
        return (
            self.rows
            + self.join_probes
            + self.hash_inserts
            + self.comparisons
            + self.inner_executions
            + self.group_executions
            + self.buffered_cells // 4
        )


@dataclass
class ExecutionContext:
    """Runtime state threaded through physical operators.

    ``metrics``/``tracer`` are the opt-in observability hooks
    (:mod:`repro.observe`): both default to None, and the executor's hot
    path touches neither unless they are set — plain execution allocates
    no observe objects at all (guarded by a tier-1 test).
    """

    counters: Counters = field(default_factory=Counters)
    scalars: Mapping[str, Any] = field(default_factory=dict)
    relations: Mapping[str, Sequence[Row]] = field(default_factory=dict)
    metrics: "MetricsRegistry | None" = None
    tracer: "Tracer | None" = None
    #: The query's resource governor (:mod:`repro.execution.governor`);
    #: None means ungoverned execution with zero per-row overhead.
    governor: "Governor | None" = None

    def scalar(self, name: str) -> Any:
        try:
            return self.scalars[name]
        except KeyError:
            raise ExecutionError(
                f"unbound scalar parameter {name!r}; bound: "
                + ", ".join(sorted(self.scalars))
            ) from None

    def relation(self, name: str) -> Sequence[Row]:
        try:
            return self.relations[name]
        except KeyError:
            raise ExecutionError(
                f"unbound relation parameter {name!r}; bound: "
                + ", ".join(sorted(self.relations))
            ) from None

    def with_scalars(self, updates: Mapping[str, Any]) -> "ExecutionContext":
        merged = dict(self.scalars)
        merged.update(updates)
        return ExecutionContext(
            self.counters, merged, self.relations, self.metrics, self.tracer,
            self.governor,
        )

    def with_relation(
        self, name: str, rows: Sequence[Row]
    ) -> "ExecutionContext":
        merged = dict(self.relations)
        merged[name] = rows
        return ExecutionContext(
            self.counters, self.scalars, merged, self.metrics, self.tracer,
            self.governor,
        )
