"""Physical operator protocol.

Physical operators follow the Volcano iterator model: ``execute(ctx)``
returns a fresh iterator over output rows. Plans are built once (expressions
compiled to closures against child schemas at construction) and can be
re-executed many times — GApply re-runs its per-group plan once per group,
and Apply re-runs its inner plan once per outer row, so cheap re-execution
is a load-bearing property here.

Two further contracts that parallel GApply execution relies on
(:mod:`repro.execution.parallel`):

* **re-entrancy** — ``execute`` may be called concurrently on the same
  operator instance with *distinct* contexts; all per-execution state must
  live in the generator frame (or the context), never on ``self``. Every
  operator in this package follows that rule, which is what lets the
  thread backend evaluate one per-group plan over many groups at once.
* **picklability** — a plan is shipped to process-pool workers by value
  (via cloudpickle, which handles the compiled expression closures), so
  operators must not hold OS resources (sockets, file handles) directly.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.execution.context import ExecutionContext
from repro.storage.schema import Schema
from repro.storage.table import Row, Table


class PhysicalOperator:
    """Base class; subclasses set ``schema`` and implement ``_execute``.

    ``execute`` is the public entry point: it dispatches straight to the
    subclass ``_execute`` when no metrics registry is attached (one ``is``
    check, no allocation), or through the registry's instrumented driver
    when one is. Operator code and tests may keep calling ``execute``
    exactly as before.
    """

    schema: Schema

    #: Cost-model row estimate for the logical source of this node, stamped
    #: by the planner when PlannerOptions.collect_estimates is on; rendered
    #: by EXPLAIN against actual cardinalities. None = not estimated.
    est_rows: float | None = None

    def execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        if ctx.metrics is None:
            iterator = self._execute(ctx)
        else:
            iterator = ctx.metrics.drive(self, ctx)
        if ctx.governor is None:
            return iterator
        return _governed(iterator, ctx.governor)

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        raise NotImplementedError

    def children(self) -> tuple["PhysicalOperator", ...]:
        return ()

    def label(self) -> str:
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [pad + self.label()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


def _governed(iterator: Iterator[Row], governor) -> Iterator[Row]:
    """Wrap an operator's row stream with the governor's stride check.

    Every operator in a governed plan passes its rows through one of
    these, so a timeout or cancellation is observed within one stride of
    rows at *some* level of the plan — including inside blocking
    operators, whose children are wrapped too.
    """
    governor.check()
    tick = governor.tick
    for row in iterator:
        tick()
        yield row


def run_plan(
    plan: PhysicalOperator, ctx: ExecutionContext | None = None
) -> list[Row]:
    """Execute a plan to completion, returning the materialized result."""
    if ctx is None:
        ctx = ExecutionContext()
    return list(plan.execute(ctx))


def run_plan_to_table(
    plan: PhysicalOperator, name: str = "result", ctx: ExecutionContext | None = None
) -> Table:
    """Execute a plan and wrap the result in a :class:`Table`."""
    table = Table(name, plan.schema)
    table.rows = run_plan(plan, ctx)
    return table


class PMaterialized(PhysicalOperator):
    """A physical leaf over an in-memory row list (testing / temp results)."""

    def __init__(self, schema: Schema, rows: Sequence[Row]):
        self.schema = schema
        self._rows = list(rows)

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        counters = ctx.counters
        for row in self._rows:
            counters.rows += 1
            yield row

    def label(self) -> str:
        return f"Materialized({len(self._rows)} rows)"
