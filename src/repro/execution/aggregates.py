"""Aggregation physical operators.

:class:`PHashAggregate` implements GROUP BY via a hash table of accumulator
lists, and degenerates to the scalar aggregate when the key list is empty
(one output row, even on empty input — ``count(*)`` is then 0 and other
aggregates NULL, the behaviour the paper's emptyOnEmpty analysis tracks).

:class:`PStreamAggregate` assumes its input is clustered on the grouping
columns and aggregates each run in constant memory. It exists because the
paper contrasts *blocked* GApply/hash aggregation with *pipelined* per-group
aggregation (Section 4.2's aggregate group-selection discussion): the
aggregate-selection rewrite becomes attractive precisely because a stream
aggregate over sorted input holds only a sum and a count per group.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.algebra.expressions import AggregateAccumulator, AggregateCall
from repro.errors import PlanError
from repro.execution.base import PhysicalOperator
from repro.execution.context import ExecutionContext
from repro.storage.schema import Column, Schema
from repro.storage.table import Row
from repro.storage.types import grouping_key


def _output_schema(
    child_schema: Schema, keys: Sequence[str], aggregates: Sequence[AggregateCall]
) -> Schema:
    columns = [child_schema.column(key) for key in keys]
    for aggregate in aggregates:
        columns.append(
            Column(aggregate.output_name(), aggregate.result_type(child_schema))
        )
    return Schema(columns)


class _CompiledAggregates:
    """Shared compilation of aggregate argument expressions."""

    def __init__(self, child_schema: Schema, aggregates: Sequence[AggregateCall]):
        self.calls = tuple(aggregates)
        self.argument_evaluators = [
            None if call.argument is None else call.argument.compile(child_schema)
            for call in self.calls
        ]

    def new_accumulators(self) -> list[AggregateAccumulator]:
        return [AggregateAccumulator(call) for call in self.calls]

    def feed(
        self,
        accumulators: Sequence[AggregateAccumulator],
        row: Row,
        ctx: ExecutionContext,
    ) -> None:
        for accumulator, evaluate in zip(accumulators, self.argument_evaluators):
            value = None if evaluate is None else evaluate(row, ctx)
            accumulator.add(value)

    @staticmethod
    def results(accumulators: Sequence[AggregateAccumulator]) -> tuple:
        return tuple(acc.result() for acc in accumulators)


class PHashAggregate(PhysicalOperator):
    """Hash-partitioned GROUP BY / scalar aggregate."""

    def __init__(
        self,
        child: PhysicalOperator,
        keys: Sequence[str],
        aggregates: Sequence[AggregateCall],
    ):
        self.child = child
        self.keys = tuple(keys)
        self.aggregates = tuple(aggregates)
        self.schema = _output_schema(child.schema, keys, aggregates)
        self._key_positions = child.schema.indices_of(keys)
        self._compiled = _CompiledAggregates(child.schema, aggregates)

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        counters = ctx.counters
        compiled = self._compiled
        if not self.keys:
            accumulators = compiled.new_accumulators()
            for row in self.child.execute(ctx):
                compiled.feed(accumulators, row, ctx)
            counters.rows += 1
            yield compiled.results(accumulators)
            return

        groups: dict[tuple, tuple[Row, list[AggregateAccumulator]]] = {}
        for row in self.child.execute(ctx):
            key_values = tuple(row[i] for i in self._key_positions)
            key = grouping_key(key_values)
            counters.hash_inserts += 1
            entry = groups.get(key)
            if entry is None:
                entry = (key_values, compiled.new_accumulators())
                groups[key] = entry
            compiled.feed(entry[1], row, ctx)
        for key_values, accumulators in groups.values():
            counters.rows += 1
            yield key_values + compiled.results(accumulators)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(self.keys)
        aggs = ", ".join(str(a) for a in self.aggregates)
        if not keys:
            return f"Aggregate[{aggs}]"
        return f"HashAggregate[{keys}][{aggs}]"


class PStreamAggregate(PhysicalOperator):
    """Aggregate over input clustered on the keys; constant memory per group.

    The caller guarantees clustering (usually by placing a :class:`PSort`
    underneath, or because the input is a single GApply group).
    """

    def __init__(
        self,
        child: PhysicalOperator,
        keys: Sequence[str],
        aggregates: Sequence[AggregateCall],
    ):
        if not keys:
            raise PlanError(
                "PStreamAggregate requires keys; use PHashAggregate"
            )
        self.child = child
        self.keys = tuple(keys)
        self.aggregates = tuple(aggregates)
        self.schema = _output_schema(child.schema, keys, aggregates)
        self._key_positions = child.schema.indices_of(keys)
        self._compiled = _CompiledAggregates(child.schema, aggregates)

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        counters = ctx.counters
        compiled = self._compiled
        current_key: tuple | None = None
        current_values: Row | None = None
        accumulators: list[AggregateAccumulator] = []
        for row in self.child.execute(ctx):
            key_values = tuple(row[i] for i in self._key_positions)
            key = grouping_key(key_values)
            if key != current_key:
                if current_key is not None:
                    counters.rows += 1
                    yield current_values + compiled.results(accumulators)
                current_key = key
                current_values = key_values
                accumulators = compiled.new_accumulators()
            compiled.feed(accumulators, row, ctx)
        if current_key is not None:
            counters.rows += 1
            yield current_values + compiled.results(accumulators)

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        keys = ", ".join(self.keys)
        aggs = ", ".join(str(a) for a in self.aggregates)
        return f"StreamAggregate[{keys}][{aggs}]"
