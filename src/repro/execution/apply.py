"""Correlated apply and exists physical operators.

``PApply`` is the classical subquery-execution operator the paper contrasts
GApply with: it re-executes its inner plan *once per outer row*, binding
scalar parameters from the outer row's columns. The redundant work this
causes for the no-GApply formulations of the paper's queries (re-joining
partsupp and part per supplier) is exactly what Figure 8 measures.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.execution.base import PhysicalOperator
from repro.execution.context import ExecutionContext
from repro.storage.schema import Schema
from repro.storage.table import Row


class PExists(PhysicalOperator):
    """{phi} if the child produces a row, else phi (empty); NOT for negated.

    Emits the zero-width tuple ``()`` so that the enclosing Apply's cross
    product ``{r} x {phi} = {r}`` works out mechanically.
    """

    def __init__(self, child: PhysicalOperator, negated: bool = False):
        self.child = child
        self.negated = negated
        self.schema = Schema(())

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        has_row = False
        for _ in self.child.execute(ctx):
            has_row = True
            break
        if has_row != self.negated:
            ctx.counters.rows += 1
            yield ()

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.child,)

    def label(self) -> str:
        return "NotExists" if self.negated else "Exists"


class PApply(PhysicalOperator):
    """R A E: for each outer row, bind parameters, run inner, cross results."""

    def __init__(
        self,
        outer: PhysicalOperator,
        inner: PhysicalOperator,
        bindings: Sequence[tuple[str, str]] = (),
    ):
        self.outer = outer
        self.inner = inner
        self.bindings = tuple(bindings)
        self._binding_positions = [
            (parameter, outer.schema.index_of(reference))
            for parameter, reference in self.bindings
        ]
        inner_schema = inner.schema
        if len(inner_schema) == 0:
            self.schema = outer.schema
        else:
            self.schema = outer.schema.concat(inner_schema)

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        counters = ctx.counters
        inner = self.inner
        zero_width_inner = len(inner.schema) == 0
        if not self._binding_positions:
            # Uncorrelated inner: its result cannot vary across outer rows
            # (any parameters it reads are bound by an ancestor and fixed
            # for this execution), so evaluate it once and reuse — the
            # standard invariant-subquery optimization. Without it, the
            # common per-group pattern `where x >= (select avg(x) from g)`
            # would cost O(|group|^2).
            cached: list[Row] | None = None
            for outer_row in self.outer.execute(ctx):
                if cached is None:
                    counters.inner_executions += 1
                    cached = list(inner.execute(ctx))
                for inner_row in cached:
                    counters.rows += 1
                    yield outer_row if zero_width_inner else outer_row + inner_row
            return
        for outer_row in self.outer.execute(ctx):
            bound = ctx.with_scalars(
                {
                    parameter: outer_row[position]
                    for parameter, position in self._binding_positions
                }
            )
            counters.inner_executions += 1
            for inner_row in inner.execute(bound):
                counters.rows += 1
                yield outer_row if zero_width_inner else outer_row + inner_row

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.outer, self.inner)

    def label(self) -> str:
        if not self.bindings:
            return "Apply"
        inner = ", ".join(f"${p}:={c}" for p, c in self.bindings)
        return f"Apply[{inner}]"
