"""Index-based physical operators.

:class:`PIndexSeek` replaces a filter-over-scan with an equality or range
probe into a :class:`~repro.storage.index.TableIndex`;
:class:`PIndexNestedLoopJoin` replaces a hash join when one side is a
(possibly filtered) indexed base table and the other side is small — the
access paths the paper's biggest rule benefits rely on (selective covering
ranges, group-id reconstruction joins).
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence

from repro.algebra.expressions import Expression
from repro.errors import PlanError
from repro.execution.base import PhysicalOperator
from repro.execution.context import ExecutionContext
from repro.storage.index import TableIndex
from repro.storage.table import Row, Table


class PIndexSeek(PhysicalOperator):
    """Seek into one table via an index.

    Exactly one of the two probe modes is used:

    * equality — ``equal_values`` (constants) probed against a (possibly
      multi-column) hash index;
    * range — ``low``/``high`` bounds against a single-column ordered
      index.

    ``residual`` filters the fetched rows (the non-indexed conjuncts).
    """

    def __init__(
        self,
        table: Table,
        index: TableIndex,
        alias: str | None = None,
        equal_values: Sequence[Any] | None = None,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        residual: Expression | None = None,
    ):
        if (equal_values is None) == (low is None and high is None):
            raise PlanError(
                "PIndexSeek needs exactly one of equality values or bounds"
            )
        self.table = table
        self.index = index
        self.alias = alias
        self.equal_values = (
            None if equal_values is None else tuple(equal_values)
        )
        self.low = low
        self.high = high
        self.low_inclusive = low_inclusive
        self.high_inclusive = high_inclusive
        self.schema = table.schema.qualify(alias or table.name)
        self.residual = residual
        self._evaluate_residual = (
            None if residual is None else residual.compile(self.schema)
        )

    def _fetch(self) -> Iterator[Row]:
        if self.equal_values is not None:
            yield from self.index.lookup(self.equal_values)
        else:
            yield from self.index.range_scan(
                self.low, self.high, self.low_inclusive, self.high_inclusive
            )

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        counters = ctx.counters
        residual = self._evaluate_residual
        record = None if ctx.metrics is None else ctx.metrics.record_for(self)
        if record is not None:
            record.index_probes += 1
        for row in self._fetch():
            counters.table_scan_rows += 1
            if residual is not None:
                counters.comparisons += 1
                if record is not None:
                    record.comparisons += 1
                if residual(row, ctx) is not True:
                    continue
            counters.rows += 1
            yield row

    def label(self) -> str:
        columns = ",".join(self.index.columns)
        if self.equal_values is not None:
            probe = f"= {self.equal_values}"
        else:
            low = "" if self.low is None else f"{self.low} <= "
            high = "" if self.high is None else f" <= {self.high}"
            probe = f"range {low}{columns}{high}"
        residual = "" if self.residual is None else f" AND {self.residual}"
        return f"IndexSeek({self.table.name}.{columns} {probe}{residual})"


class PIndexNestedLoopJoin(PhysicalOperator):
    """For each outer row, look up matching inner rows through an index.

    ``outer_key_positions`` name the outer row slots probed against the
    inner index; output rows are ``outer_row + inner_row`` when
    ``outer_is_left`` (default) or ``inner_row + outer_row`` otherwise, so
    the output schema matches the logical join's column order regardless of
    which side drives.
    """

    def __init__(
        self,
        outer: PhysicalOperator,
        inner_table: Table,
        index: TableIndex,
        outer_keys: Sequence[str],
        inner_alias: str | None = None,
        residual: Expression | None = None,
        outer_is_left: bool = True,
    ):
        self.outer = outer
        self.inner_table = inner_table
        self.index = index
        self.outer_keys = tuple(outer_keys)
        self.inner_alias = inner_alias
        self.outer_is_left = outer_is_left
        self._outer_positions = outer.schema.indices_of(outer_keys)
        inner_schema = inner_table.schema.qualify(
            inner_alias or inner_table.name
        )
        if outer_is_left:
            self.schema = outer.schema.concat(inner_schema)
        else:
            self.schema = inner_schema.concat(outer.schema)
        self.residual = residual
        self._evaluate_residual = (
            None if residual is None else residual.compile(self.schema)
        )

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        counters = ctx.counters
        residual = self._evaluate_residual
        outer_is_left = self.outer_is_left
        lookup = self.index.lookup
        positions = self._outer_positions
        record = None if ctx.metrics is None else ctx.metrics.record_for(self)
        for outer_row in self.outer.execute(ctx):
            values = tuple(outer_row[i] for i in positions)
            counters.join_probes += 1
            if record is not None:
                record.index_probes += 1
            for inner_row in lookup(values):
                combined = (
                    outer_row + inner_row
                    if outer_is_left
                    else inner_row + outer_row
                )
                if residual is not None:
                    counters.comparisons += 1
                    if residual(combined, ctx) is not True:
                        continue
                counters.rows += 1
                yield combined

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.outer,)

    def label(self) -> str:
        keys = ", ".join(
            f"{o}={i}" for o, i in zip(self.outer_keys, self.index.columns)
        )
        side = "" if self.outer_is_left else " (inner side left)"
        return (
            f"IndexNLJoin({self.inner_table.name} via "
            f"{','.join(self.index.columns)})[{keys}]{side}"
        )
