"""Join physical operators: hash equijoin and nested-loop join.

The planner prefers :class:`PHashJoin` whenever the join predicate contains
at least one equality conjunct between the two sides; residual (non-equi)
conjuncts are evaluated against the combined row. :class:`PNestedLoopJoin`
handles cross joins and pure theta joins.

Both are inner joins unless ``kind`` says otherwise; SEMI/ANTI support the
binder's EXISTS/IN decorrelation and the optimizer's group-selection rule.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.algebra.expressions import Expression
from repro.algebra.operators import JoinKind
from repro.errors import PlanError
from repro.execution.base import PhysicalOperator
from repro.execution.context import ExecutionContext
from repro.storage.table import Row
from repro.storage.types import grouping_key


class PNestedLoopJoin(PhysicalOperator):
    """Materialize the right side; loop left x right with a predicate."""

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        predicate: Expression | None = None,
        kind: str = JoinKind.INNER,
    ):
        if kind not in (JoinKind.INNER, JoinKind.CROSS, JoinKind.SEMI, JoinKind.ANTI):
            raise PlanError(f"PNestedLoopJoin does not support kind {kind!r}")
        self.left = left
        self.right = right
        self.predicate = predicate
        self.kind = kind
        combined = left.schema.concat(right.schema)
        self.schema = left.schema if kind in (JoinKind.SEMI, JoinKind.ANTI) else combined
        self._evaluate = (
            None if predicate is None else predicate.compile(combined)
        )

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        counters = ctx.counters
        right_rows = list(self.right.execute(ctx))
        evaluate = self._evaluate
        semi = self.kind == JoinKind.SEMI
        anti = self.kind == JoinKind.ANTI
        for left_row in self.left.execute(ctx):
            matched = False
            for right_row in right_rows:
                counters.join_probes += 1
                combined = left_row + right_row
                if evaluate is None or evaluate(combined, ctx) is True:
                    matched = True
                    if semi or anti:
                        break
                    counters.rows += 1
                    yield combined
            if semi and matched:
                counters.rows += 1
                yield left_row
            elif anti and not matched:
                counters.rows += 1
                yield left_row

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        predicate = "" if self.predicate is None else f"[{self.predicate}]"
        return f"NestedLoopJoin:{self.kind}{predicate}"


class PHashJoin(PhysicalOperator):
    """Build a hash table on the right side keys; probe with left rows.

    ``left_keys``/``right_keys`` are column references into the respective
    child schemas. ``residual`` is an optional extra predicate evaluated on
    the combined row (it covers non-equi conjuncts of the join condition).

    NULL join keys never match (SQL equality semantics), so rows with a NULL
    key are skipped on both sides.
    """

    def __init__(
        self,
        left: PhysicalOperator,
        right: PhysicalOperator,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        residual: Expression | None = None,
        kind: str = JoinKind.INNER,
        build_left: bool = False,
    ):
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError("hash join requires matching, non-empty key lists")
        if kind not in (JoinKind.INNER, JoinKind.SEMI, JoinKind.ANTI):
            raise PlanError(f"PHashJoin does not support kind {kind!r}")
        if build_left and kind != JoinKind.INNER:
            raise PlanError("build_left is only supported for inner joins")
        self.left = left
        self.right = right
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)
        self.residual = residual
        self.kind = kind
        self.build_left = build_left
        combined = left.schema.concat(right.schema)
        self.schema = left.schema if kind in (JoinKind.SEMI, JoinKind.ANTI) else combined
        self._left_positions = left.schema.indices_of(left_keys)
        self._right_positions = right.schema.indices_of(right_keys)
        self._evaluate_residual = (
            None if residual is None else residual.compile(combined)
        )

    def _execute(self, ctx: ExecutionContext) -> Iterator[Row]:
        if self.build_left:
            yield from self._execute_build_left(ctx)
            return
        counters = ctx.counters
        buckets: dict[tuple, list[Row]] = {}
        build_width = len(self.right.schema)
        for row in self.right.execute(ctx):
            values = tuple(row[i] for i in self._right_positions)
            if any(v is None for v in values):
                continue
            counters.hash_inserts += 1
            counters.buffered_cells += build_width
            buckets.setdefault(grouping_key(values), []).append(row)

        residual = self._evaluate_residual
        semi = self.kind == JoinKind.SEMI
        anti = self.kind == JoinKind.ANTI
        for left_row in self.left.execute(ctx):
            values = tuple(left_row[i] for i in self._left_positions)
            if any(v is None for v in values):
                if anti:
                    counters.rows += 1
                    yield left_row
                continue
            counters.join_probes += 1
            matches = buckets.get(grouping_key(values), ())
            matched = False
            for right_row in matches:
                combined = left_row + right_row
                if residual is None or residual(combined, ctx) is True:
                    matched = True
                    if semi or anti:
                        break
                    counters.rows += 1
                    yield combined
            if semi and matched:
                counters.rows += 1
                yield left_row
            elif anti and not matched:
                counters.rows += 1
                yield left_row

    def _execute_build_left(self, ctx: ExecutionContext) -> Iterator[Row]:
        """Inner join building the hash table on the (smaller) left input;
        output column order is unchanged (left ++ right)."""
        counters = ctx.counters
        buckets: dict[tuple, list[Row]] = {}
        build_width = len(self.left.schema)
        for row in self.left.execute(ctx):
            values = tuple(row[i] for i in self._left_positions)
            if any(v is None for v in values):
                continue
            counters.hash_inserts += 1
            counters.buffered_cells += build_width
            buckets.setdefault(grouping_key(values), []).append(row)
        residual = self._evaluate_residual
        for right_row in self.right.execute(ctx):
            values = tuple(right_row[i] for i in self._right_positions)
            if any(v is None for v in values):
                continue
            counters.join_probes += 1
            for left_row in buckets.get(grouping_key(values), ()):
                combined = left_row + right_row
                if residual is None or residual(combined, ctx) is True:
                    counters.rows += 1
                    yield combined

    def children(self) -> tuple[PhysicalOperator, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        keys = ", ".join(
            f"{lk}={rk}" for lk, rk in zip(self.left_keys, self.right_keys)
        )
        residual = "" if self.residual is None else f" AND {self.residual}"
        return f"HashJoin:{self.kind}[{keys}{residual}]"
