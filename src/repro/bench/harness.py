"""Measurement utilities shared by all benchmarks.

The paper measures elapsed and CPU time on a cold buffer pool, averaging
repeated runs. A Python interpreter has neither a buffer pool nor stable
microsecond timings, so the harness reports two numbers per plan:

* ``elapsed`` — best-of-N wall-clock seconds for executing the *physical*
  plan (planning and optimization excluded, matching the paper's
  server-side execution times);
* ``work`` — the executor's deterministic work-unit counter
  (:attr:`~repro.execution.context.Counters.total_work`), a noise-free
  cost proxy that the EXPERIMENTS.md tables quote alongside time.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.algebra.operators import LogicalOperator
from repro.execution.base import PhysicalOperator, run_plan
from repro.execution.context import Counters, ExecutionContext
from repro.optimizer.engine import Optimizer, apply_rule_once
from repro.optimizer.planner import (
    ENGINES,
    VECTOR_ENGINE,
    VOLCANO_ENGINE,
    Planner,
    PlannerOptions,
)
from repro.optimizer.rules import DEFAULT_RULES, Rule
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage.catalog import Catalog

DEFAULT_REPETITIONS = 3


@dataclass(frozen=True)
class Measurement:
    """One measured plan execution.

    ``backend``/``parallelism`` record which GApply execution-phase pool
    produced the numbers, so result tables can tell a serial row from a
    4-worker row (the merged ``work`` is identical by construction; only
    ``elapsed`` should differ).
    """

    elapsed: float
    work: int
    rows: int
    scan_rows: int = 0  # base-table rows read (redundant-join indicator)
    peak_rows: int = 0  # peak rows buffered by partitioning (memory proxy)
    cells: int = 0      # cells written to partition/sort/hash buffers
    backend: str = "serial"
    parallelism: int = 1
    #: Per-operator metrics snapshot of the best run (path -> counters),
    #: populated only when the measurement asked for metrics collection.
    metrics: dict | None = None
    #: Which execution engine drove the plan: ``"volcano"`` (row-at-a-time
    #: iterators) or ``"vector"`` (batched pipelines). Work counters are
    #: engine-independent by the equivalence contract; only elapsed moves.
    engine: str = VOLCANO_ENGINE

    def ratio_to(self, other: "Measurement") -> float:
        """self/other elapsed-time ratio (``other`` is the faster plan)."""
        if other.elapsed == 0:
            return float("inf")
        return self.elapsed / other.elapsed

    def work_ratio_to(self, other: "Measurement") -> float:
        if other.work == 0:
            return float("inf")
        return self.work / other.work

    def to_dict(self) -> dict:
        """The JSON measurement record (see :func:`write_measurements_json`)."""
        record = {
            "elapsed": self.elapsed,
            "work": self.work,
            "rows": self.rows,
            "scan_rows": self.scan_rows,
            "peak_rows": self.peak_rows,
            "cells": self.cells,
            "backend": self.backend,
            "parallelism": self.parallelism,
            "engine": self.engine,
        }
        if self.metrics is not None:
            record["metrics"] = self.metrics
        return record


def measure_physical(
    plan: PhysicalOperator,
    repetitions: int = DEFAULT_REPETITIONS,
    backend: str = "serial",
    parallelism: int = 1,
    collect_metrics: bool = False,
    engine: str = VOLCANO_ENGINE,
) -> Measurement:
    """Best-of-N execution of a physical plan.

    ``backend``/``parallelism`` are recorded into the measurement; the
    plan itself already carries the knobs (set at lowering time).

    ``engine`` selects the driving loop: Volcano iterators or the
    batched vector pipelines. Vector compilation happens *outside* the
    timed region — like planning and lowering, it is a once-per-plan
    cost, and ``elapsed`` measures execution alone in both engines.

    ``collect_metrics`` attaches a fresh per-operator metrics registry to
    every repetition and stores the best run's snapshot (with timings) on
    the measurement. Off by default: instrumentation costs a clock pair
    per row, which would pollute ``elapsed`` for measurements that did
    not ask for it.
    """
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
    vector_plan = None
    if engine == VECTOR_ENGINE:
        from repro.execution.vector.compiler import compile_plan

        vector_plan = compile_plan(plan)
    best = float("inf")
    counters = Counters()
    rows = 0
    metrics_snapshot = None
    for _ in range(repetitions):
        registry = None
        if collect_metrics:
            from repro.observe.metrics import MetricsRegistry

            registry = MetricsRegistry()
            registry.register_plan(plan)
        ctx = ExecutionContext(metrics=registry)
        start = time.perf_counter()
        if vector_plan is not None:
            result = vector_plan.run(ctx)
        else:
            result = run_plan(plan, ctx)
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            counters = ctx.counters
            rows = len(result)
            if registry is not None:
                metrics_snapshot = registry.snapshot(include_time=True)
    return Measurement(
        best,
        counters.total_work,
        rows,
        counters.table_scan_rows,
        counters.peak_partition_rows,
        counters.buffered_cells,
        backend,
        parallelism,
        metrics_snapshot,
        engine,
    )


def measurements_to_json(
    named: "Sequence[tuple[str, Measurement]]", **meta: object
) -> dict:
    """The benchmark JSON document: ``meta`` + one record per measurement.

    This is the interchange format every runnable benchmark emits (the
    ``--smoke`` CI artifacts and ``python -m repro.bench.parallel --json``
    both use it), so regression tooling reads one shape everywhere.
    """
    return {
        "meta": dict(meta),
        "measurements": [
            {"name": name, **measurement.to_dict()}
            for name, measurement in named
        ],
    }


def write_measurements_json(
    path: "str | Path", named: "Sequence[tuple[str, Measurement]]", **meta: object
) -> None:
    """Serialize :func:`measurements_to_json` to ``path``."""
    Path(path).write_text(
        json.dumps(measurements_to_json(named, **meta), indent=2) + "\n"
    )


def bind(catalog: Catalog, sql: str) -> LogicalOperator:
    return Binder(catalog).bind(parse(sql))


def optimize_with(
    catalog: Catalog,
    logical: LogicalOperator,
    rules: list[Rule] | None = None,
) -> LogicalOperator:
    return Optimizer(catalog, rules).optimize(logical).best


def lower(
    catalog: Catalog,
    logical: LogicalOperator,
    options: PlannerOptions | None = None,
) -> PhysicalOperator:
    return Planner(catalog, options).plan(logical)


def measure_sql(
    catalog: Catalog,
    sql: str,
    optimize: bool = True,
    options: PlannerOptions | None = None,
    repetitions: int = DEFAULT_REPETITIONS,
    collect_metrics: bool = False,
    engine: str | None = None,
) -> Measurement:
    """Bind, (optionally) optimize, lower and measure one SQL query.

    The GApply backend/parallelism from ``options`` are stamped onto the
    measurement so downstream tables can label serial vs parallel runs.
    ``engine`` overrides the engine from ``options`` (default Volcano).
    """
    logical = bind(catalog, sql)
    if optimize:
        logical = optimize_with(catalog, logical)
    backend = options.gapply_backend if options else "serial"
    parallelism = options.gapply_parallelism if options else 1
    if engine is None:
        engine = options.engine if options else VOLCANO_ENGINE
    return measure_physical(
        lower(catalog, logical, options), repetitions, backend, parallelism,
        collect_metrics, engine,
    )


def rules_without(excluded: str) -> list[Rule]:
    """The default rule set minus the named rule (Table-1 methodology)."""
    return [rule for rule in DEFAULT_RULES if rule.name != excluded]


@dataclass(frozen=True)
class RuleEffect:
    """One Table-1 data point: the same query with and without one rule."""

    parameter: object
    without_rule: Measurement
    with_rule: Measurement
    fired: bool

    @property
    def benefit(self) -> float:
        """time(without) / time(with); > 1 means the rule helped."""
        return self.without_rule.ratio_to(self.with_rule)

    @property
    def work_benefit(self) -> float:
        return self.without_rule.work_ratio_to(self.with_rule)

    @property
    def cells_benefit(self) -> float:
        """Buffered-cells ratio — the I/O/memory story behind the
        projection and aggregate-selection rules."""
        if self.with_rule.cells == 0:
            return float("inf") if self.without_rule.cells else 1.0
        return self.without_rule.cells / self.with_rule.cells

    @property
    def memory_benefit(self) -> float:
        """Peak partition-buffer rows ratio (Section 4.2's argument)."""
        if self.with_rule.peak_rows == 0:
            return float("inf") if self.without_rule.peak_rows else 1.0
        return self.without_rule.peak_rows / self.with_rule.peak_rows


#: The "traditional" rules (Selinger-style normalizations the paper takes
#: for granted: annotated join trees, column pruning). Applied before a
#: rule under test is forced, and as cleanup afterwards on both sides.
TRADITIONAL_RULE_NAMES = ("select_pushdown", "narrow_prune", "collapse_project")


def traditional_rules() -> list[Rule]:
    return [r for r in DEFAULT_RULES if r.name in TRADITIONAL_RULE_NAMES]


def measure_rule_effect(
    catalog: Catalog,
    sql: str,
    rule: Rule,
    parameter: object,
    options: PlannerOptions | None = None,
    repetitions: int = DEFAULT_REPETITIONS,
) -> RuleEffect:
    """The paper's per-parameter methodology for Table 1.

    1. Normalize the bound plan with only the traditional rules (annotated
       join tree, column pruning) — the paper's Section 4 starting shape.
    2. *without* — the normalized plan optimized by every rule except the
       one under test.
    3. *with* — the rule under test fired once on the normalized plan
       (forced, whether or not the cost model would choose it — Table 1
       shows rules can lose), then the same cleanup as step 2.
    """
    normalized = optimize_with(catalog, bind(catalog, sql), traditional_rules())
    forced = apply_rule_once(normalized, rule, catalog)
    base_logical = optimize_with(catalog, normalized, rules_without(rule.name))
    without = measure_physical(lower(catalog, base_logical, options), repetitions)
    if forced is None:
        return RuleEffect(parameter, without, without, fired=False)
    treated_logical = optimize_with(catalog, forced, rules_without(rule.name))
    with_rule = measure_physical(
        lower(catalog, treated_logical, options), repetitions
    )
    return RuleEffect(parameter, without, with_rule, fired=True)


@dataclass(frozen=True)
class RuleSummary:
    """A Table-1 row: max / average / average-over-wins benefit."""

    rule_name: str
    title: str
    effects: tuple[RuleEffect, ...]

    @property
    def maximum_benefit(self) -> float:
        return max((e.benefit for e in self.effects if e.fired), default=1.0)

    @property
    def average_benefit(self) -> float:
        fired = [e.benefit for e in self.effects if e.fired]
        if not fired:
            return 1.0
        return sum(fired) / len(fired)

    @property
    def average_over_wins(self) -> float:
        wins = [e.benefit for e in self.effects if e.fired and e.benefit > 1.0]
        if not wins:
            return 1.0
        return sum(wins) / len(wins)

    @property
    def always_wins(self) -> bool:
        return all(e.benefit > 1.0 for e in self.effects if e.fired)
