"""Benchmark harness: Figure 8, Table 1, and the client-side simulation."""

from repro.bench.harness import (
    Measurement,
    RuleEffect,
    RuleSummary,
    measure_physical,
    measure_rule_effect,
    measure_sql,
    rules_without,
)

__all__ = [
    "Measurement",
    "RuleEffect",
    "RuleSummary",
    "measure_physical",
    "measure_rule_effect",
    "measure_sql",
    "rules_without",
]
