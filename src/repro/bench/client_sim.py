"""The paper's client-side simulation of GApply (Section 5.1).

The paper could not control GApply invocation on SQL Server 2000, so it
simulated the operator from the client:

* **Partition phase** — store the outer query's result in a temp table
  whose non-grouping columns are concatenated into one ``miscCols`` value
  (xor-ed with a running counter so every value is distinct), then run

      Q_partition:     select <keys>, count(distinct miscCols)
                       from tmpTable group by <keys>

  which forces the server to manage every miscCols value — the cost of
  hash-partitioning. The extra work (hashing/comparing the miscCols
  strings) is estimated by

      Q_overestimate:  select count(distinct miscCols) from tmpTable

  and subtracted.

* **Execution phase** — for each distinct key, extract that key's rows
  into a temp table and run the per-group query against it.

This module re-implements that protocol *inside our engine* so we can
reproduce the paper's E8 calibration: on the one query where the paper got
a native server-side GApply (Q4), the client-side simulation took ~20%
longer. We compare the simulated total against the native PGApply plan.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass

from repro.api import Database
from repro.bench.harness import Measurement, bind, lower, measure_physical, optimize_with
from repro.execution.base import run_plan
from repro.execution.context import ExecutionContext
from repro.storage.schema import Column, Schema
from repro.storage.table import Table
from repro.storage.types import DataType, grouping_key
from repro.workloads.queries import query_by_name
from repro.workloads.tpch import TpchConfig, load_tpch


@dataclass(frozen=True)
class SimulationResult:
    """Timings of the simulated phases vs the native operator."""

    outer_time: float
    partition_time: float
    overestimate_time: float
    execution_time: float
    native: Measurement
    rows: int

    @property
    def simulated_total(self) -> float:
        """The paper's accounting: outer + partition - overestimate +
        per-group execution."""
        return (
            self.outer_time
            + self.partition_time
            - self.overestimate_time
            + self.execution_time
        )

    @property
    def overhead(self) -> float:
        """simulated / native elapsed ratio (paper: ~1.2 for Q4)."""
        if self.native.elapsed == 0:
            return float("inf")
        return self.simulated_total / self.native.elapsed


def _misc_concat(row: tuple, key_positions: list[int], counter: int) -> str:
    """Concatenate the non-grouping columns, xor-ed with a counter.

    The paper xors miscCols with an incrementing counter to force all
    values distinct; string-level, we append the counter, which has the
    same effect (every value unique, width preserved up to digits).
    """
    parts = [
        "NULL" if value is None else str(value)
        for position, value in enumerate(row)
        if position not in key_positions
    ]
    return "|".join(parts) + f"#{counter}"


def simulate_gapply(
    db: Database,
    outer_sql: str,
    grouping_columns: list[str],
    per_group_sql: str,
    group_variable: str = "tmpgroup",
) -> tuple[float, float, float, float, int]:
    """Run the Section-5.1 protocol; returns phase timings and row count.

    ``per_group_sql`` references ``group_variable`` as its only table; it
    is re-bound and re-run once per group against a registered temp table,
    exactly like the paper's per-group extraction step.
    """
    catalog = db.catalog

    # ---- run the outer query and store it (tmpTable with miscCols) -----
    start = time.perf_counter()
    outer_result = db.sql(outer_sql)
    key_positions = [
        outer_result.schema.index_of(reference) for reference in grouping_columns
    ]
    misc_schema = Schema(
        tuple(
            Column(
                outer_result.schema[i].name,
                outer_result.schema[i].dtype,
                "tmptable",
            )
            for i in key_positions
        )
        + (Column("misccols", DataType.STRING, "tmptable"),)
    )
    tmp_table = Table("tmptable", misc_schema)
    for counter, row in enumerate(outer_result.rows):
        keys = tuple(row[i] for i in key_positions)
        tmp_table.rows.append(keys + (_misc_concat(row, key_positions, counter),))
    catalog.register(tmp_table, replace=True)
    catalog.invalidate_statistics("tmptable")
    outer_time = time.perf_counter() - start

    # ---- Q_partition ----------------------------------------------------
    key_list = ", ".join(misc_schema[i].name for i in range(len(key_positions)))
    start = time.perf_counter()
    partition_result = db.sql(
        f"select {key_list}, count(distinct misccols) from tmptable "
        f"group by {key_list}"
    )
    partition_time = time.perf_counter() - start

    # ---- Q_overestimate --------------------------------------------------
    start = time.perf_counter()
    db.sql("select count(distinct misccols) from tmptable")
    overestimate_time = time.perf_counter() - start

    # ---- execution phase: per-group extraction + per-group query ---------
    groups: dict[tuple, list[tuple]] = {}
    for row in outer_result.rows:
        key = grouping_key(tuple(row[i] for i in key_positions))
        groups.setdefault(key, []).append(row)

    group_schema = Schema(
        tuple(
            Column(column.name, column.dtype, group_variable)
            for column in outer_result.schema
        )
    )
    group_table = Table(group_variable, group_schema)
    catalog.register(group_table, replace=True)
    per_group_plan_cache = None
    output_rows = 0
    start = time.perf_counter()
    for rows in groups.values():
        group_table.rows = rows
        group_table._invalidate_indexes()
        if per_group_plan_cache is None:
            logical = bind(catalog, per_group_sql)
            per_group_plan_cache = lower(catalog, logical)
        output_rows += len(run_plan(per_group_plan_cache, ExecutionContext()))
    execution_time = time.perf_counter() - start

    catalog.drop("tmptable")
    catalog.drop(group_variable)
    return outer_time, partition_time, overestimate_time, execution_time, output_rows


def run_q4_calibration(scale: float = 0.1) -> SimulationResult:
    """E8: simulate Q4's GApply from the client; compare with the native
    operator (the paper's only wholly-server-side data point)."""
    db = Database()
    load_tpch(db.catalog, TpchConfig(scale=scale))

    outer_sql = (
        "select ps_suppkey, p_size, p_name, p_retailprice "
        "from partsupp, part where ps_partkey = p_partkey"
    )
    per_group_sql = (
        "select p_name, p_retailprice from tmpgroup "
        "where p_retailprice > (select avg(p_retailprice) from tmpgroup)"
    )
    phases = simulate_gapply(
        db, outer_sql, ["ps_suppkey", "p_size"], per_group_sql
    )
    outer_time, partition_time, overestimate_time, execution_time, rows = phases

    native_logical = optimize_with(
        db.catalog, bind(db.catalog, query_by_name("Q4").gapply_sql)
    )
    native = measure_physical(lower(db.catalog, native_logical))
    return SimulationResult(
        outer_time,
        partition_time,
        overestimate_time,
        execution_time,
        native,
        rows,
    )


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    scale = float(argv[0]) if argv else 0.1
    result = run_q4_calibration(scale)
    print("E8 - client-side simulation of GApply (Q4), Section 5.1")
    print(f"  outer query:        {result.outer_time * 1e3:8.1f} ms")
    print(f"  Q_partition:        {result.partition_time * 1e3:8.1f} ms")
    print(f"  Q_overestimate:    -{result.overestimate_time * 1e3:8.1f} ms")
    print(f"  per-group queries:  {result.execution_time * 1e3:8.1f} ms")
    print(f"  simulated total:    {result.simulated_total * 1e3:8.1f} ms")
    print(f"  native GApply:      {result.native.elapsed * 1e3:8.1f} ms")
    print(f"  overhead ratio:     {result.overhead:8.2f}x   (paper: ~1.2x)")


if __name__ == "__main__":
    main()
