"""Table 1: effect of the transformation rules.

Run as a module to print the table::

    python -m repro.bench.table1 [scale]

For every rule the paper benchmarks, the harness sweeps the corresponding
parameterized query (:mod:`repro.workloads.rule_queries`), measures each
instance with the rule forced off and forced on, and reports the paper's
three statistics: maximum benefit, average benefit, and average over wins.
"""

from __future__ import annotations

import sys

from repro.bench.harness import RuleSummary, measure_rule_effect
from repro.optimizer.rules import rule_by_name
from repro.storage.catalog import Catalog
from repro.workloads.rule_queries import TABLE1_SWEEPS, RuleSweep
from repro.workloads.tpch import TpchConfig, load_tpch

#: Table 1 as printed in the paper (max / avg / avg-over-wins).
PAPER_TABLE1 = {
    "selection_before_gapply": (732.94, 124.97, 124.97),
    "projection_before_gapply": (5.05, 3.42, 3.42),
    "gapply_to_groupby": (1.3, 1.19, 1.19),
    "exists_group_selection": (14.6, 1.67, 1.93),
    "aggregate_group_selection": (6.3, 2.08, 3.72),
    "invariant_grouping": (2.56, 1.32, 1.32),
}

DEFAULT_SCALE = 0.2


def _ratio(value: float) -> str:
    if value == float("inf"):
        return "  >999x"
    return f"{value:>6.2f}x"


def run_sweep(
    catalog: Catalog, sweep: RuleSweep, repetitions: int = 3
) -> RuleSummary:
    rule = rule_by_name(sweep.rule_name)
    effects = []
    for parameter, sql in sweep.instances():
        effects.append(
            measure_rule_effect(
                catalog, sql, rule, parameter, repetitions=repetitions
            )
        )
    return RuleSummary(sweep.rule_name, sweep.title, tuple(effects))


def run_table1(
    scale: float = DEFAULT_SCALE, repetitions: int = 3
) -> list[RuleSummary]:
    catalog = Catalog()
    load_tpch(catalog, TpchConfig(scale=scale))
    return [run_sweep(catalog, sweep, repetitions) for sweep in TABLE1_SWEEPS]


def format_summaries(summaries: list[RuleSummary]) -> str:
    lines = [
        "Table 1 — effect of transformation rules "
        "(benefit = time without rule / time with rule)",
        "",
        f"{'rule':<34} {'max':>9} {'avg':>8} {'avg/wins':>9}   paper (max/avg/wins)",
    ]
    for summary in summaries:
        paper = PAPER_TABLE1[summary.rule_name]
        lines.append(
            f"{summary.title:<34} {summary.maximum_benefit:>8.2f}x "
            f"{summary.average_benefit:>7.2f}x "
            f"{summary.average_over_wins:>8.2f}x   "
            f"{paper[0]:.2f} / {paper[1]:.2f} / {paper[2]:.2f}"
        )
        for effect in summary.effects:
            marker = "" if effect.fired else "  (rule did not fire)"
            lines.append(
                f"    param={effect.parameter!r:<12} "
                f"benefit {effect.benefit:>7.2f}x  "
                f"work {_ratio(effect.work_benefit)}  "
                f"buffered-cells {_ratio(effect.cells_benefit)}  "
                f"peak-mem {_ratio(effect.memory_benefit)}{marker}"
            )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    scale = float(argv[0]) if argv else DEFAULT_SCALE
    print(format_summaries(run_table1(scale)))


if __name__ == "__main__":
    main()
