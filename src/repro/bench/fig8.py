"""Figure 8: speedup of GApply plans over classical plans for Q1-Q4.

Run as a module to print the figure's data series::

    python -m repro.bench.fig8 [scale]

For each paper query the harness measures the classical (sorted outer
union / derived-table) formulation and the GApply formulation, with both
of the paper's partition strategies, and prints the ratio
``time(without GApply) / time(with GApply)`` — the Y axis of Figure 8.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.bench.harness import Measurement, measure_sql
from repro.execution.gapply import HASH_PARTITION, SORT_PARTITION
from repro.optimizer.planner import VOLCANO_ENGINE, PlannerOptions
from repro.storage.catalog import Catalog
from repro.workloads.queries import PAPER_QUERIES, PaperQuery
from repro.workloads.tpch import TpchConfig, load_tpch

#: The approximate ratios read off the paper's Figure 8 bars (SQL Server
#: 2000, 5 GB TPC-H). Only the *shape* — GApply wins, roughly this much —
#: is expected to transfer to a different substrate.
PAPER_FIGURE8_RATIOS = {"Q1": 1.3, "Q2": 2.0, "Q3": 1.8, "Q4": 2.0}

DEFAULT_SCALE = 0.2


@dataclass(frozen=True)
class Fig8Row:
    query: str
    baseline: Measurement
    gapply_hash: Measurement
    gapply_sort: Measurement

    @property
    def speedup_hash(self) -> float:
        return self.baseline.ratio_to(self.gapply_hash)

    @property
    def speedup_sort(self) -> float:
        return self.baseline.ratio_to(self.gapply_sort)

    @property
    def work_speedup(self) -> float:
        return self.baseline.work_ratio_to(self.gapply_hash)


def run_query(
    catalog: Catalog,
    query: PaperQuery,
    repetitions: int = 3,
    backend: str = "serial",
    parallelism: int = 1,
    engine: str = VOLCANO_ENGINE,
) -> Fig8Row:
    """Measure one paper query; the GApply sides honour the execution-phase
    ``backend``/``parallelism`` knobs so the figure can be regenerated with
    a parallel execution phase (the baseline has no GApply to parallelize).
    ``engine`` selects the Volcano iterators or the vector pipelines for
    all three measurements."""
    baseline = measure_sql(
        catalog, query.baseline_sql, repetitions=repetitions, engine=engine
    )
    gapply_hash = measure_sql(
        catalog,
        query.gapply_sql,
        options=PlannerOptions(
            gapply_partitioning=HASH_PARTITION,
            gapply_backend=backend,
            gapply_parallelism=parallelism,
        ),
        repetitions=repetitions,
        engine=engine,
    )
    gapply_sort = measure_sql(
        catalog,
        query.gapply_sql,
        options=PlannerOptions(
            gapply_partitioning=SORT_PARTITION,
            gapply_backend=backend,
            gapply_parallelism=parallelism,
        ),
        repetitions=repetitions,
        engine=engine,
    )
    return Fig8Row(query.name, baseline, gapply_hash, gapply_sort)


def run_figure8(
    scale: float = DEFAULT_SCALE,
    repetitions: int = 3,
    backend: str = "serial",
    parallelism: int = 1,
    engine: str = VOLCANO_ENGINE,
    catalog: Catalog | None = None,
) -> list[Fig8Row]:
    if catalog is None:
        catalog = Catalog()
        load_tpch(catalog, TpchConfig(scale=scale))
    return [
        run_query(catalog, query, repetitions, backend, parallelism, engine)
        for query in PAPER_QUERIES
    ]


def format_rows(rows: list[Fig8Row]) -> str:
    lines = [
        "Figure 8 — speedup using GApply "
        "(ratio of time without GApply to time with GApply)",
        "",
        f"{'query':<6} {'baseline':>10} {'gapply':>10} {'speedup':>9} "
        f"{'(sort)':>8} {'work x':>8} {'paper ~':>8}",
    ]
    for row in rows:
        lines.append(
            f"{row.query:<6} {row.baseline.elapsed * 1e3:>8.1f}ms "
            f"{row.gapply_hash.elapsed * 1e3:>8.1f}ms "
            f"{row.speedup_hash:>8.2f}x {row.speedup_sort:>7.2f}x "
            f"{row.work_speedup:>7.2f}x "
            f"{PAPER_FIGURE8_RATIOS[row.query]:>7.1f}x"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    scale = float(argv[0]) if argv else DEFAULT_SCALE
    rows = run_figure8(scale)
    print(format_rows(rows))


if __name__ == "__main__":
    main()
