"""Run the whole evaluation: Figure 8, Table 1, the E8 calibration, and
the parallel-GApply scaling sweep.

Usage::

    python -m repro.bench [scale]

This prints the summary tables EXPERIMENTS.md quotes. Expect a few
minutes at the default scale.
"""

from __future__ import annotations

import sys

from repro.bench.client_sim import run_q4_calibration
from repro.bench.fig8 import format_rows, run_figure8
from repro.bench.parallel import format_sweep, run_parallel_sweep
from repro.bench.table1 import format_summaries, run_table1


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    scale = float(argv[0]) if argv else 0.1

    print(f"Reproducing the paper's evaluation at TPC-H scale {scale}\n")

    print(format_rows(run_figure8(scale)))
    print()
    print(format_summaries(run_table1(scale)))
    print()
    result = run_q4_calibration(scale)
    print("E8 - client-side simulation of GApply (Q4), Section 5.1")
    print(
        f"  simulated {result.simulated_total * 1e3:.1f} ms vs native "
        f"{result.native.elapsed * 1e3:.1f} ms -> overhead "
        f"{result.overhead:.2f}x (paper: ~1.2x; both conservative)"
    )
    print()
    print(format_sweep(run_parallel_sweep(scale)))


if __name__ == "__main__":
    main()
