"""Parallel GApply scaling: worker-count sweep on a Figure-8 query.

Run as a module to print the speedup curves (and optionally emit the
harness JSON measurement document)::

    python -m repro.bench.parallel [scale] [--workers 1,2,4,8]
        [--backends thread,process] [--query Q4] [--repetitions 3]
        [--json out.json]

For the chosen paper query's GApply formulation, the harness measures the
serial execution phase, then each backend at each worker count, and
reports wall-clock speedup over serial. The deterministic ``work`` counter
is asserted identical across every point — parallelism must change *when*
work happens, never *how much* — so the speedup curve is pure scheduling,
not a cost-model artifact.

Honesty notes baked into the output:

* the merged work counters are printed alongside elapsed time, so a run
  on a single-core container (where no wall-clock speedup is physically
  possible) still demonstrates the equivalence contract;
* the thread backend is expected to hover around 1x on CPython (the GIL
  serializes per-group plan interpretation); it is swept anyway because
  it is the shared-memory reference point for the process backend's
  pickling overhead.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass

from repro.bench.harness import (
    Measurement,
    measure_sql,
    write_measurements_json,
)
from repro.execution.parallel import PROCESS_BACKEND, THREAD_BACKEND
from repro.optimizer.planner import PlannerOptions
from repro.storage.catalog import Catalog
from repro.workloads.queries import query_by_name
from repro.workloads.tpch import TpchConfig, load_tpch

DEFAULT_SCALE = 0.2
DEFAULT_WORKERS = (1, 2, 4, 8)
DEFAULT_BACKENDS = (THREAD_BACKEND, PROCESS_BACKEND)
#: Q4 is the paper's one natively-GApply-planned query (Section 5.1), so it
#: is the natural headline for execution-phase engineering on our side too.
DEFAULT_QUERY = "Q4"


@dataclass(frozen=True)
class ParallelPoint:
    """One (backend, workers) sweep point and its speedup over serial."""

    backend: str
    workers: int
    measurement: Measurement
    serial: Measurement

    @property
    def speedup(self) -> float:
        return self.serial.ratio_to(self.measurement)


@dataclass(frozen=True)
class ParallelSweep:
    query: str
    scale: float
    serial: Measurement
    points: tuple[ParallelPoint, ...]

    def named_measurements(self) -> list[tuple[str, Measurement]]:
        named = [(f"{self.query}/serial", self.serial)]
        named.extend(
            (f"{self.query}/{p.backend}x{p.workers}", p.measurement)
            for p in self.points
        )
        return named


def run_parallel_sweep(
    scale: float = DEFAULT_SCALE,
    workers: tuple[int, ...] = DEFAULT_WORKERS,
    backends: tuple[str, ...] = DEFAULT_BACKENDS,
    query_name: str = DEFAULT_QUERY,
    repetitions: int = 3,
    catalog: Catalog | None = None,
) -> ParallelSweep:
    if catalog is None:
        catalog = Catalog()
        load_tpch(catalog, TpchConfig(scale=scale))
    sql = query_by_name(query_name).gapply_sql
    serial = measure_sql(catalog, sql, repetitions=repetitions)
    points = []
    for backend in backends:
        for count in workers:
            measurement = measure_sql(
                catalog,
                sql,
                options=PlannerOptions(
                    gapply_backend=backend, gapply_parallelism=count
                ),
                repetitions=repetitions,
            )
            if measurement.rows != serial.rows or measurement.work != serial.work:
                raise AssertionError(
                    f"{backend} x{count} diverged from serial: "
                    f"rows {measurement.rows} vs {serial.rows}, "
                    f"work {measurement.work} vs {serial.work}"
                )
            points.append(ParallelPoint(backend, count, measurement, serial))
    return ParallelSweep(query_name, scale, serial, tuple(points))


def format_sweep(sweep: ParallelSweep) -> str:
    lines = [
        f"Parallel GApply — {sweep.query} execution phase, "
        f"TPC-H scale {sweep.scale}",
        "",
        f"serial: {sweep.serial.elapsed * 1e3:.1f} ms, "
        f"work {sweep.serial.work} (identical for every row below)",
        "",
        f"{'backend':<10} {'workers':>7} {'elapsed':>10} {'speedup':>9} "
        f"{'rows':>7}",
    ]
    for point in sweep.points:
        lines.append(
            f"{point.backend:<10} {point.workers:>7} "
            f"{point.measurement.elapsed * 1e3:>8.1f}ms "
            f"{point.speedup:>8.2f}x {point.measurement.rows:>7}"
        )
    return "\n".join(lines)


def _parse_args(argv: list[str] | None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.parallel", description=__doc__
    )
    parser.add_argument("scale", nargs="?", type=float, default=DEFAULT_SCALE)
    parser.add_argument(
        "--workers",
        default=",".join(str(w) for w in DEFAULT_WORKERS),
        help="comma-separated worker counts to sweep",
    )
    parser.add_argument(
        "--backends",
        default=",".join(DEFAULT_BACKENDS),
        help="comma-separated backends (thread,process)",
    )
    parser.add_argument("--query", default=DEFAULT_QUERY)
    parser.add_argument("--repetitions", type=int, default=3)
    parser.add_argument(
        "--json", default=None, help="also write the measurement JSON here"
    )
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> None:
    args = _parse_args(argv)
    sweep = run_parallel_sweep(
        scale=args.scale,
        workers=tuple(int(w) for w in args.workers.split(",") if w),
        backends=tuple(b for b in args.backends.split(",") if b),
        query_name=args.query,
        repetitions=args.repetitions,
    )
    print(format_sweep(sweep))
    if args.json:
        write_measurements_json(
            args.json,
            sweep.named_measurements(),
            benchmark="parallel_gapply",
            query=sweep.query,
            scale=sweep.scale,
            repetitions=args.repetitions,
        )
        print(f"\nwrote {args.json}")


if __name__ == "__main__":
    main()
