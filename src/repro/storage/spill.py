"""Spill files: disk-backed row storage for memory-bounded partitioning.

DESIGN.md §9 used to admit the engine "is entirely in-memory and never
spills"; this module is the half that changes that. GApply's partition
phase (:mod:`repro.execution.gapply`) writes buffered rows into spill
files when a cell budget is in force, keeping only a bounded buffer (plus
a per-key directory) in memory.

**Row codec.** A spill file is a flat sequence of framed records::

    record   := length payload
    length   := 4-byte big-endian unsigned int, len(payload)
    payload  := pickle.dumps(obj, protocol=4)

where ``obj`` is a plain row tuple (hash-partition spill) or a row tuple
in a sorted run (sort-partition spill). Pickle round-trips every value
type the engine stores (int/float/str/bytes/bool/None) exactly, which is
what makes spilled execution *byte-identical* to in-memory execution —
the acceptance bar the spill tests enforce. The 4-byte frame caps one
record at 4 GiB, far beyond any row this engine buffers.

Two access patterns, two classes:

* :class:`SpillFile` — append records, read them back either
  sequentially or by the offset returned at append time (the
  hash-partition directory keeps ``key -> [offset, ...]`` in memory and
  seeks per row on read-back);
* :class:`SpillRun` + :func:`merge_runs` — sorted runs for the external
  sort partition: each run is written pre-sorted and ``heapq.merge``
  re-reads them in key order. ``heapq.merge`` is stable across inputs in
  argument order, so passing runs in creation order (and the in-memory
  tail last) reproduces Python's stable in-memory sort exactly.

Every write funnels through :func:`_write_record`, which consults the
fault-injection registry (:mod:`repro.execution.faults`) so chaos tests
can fail the Nth spill write and assert the typed
:class:`~repro.errors.SpillError` surfaces instead of a wrong answer.

Files are created with ``tempfile`` in ``spill_dir`` (default: the
system temp dir), unlinked on :meth:`close`; the partition generators
close their spill state in ``finally`` blocks, so abandoning a query
mid-stream still reclaims the disk.
"""

from __future__ import annotations

import heapq
import os
import pickle
import struct
import tempfile
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import SpillError

_LENGTH = struct.Struct(">I")
PICKLE_PROTOCOL = 4


def _write_record(handle, obj: Any) -> int:
    """Frame and write one record; returns the encoded byte count.

    The single choke point for spill I/O: fault injection hooks in here,
    and any OS-level failure is re-raised as the typed
    :class:`SpillError` so a failing disk can never surface as a bare
    ``OSError`` from deep inside a generator.
    """
    from repro.execution.faults import check_spill_write

    check_spill_write()
    try:
        payload = pickle.dumps(obj, protocol=PICKLE_PROTOCOL)
        handle.write(_LENGTH.pack(len(payload)))
        handle.write(payload)
    except (OSError, pickle.PicklingError) as exc:
        raise SpillError(f"spill write failed: {exc}") from exc
    return _LENGTH.size + len(payload)


def _read_record_at(handle, offset: int) -> Any:
    try:
        handle.seek(offset)
        header = handle.read(_LENGTH.size)
        if len(header) != _LENGTH.size:
            raise SpillError(
                f"truncated spill record header at offset {offset}"
            )
        (length,) = _LENGTH.unpack(header)
        payload = handle.read(length)
        if len(payload) != length:
            raise SpillError(
                f"truncated spill record payload at offset {offset}"
            )
        return pickle.loads(payload)
    except OSError as exc:
        raise SpillError(f"spill read failed: {exc}") from exc


def _iter_records(handle) -> Iterator[Any]:
    handle.seek(0)
    while True:
        header = handle.read(_LENGTH.size)
        if not header:
            return
        if len(header) != _LENGTH.size:
            raise SpillError("truncated spill record header")
        (length,) = _LENGTH.unpack(header)
        payload = handle.read(length)
        if len(payload) != length:
            raise SpillError("truncated spill record payload")
        yield pickle.loads(payload)


def _open_spill_handle(spill_dir: str | None):
    try:
        fd, path = tempfile.mkstemp(
            prefix="repro-spill-", suffix=".run", dir=spill_dir
        )
        return os.fdopen(fd, "w+b"), path
    except OSError as exc:
        raise SpillError(f"cannot create spill file: {exc}") from exc


class SpillFile:
    """An append-only record file with by-offset read-back.

    Tracks ``records`` and ``bytes_written`` so callers can feed the
    ``spill_runs``/``spilled_rows``/``spill_bytes`` counters without
    re-deriving them.
    """

    def __init__(self, spill_dir: str | None = None):
        self._handle, self.path = _open_spill_handle(spill_dir)
        self.records = 0
        self.bytes_written = 0
        self._closed = False

    def append(self, obj: Any) -> int:
        """Write one record; returns its offset for later :meth:`read_at`."""
        handle = self._handle
        handle.seek(0, os.SEEK_END)
        offset = handle.tell()
        self.bytes_written += _write_record(handle, obj)
        self.records += 1
        return offset

    def read_at(self, offset: int) -> Any:
        return _read_record_at(self._handle, offset)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._handle.close()
        finally:
            try:
                os.unlink(self.path)
            except OSError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SpillFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SpillRun:
    """One sorted run of the external sort: written whole, read once."""

    def __init__(self, rows: Sequence[Any], spill_dir: str | None = None):
        self._handle, self.path = _open_spill_handle(spill_dir)
        self.records = 0
        self.bytes_written = 0
        self._closed = False
        try:
            for row in rows:
                self.bytes_written += _write_record(self._handle, row)
                self.records += 1
            self._handle.flush()
        except BaseException:
            self.close()
            raise

    def __iter__(self) -> Iterator[Any]:
        return _iter_records(self._handle)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._handle.close()
        finally:
            try:
                os.unlink(self.path)
            except OSError:  # pragma: no cover - already gone
                pass


def merge_runs(
    runs: Sequence[Iterable[Any]], key: Callable[[Any], Any]
) -> Iterator[Any]:
    """Stable k-way merge of pre-sorted runs in argument order.

    With runs passed in creation order and the in-memory tail last, ties
    on ``key`` come out in arrival order — exactly the order Python's
    stable in-memory ``list.sort`` would have produced, which keeps
    spilled sort partitioning byte-identical to the in-memory path.
    """
    return heapq.merge(*runs, key=key)
