"""Spill files: disk-backed row storage for memory-bounded partitioning.

DESIGN.md §9 used to admit the engine "is entirely in-memory and never
spills"; this module is the half that changes that. GApply's partition
phase (:mod:`repro.execution.gapply`) writes buffered rows into spill
files when a cell budget is in force, keeping only a bounded buffer (plus
a per-key directory) in memory.

**Row codec.** A spill file is a flat sequence of framed records::

    record   := length checksum payload
    length   := 4-byte big-endian unsigned int, len(payload)
    checksum := 4-byte big-endian unsigned int, zlib.crc32(payload)
    payload  := pickle.dumps(obj, protocol=4)

where ``obj`` is a plain row tuple (hash-partition spill) or a row tuple
in a sorted run (sort-partition spill). Pickle round-trips every value
type the engine stores (int/float/str/bytes/bool/None) exactly, which is
what makes spilled execution *byte-identical* to in-memory execution —
the acceptance bar the spill tests enforce. The 4-byte frame caps one
record at 4 GiB, far beyond any row this engine buffers. Every read-back
verifies the CRC before unpickling, so a corrupted or overwritten temp
file surfaces as a typed :class:`~repro.errors.SpillError` — never as
silently wrong rows, and never as pickle interpreting garbage.

Two access patterns, two classes:

* :class:`SpillFile` — append records, read them back either
  sequentially or by the offset returned at append time (the
  hash-partition directory keeps ``key -> [offset, ...]`` in memory and
  seeks per row on read-back);
* :class:`SpillRun` + :func:`merge_runs` — sorted runs for the external
  sort partition: each run is written pre-sorted and ``heapq.merge``
  re-reads them in key order. ``heapq.merge`` is stable across inputs in
  argument order, so passing runs in creation order (and the in-memory
  tail last) reproduces Python's stable in-memory sort exactly.

Every write funnels through :func:`_write_record`, which consults the
fault-injection registry (:mod:`repro.execution.faults`) so chaos tests
can fail the Nth spill write and assert the typed
:class:`~repro.errors.SpillError` surfaces instead of a wrong answer.

Files are created with ``tempfile`` in ``spill_dir`` (default: the
system temp dir), unlinked on :meth:`close`; the partition generators
close their spill state in ``finally`` blocks, so abandoning a query
mid-stream still reclaims the disk. Every live spill path is tracked in
a process-wide registry (:func:`live_spill_files`) so shutdown and chaos
tests can assert that no code path — error, cancellation, worker crash —
leaks a temp file.
"""

from __future__ import annotations

import heapq
import os
import pickle
import struct
import tempfile
import threading
import zlib
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import SpillError

_HEADER = struct.Struct(">II")  # (payload length, crc32 of payload)
PICKLE_PROTOCOL = 4

#: Paths of spill files created but not yet closed, for leak detection.
#: Guarded by its own lock: spill files are created and closed from
#: arbitrary query threads.
_live_lock = threading.Lock()
_live_paths: set[str] = set()


def live_spill_files() -> frozenset[str]:
    """Spill temp files currently open anywhere in this process.

    The cleanup invariant the service and chaos suites assert: after a
    query ends — success, typed error, cancellation, or crash-degraded
    retry — this set is empty again.
    """
    with _live_lock:
        return frozenset(_live_paths)


def _track(path: str) -> None:
    with _live_lock:
        _live_paths.add(path)


def _untrack(path: str) -> None:
    with _live_lock:
        _live_paths.discard(path)


def _write_record(handle, obj: Any) -> int:
    """Frame and write one record; returns the encoded byte count.

    The single choke point for spill I/O: fault injection hooks in here,
    and any OS-level failure is re-raised as the typed
    :class:`SpillError` so a failing disk can never surface as a bare
    ``OSError`` from deep inside a generator.
    """
    from repro.execution.faults import check_spill_write

    check_spill_write()
    try:
        payload = pickle.dumps(obj, protocol=PICKLE_PROTOCOL)
        handle.write(_HEADER.pack(len(payload), zlib.crc32(payload)))
        handle.write(payload)
    except (OSError, pickle.PicklingError) as exc:
        raise SpillError(f"spill write failed: {exc}") from exc
    return _HEADER.size + len(payload)


def _decode_payload(payload: bytes, checksum: int, where: str) -> Any:
    if zlib.crc32(payload) != checksum:
        raise SpillError(
            f"spill record checksum mismatch {where}: the spill file was "
            "corrupted or concurrently overwritten"
        )
    return pickle.loads(payload)


def _read_record_at(handle, offset: int) -> Any:
    try:
        handle.seek(offset)
        header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise SpillError(
                f"truncated spill record header at offset {offset}"
            )
        length, checksum = _HEADER.unpack(header)
        payload = handle.read(length)
        if len(payload) != length:
            raise SpillError(
                f"truncated spill record payload at offset {offset}"
            )
        return _decode_payload(payload, checksum, f"at offset {offset}")
    except OSError as exc:
        raise SpillError(f"spill read failed: {exc}") from exc


def _iter_records(handle) -> Iterator[Any]:
    handle.seek(0)
    while True:
        header = handle.read(_HEADER.size)
        if not header:
            return
        if len(header) != _HEADER.size:
            raise SpillError("truncated spill record header")
        length, checksum = _HEADER.unpack(header)
        payload = handle.read(length)
        if len(payload) != length:
            raise SpillError("truncated spill record payload")
        yield _decode_payload(payload, checksum, "in sequential read")


def _open_spill_handle(spill_dir: str | None):
    try:
        fd, path = tempfile.mkstemp(
            prefix="repro-spill-", suffix=".run", dir=spill_dir
        )
        handle = os.fdopen(fd, "w+b")
    except OSError as exc:
        raise SpillError(f"cannot create spill file: {exc}") from exc
    _track(path)
    return handle, path


class SpillFile:
    """An append-only record file with by-offset read-back.

    Tracks ``records`` and ``bytes_written`` so callers can feed the
    ``spill_runs``/``spilled_rows``/``spill_bytes`` counters without
    re-deriving them.
    """

    def __init__(self, spill_dir: str | None = None):
        self._handle, self.path = _open_spill_handle(spill_dir)
        self.records = 0
        self.bytes_written = 0
        self._closed = False

    def append(self, obj: Any) -> int:
        """Write one record; returns its offset for later :meth:`read_at`."""
        handle = self._handle
        handle.seek(0, os.SEEK_END)
        offset = handle.tell()
        self.bytes_written += _write_record(handle, obj)
        self.records += 1
        return offset

    def read_at(self, offset: int) -> Any:
        return _read_record_at(self._handle, offset)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._handle.close()
        finally:
            _untrack(self.path)
            try:
                os.unlink(self.path)
            except OSError:  # pragma: no cover - already gone
                pass

    def __enter__(self) -> "SpillFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC backstop only
        if not getattr(self, "_closed", True):
            self.close()


class SpillRun:
    """One sorted run of the external sort: written whole, read once."""

    def __init__(self, rows: Sequence[Any], spill_dir: str | None = None):
        self._handle, self.path = _open_spill_handle(spill_dir)
        self.records = 0
        self.bytes_written = 0
        self._closed = False
        try:
            for row in rows:
                self.bytes_written += _write_record(self._handle, row)
                self.records += 1
            self._handle.flush()
        except BaseException:
            self.close()
            raise

    def __iter__(self) -> Iterator[Any]:
        return _iter_records(self._handle)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._handle.close()
        finally:
            _untrack(self.path)
            try:
                os.unlink(self.path)
            except OSError:  # pragma: no cover - already gone
                pass

    def __del__(self):  # pragma: no cover - GC backstop only
        if not getattr(self, "_closed", True):
            self.close()


def merge_runs(
    runs: Sequence[Iterable[Any]], key: Callable[[Any], Any]
) -> Iterator[Any]:
    """Stable k-way merge of pre-sorted runs in argument order.

    With runs passed in creation order and the in-memory tail last, ties
    on ``key`` come out in arrival order — exactly the order Python's
    stable in-memory ``list.sort`` would have produced, which keeps
    spilled sort partitioning byte-identical to the in-memory path.
    """
    return heapq.merge(*runs, key=key)
