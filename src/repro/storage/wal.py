"""Write-ahead logging, checkpoints, and crash recovery for the catalog.

The paper's middleware assumes a durable relational store underneath it;
until this module the reproduction's :class:`~repro.storage.catalog.
Catalog` was purely in-memory, so a process crash lost every
acknowledged write. This module closes that gap with the classic WAL
discipline:

* **log before apply** — every catalog mutation appends one framed
  record to an append-only segment file *before* the in-memory state
  changes, under the catalog's ``mutation_lock``, so the durable log is
  always a prefix-complete journal of acknowledged history;
* **checkpoint** — :meth:`WriteAheadLog.write_checkpoint` serializes a
  frozen :class:`~repro.storage.catalog.CatalogSnapshot` into a
  temp file, fsyncs, atomically renames it into place, and then deletes
  every segment the checkpoint supersedes;
* **recover** — :func:`recover` loads the newest checkpoint, replays
  every WAL record with a version above it, physically truncates a torn
  tail at the first bad frame of the newest segment, and raises the
  typed :class:`~repro.errors.WalCorruptionError` on mid-log damage.

**Record format.** Segments reuse the spill codec's framing byte for
byte (:mod:`repro.storage.spill`)::

    record   := length checksum payload
    length   := 4-byte big-endian unsigned int, len(payload)
    checksum := 4-byte big-endian unsigned int, zlib.crc32(payload)
    payload  := pickle.dumps({"version": int, "kind": str, "data": {...}},
                             protocol=4)

``version`` is the :attr:`Catalog.version` the mutation *produces* —
the monotonic counter the snapshot machinery already maintains — which
is what makes replay idempotent: a record whose version is at or below
the recovered state's version is skipped (it is already folded into the
checkpoint), and a version *gap* means acknowledged history is missing
and recovery refuses to guess.

**Torn tail vs mid-log damage.** A bad frame (short header, short
payload, or CRC mismatch) that reaches the end of the *newest* segment
is indistinguishable from a write torn by a crash: recovery truncates
the segment back to the last good frame and carries on. The same damage
*followed by more log data* — later bytes in the segment or any younger
segment — cannot be a torn write, so recovery raises
:class:`WalCorruptionError` instead of silently dropping acknowledged
records. One ambiguity is inherent to the format and documented in
DESIGN.md §15: a bit flip inside the final record of the final segment
is classified as a torn tail and truncated.

**Fsync policy.** ``"always"`` fsyncs after every append (commit
latency = one fsync), ``"batch"`` fsyncs every ``batch_every`` appends
and on rotation/checkpoint/close, ``"never"`` leaves flushing to the
OS. Segment files are opened unbuffered (``buffering=0``) so every
append reaches the OS immediately regardless of policy — the policies
differ only in when the *disk* is forced.
"""

from __future__ import annotations

import os
import pickle
import zlib
from typing import Any, Callable, Iterator

from repro.errors import WalCorruptionError, WalError
from repro.storage.catalog import Catalog, ForeignKey
from repro.storage.spill import _HEADER, PICKLE_PROTOCOL
from repro.storage.table import Table
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

#: Fsync policies, in decreasing order of durability.
FSYNC_ALWAYS = "always"
FSYNC_BATCH = "batch"
FSYNC_NEVER = "never"
FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_BATCH, FSYNC_NEVER)

#: Record kinds — one per Catalog mutation path.
RECORD_KINDS = (
    "create_table",
    "drop_table",
    "insert_rows",
    "replace_table",
    "create_index",
    "add_foreign_key",
)

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
_CHECKPOINT_PREFIX = "checkpoint-"
_CHECKPOINT_SUFFIX = ".ckpt"
_TMP_SUFFIX = ".tmp"

#: Default segment rotation threshold. Small enough that the rotation
#: path gets exercised by real workloads; segments are cheap.
DEFAULT_SEGMENT_BYTES = 1 << 20


def _segment_name(first_version: int) -> str:
    # Zero-padded so lexicographic directory order == version order.
    return f"{_SEGMENT_PREFIX}{first_version:020d}{_SEGMENT_SUFFIX}"


def _checkpoint_name(version: int) -> str:
    return f"{_CHECKPOINT_PREFIX}{version:020d}{_CHECKPOINT_SUFFIX}"


def _encode(record: dict) -> bytes:
    payload = pickle.dumps(record, protocol=PICKLE_PROTOCOL)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _fsync_dir(directory: str) -> None:
    """Make a rename/create/unlink in ``directory`` durable.

    Best-effort on platforms where directories cannot be opened for
    fsync; on POSIX this is the step that makes the checkpoint rename
    itself crash-safe."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX fallback
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(fd)


# ---------------------------------------------------------------------------
# Catalog (de)serialization — plain dicts of plain values, so the
# checkpoint/replay payloads never pickle live engine objects with locks
# or handles inside.
# ---------------------------------------------------------------------------


def table_state(table: Table) -> dict:
    """A table as plain data: enough to rebuild it exactly on replay."""
    return {
        "name": table.name,
        "columns": [
            (c.name, c.dtype.value, c.qualifier, c.nullable)
            for c in table.schema
        ],
        "rows": list(table.rows),
        "primary_key": list(table.primary_key) if table.primary_key else None,
        "indexes": [list(cols) for cols in table.indexes],
    }


def build_table(state: dict) -> Table:
    schema = Schema(
        Column(name, DataType(dtype), qualifier=qualifier, nullable=nullable)
        for name, dtype, qualifier, nullable in state["columns"]
    )
    table = Table(state["name"], schema, primary_key=state["primary_key"])
    table.rows = [tuple(row) for row in state["rows"]]
    for columns in state["indexes"]:
        table.create_index(columns)
    return table


def catalog_state(catalog: Catalog) -> dict:
    """Serialize a (snapshot of a) catalog for a checkpoint payload."""
    return {
        "version": catalog.version,
        "tables": [table_state(t) for t in catalog],
        "foreign_keys": [
            (
                fk.child_table,
                list(fk.child_columns),
                fk.parent_table,
                list(fk.parent_columns),
            )
            for fk in catalog.foreign_keys()
        ],
    }


def restore_catalog(state: dict) -> Catalog:
    catalog = Catalog()
    for tstate in state["tables"]:
        catalog.register(build_table(tstate))
    for child, child_cols, parent, parent_cols in state["foreign_keys"]:
        catalog.add_foreign_key(child, child_cols, parent, parent_cols)
    # The mutations above bumped the fresh catalog's version; pin it back
    # to the checkpointed value so replay lines up record by record.
    catalog._version = state["version"]
    return catalog


def _apply_record(catalog: Catalog, kind: str, data: dict) -> None:
    """Replay one WAL record against ``catalog`` (no WAL attached)."""
    if kind == "create_table":
        catalog.register(build_table(data["table"]), replace=data["replace"])
    elif kind == "drop_table":
        catalog.drop(data["name"])
    elif kind == "insert_rows":
        catalog.insert_rows(
            data["table"], [tuple(row) for row in data["rows"]]
        )
    elif kind == "replace_table":
        catalog.replace_table(build_table(data["table"]))
    elif kind == "create_index":
        catalog.create_index(data["table"], data["columns"])
    elif kind == "add_foreign_key":
        catalog.add_foreign_key(
            data["child_table"],
            data["child_columns"],
            data["parent_table"],
            data["parent_columns"],
        )
    else:
        raise WalCorruptionError(f"unknown WAL record kind {kind!r}")


# ---------------------------------------------------------------------------
# The writer
# ---------------------------------------------------------------------------


class WriteAheadLog:
    """Append-only segmented WAL plus checkpoint files in one directory.

    Not thread-safe on its own: every call happens under the owning
    catalog's ``mutation_lock`` (the catalog appends from its mutation
    paths, and :meth:`write_checkpoint` is invoked with the lock held so
    the snapshot and the truncation point agree).
    """

    def __init__(
        self,
        directory: str,
        fsync: str = FSYNC_ALWAYS,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        batch_every: int = 8,
    ):
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r}; "
                f"expected one of {FSYNC_POLICIES}"
            )
        if segment_bytes < 1:
            raise WalError(f"segment_bytes must be >= 1, got {segment_bytes}")
        if batch_every < 1:
            raise WalError(f"batch_every must be >= 1, got {batch_every}")
        self.directory = directory
        self.fsync_policy = fsync
        self.segment_bytes = segment_bytes
        self.batch_every = batch_every
        self._handle = None
        self._segment_path: str | None = None
        self._segment_size = 0
        self._unsynced_appends = 0
        self._closed = False
        # Observability counters, surfaced through Service.stats().
        self.wal_appends = 0
        self.wal_bytes = 0
        self.fsyncs = 0
        self.checkpoints = 0
        self.recoveries = 0
        os.makedirs(directory, exist_ok=True)

    # -- low-level file plumbing ---------------------------------------

    def _segments(self) -> list[str]:
        """Segment file names in version order."""
        return sorted(
            name
            for name in os.listdir(self.directory)
            if name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)
        )

    def _checkpoints_on_disk(self) -> list[str]:
        return sorted(
            name
            for name in os.listdir(self.directory)
            if name.startswith(_CHECKPOINT_PREFIX)
            and name.endswith(_CHECKPOINT_SUFFIX)
        )

    def _open_segment(self, path: str) -> None:
        # buffering=0: every write() goes straight to the OS, so a
        # simulated crash (which abandons the handle without flushing)
        # leaves exactly the bytes written so far — like a real one.
        self._handle = open(path, "ab", buffering=0)
        self._segment_path = path
        self._segment_size = os.path.getsize(path)
        self._unsynced_appends = 0

    def _ensure_segment(self, next_version: int) -> None:
        if self._handle is None:
            segments = self._segments()
            if segments:
                self._open_segment(
                    os.path.join(self.directory, segments[-1])
                )
            else:
                self._rotate(next_version)

    def _rotate(self, first_version: int) -> None:
        """Start a fresh segment that will hold ``first_version`` onward."""
        if self._handle is not None:
            if self.fsync_policy != FSYNC_NEVER:
                self._sync_handle()
            self._handle.close()
        path = os.path.join(self.directory, _segment_name(first_version))
        self._open_segment(path)

    def _sync_handle(self) -> None:
        if self._handle is None or self._unsynced_appends == 0:
            return
        self._do_fsync()
        self._unsynced_appends = 0

    def _do_fsync(self) -> None:
        from repro.execution.faults import check_wal_fsync

        check_wal_fsync()
        os.fsync(self._handle.fileno())
        self.fsyncs += 1

    # -- the append path -----------------------------------------------

    def append(self, version: int, kind: str, data: dict) -> None:
        """Durably journal one mutation *before* it applies in memory.

        On any failure — injected or real — the partially written frame
        is truncated away before the error propagates, so the log never
        retains a record whose mutation was not acknowledged. Raises
        :class:`WalError` (typed) for I/O and fsync failures.
        """
        from repro.execution.faults import check_wal_append

        if self._closed:
            raise WalError("write-ahead log is closed")
        if kind not in RECORD_KINDS:
            raise WalError(f"unknown WAL record kind {kind!r}")
        self._ensure_segment(version)
        if self._segment_size >= self.segment_bytes:
            self._rotate(version)
        frame = _encode({"version": version, "kind": kind, "data": data})
        short_write = check_wal_append()  # may raise SimulatedCrash
        offset = self._segment_size
        if short_write is not None:
            # Injected torn write: the prefix really reaches the file,
            # then the "process" dies mid-write.
            from repro.execution.faults import SimulatedCrash

            self._handle.write(frame[: min(short_write, len(frame) - 1)])
            raise SimulatedCrash(
                f"injected short write at WAL offset {offset}"
            )
        try:
            self._handle.write(frame)
            self._segment_size += len(frame)
            self._unsynced_appends += 1
            if self.fsync_policy == FSYNC_ALWAYS or (
                self.fsync_policy == FSYNC_BATCH
                and self._unsynced_appends >= self.batch_every
            ):
                self._sync_handle()
        except OSError as exc:
            # Roll the frame back so the unacknowledged record is not
            # durable: recovered state must equal the acked prefix.
            try:
                os.ftruncate(self._handle.fileno(), offset)
                self._segment_size = offset
                self._unsynced_appends = max(0, self._unsynced_appends - 1)
            except OSError:  # pragma: no cover - disk truly gone
                pass
            raise WalError(f"WAL append failed: {exc}") from exc
        self.wal_appends += 1
        self.wal_bytes += len(frame)

    # -- checkpoints -----------------------------------------------------

    def write_checkpoint(self, state: dict) -> str:
        """Write ``state`` (a :func:`catalog_state` dict) durably.

        Temp-file + fsync + atomic rename + directory fsync, then delete
        every segment whose records the checkpoint folds in. Crash-safe
        at every step: an interrupted temp write leaves only a ``.tmp``
        orphan (removed by recovery), a crash before the rename leaves
        the previous checkpoint authoritative, and a crash before the
        segment deletion leaves stale segments that replay idempotently.
        """
        from repro.execution.faults import check_checkpoint

        if self._closed:
            raise WalError("write-ahead log is closed")
        version = state["version"]
        final_path = os.path.join(self.directory, _checkpoint_name(version))
        tmp_path = final_path + _TMP_SUFFIX
        frame = _encode(state)
        try:
            with open(tmp_path, "wb", buffering=0) as handle:
                handle.write(frame[: len(frame) // 2])
                check_checkpoint("temp")  # crash leaves a torn .tmp
                handle.write(frame[len(frame) // 2:])
                os.fsync(handle.fileno())
                self.fsyncs += 1
            check_checkpoint("rename")
            os.replace(tmp_path, final_path)
            _fsync_dir(self.directory)
        except OSError as exc:
            raise WalError(f"checkpoint write failed: {exc}") from exc
        self.checkpoints += 1
        # Everything at or below `version` is now in the checkpoint:
        # rotate so new appends land in a fresh segment, then drop the
        # superseded segments and older checkpoints.
        self._rotate(version + 1)
        check_checkpoint("truncate")
        for name in self._segments():
            path = os.path.join(self.directory, name)
            if path != self._segment_path:
                os.unlink(path)
        for name in self._checkpoints_on_disk():
            if name != _checkpoint_name(version):
                os.unlink(os.path.join(self.directory, name))
        _fsync_dir(self.directory)
        return final_path

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Flush, fsync (unless policy is ``never``) and close handles."""
        if self._closed:
            return
        self._closed = True
        if self._handle is not None:
            if self.fsync_policy != FSYNC_NEVER:
                try:
                    self._sync_handle()
                except OSError:  # pragma: no cover - best effort
                    pass
            self._handle.close()
            self._handle = None

    def abandon(self) -> None:
        """Close the file handle without any flushing or fsync.

        The simulated-crash path: after a :class:`~repro.execution.
        faults.SimulatedCrash` the harness abandons the store; because
        segments are unbuffered, closing writes nothing, so the on-disk
        bytes are exactly what the 'crashed process' managed to write.
        """
        self._closed = True
        if self._handle is not None:
            try:
                self._handle.close()
            finally:
                self._handle = None

    def stats(self) -> dict[str, int]:
        return {
            "wal_appends": self.wal_appends,
            "wal_bytes": self.wal_bytes,
            "fsyncs": self.fsyncs,
            "checkpoints": self.checkpoints,
            "recoveries": self.recoveries,
        }

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------


def _read_frames(path: str, is_last_segment: bool) -> Iterator[dict]:
    """Yield decoded records; on a bad frame apply the torn-tail rule.

    A bad frame that reaches EOF of the *last* segment is truncated
    away in place; anywhere else it is mid-log damage.
    """
    size = os.path.getsize(path)
    with open(path, "rb") as handle:
        offset = 0
        while offset < size:
            handle.seek(offset)
            header = handle.read(_HEADER.size)
            bad: str | None = None
            end = offset
            if len(header) < _HEADER.size:
                bad = "truncated record header"
                end = size
            else:
                length, checksum = _HEADER.unpack(header)
                payload = handle.read(length)
                end = offset + _HEADER.size + len(payload)
                if len(payload) < length:
                    bad = "truncated record payload"
                elif zlib.crc32(payload) != checksum:
                    bad = "record checksum mismatch"
            if bad is None:
                try:
                    yield pickle.loads(payload)
                except Exception as exc:
                    raise WalCorruptionError(
                        f"undecodable WAL record at {path}:{offset}: {exc}"
                    ) from exc
                offset = end
                continue
            if is_last_segment and end >= size:
                # Torn tail: physically truncate back to the last good
                # frame so the next writer appends after clean history.
                with open(path, "r+b") as trunc:
                    trunc.truncate(offset)
                return
            raise WalCorruptionError(
                f"{bad} at {path}:{offset} with later log data following "
                "— mid-log damage, not a torn tail"
            )


def _load_checkpoint(path: str) -> dict:
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise WalCorruptionError(f"truncated checkpoint header: {path}")
        length, checksum = _HEADER.unpack(header)
        payload = handle.read(length)
        if len(payload) < length or zlib.crc32(payload) != checksum:
            raise WalCorruptionError(
                f"checkpoint failed its CRC: {path} — acknowledged history "
                "is unreadable"
            )
        return pickle.loads(payload)


def recover(
    directory: str,
    on_progress: Callable[[str], None] | None = None,
) -> tuple[Catalog, int]:
    """Rebuild the catalog from ``directory``; returns (catalog, replayed).

    Protocol: remove temp-file orphans, load the newest checkpoint (its
    CRC must pass — a corrupt newest checkpoint is unrecoverable because
    the segments it superseded are gone), then replay every segment
    record with ``version > checkpoint.version`` in order. Duplicates
    (stale segments surviving a crash before checkpoint truncation)
    replay idempotently; a version gap raises
    :class:`WalCorruptionError`; a torn tail on the newest segment is
    physically truncated.
    """
    if not os.path.isdir(directory):
        os.makedirs(directory, exist_ok=True)
    for name in sorted(os.listdir(directory)):
        if name.endswith(_TMP_SUFFIX):
            os.unlink(os.path.join(directory, name))
    checkpoints = sorted(
        name
        for name in os.listdir(directory)
        if name.startswith(_CHECKPOINT_PREFIX)
        and name.endswith(_CHECKPOINT_SUFFIX)
    )
    if checkpoints:
        newest = os.path.join(directory, checkpoints[-1])
        state = _load_checkpoint(newest)
        catalog = restore_catalog(state)
        if on_progress is not None:
            on_progress(f"checkpoint {checkpoints[-1]} @v{catalog.version}")
    else:
        catalog = Catalog()
    replayed = 0
    segments = sorted(
        name
        for name in os.listdir(directory)
        if name.startswith(_SEGMENT_PREFIX) and name.endswith(_SEGMENT_SUFFIX)
    )
    for position, name in enumerate(segments):
        path = os.path.join(directory, name)
        is_last = position == len(segments) - 1
        for record in _read_frames(path, is_last):
            version = record["version"]
            if version <= catalog.version:
                continue  # already folded into the checkpoint — idempotent
            if version != catalog.version + 1:
                raise WalCorruptionError(
                    f"WAL version gap in {name}: expected "
                    f"{catalog.version + 1}, found {version} — "
                    "acknowledged history is missing"
                )
            _apply_record(catalog, record["kind"], record["data"])
            if catalog.version != version:
                raise WalCorruptionError(
                    f"replaying {record['kind']!r} @v{version} left the "
                    f"catalog at v{catalog.version}"
                )
            replayed += 1
    if on_progress is not None:
        on_progress(f"replayed {replayed} records to v{catalog.version}")
    return catalog, replayed
