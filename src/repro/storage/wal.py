"""Write-ahead logging, transactions, checkpoints, and crash recovery.

The paper's middleware assumes a durable relational store underneath it;
until this module the reproduction's :class:`~repro.storage.catalog.
Catalog` was purely in-memory, so a process crash lost every
acknowledged write. This module closes that gap with the classic WAL
discipline:

* **log before apply** — every catalog mutation appends one framed
  record to an append-only segment file *before* the in-memory state
  changes, under the catalog's ``mutation_lock``, so the durable log is
  always a prefix-complete journal of acknowledged history;
* **transactions** — ``txn_begin`` / ``txn_commit`` / ``txn_abort``
  records bracket multi-statement transactions. Recovery replays only
  operations covered by a durable ``txn_commit``: a crash mid-transaction
  physically rolls the log back to the begin record, so the recovered
  catalog is always a strict prefix of acknowledged *transactions*,
  never a half-applied one;
* **checkpoint** — :meth:`WriteAheadLog.write_checkpoint` serializes
  either a full :func:`catalog_state` image or an *incremental delta*
  (only the tables touched since the previous checkpoint, plus drops and
  the FK list when it changed) into a temp file, fsyncs, atomically
  renames it into place, and then deletes — or, with ``archive=True``,
  moves into ``archive/`` — every segment the checkpoint supersedes.
  Deltas chain back to the last full image; a full image is forced every
  ``full_checkpoint_every`` checkpoints and on the first checkpoint
  after open (recovery does not reconstruct the dirty set);
* **recover** — :func:`recover` loads the newest checkpoint chain,
  replays every committed record above it, physically truncates a torn
  tail or an unterminated tail transaction, and raises the typed
  :class:`~repro.errors.WalCorruptionError` on mid-log damage;
* **point-in-time recovery** — :func:`recover_point_in_time` rebuilds
  the catalog at *any* intermediate committed version from the archived
  segment chain plus the live log, or raises the typed
  :class:`~repro.errors.PointInTimeUnavailable` when the target predates
  the oldest archive, exceeds the newest committed version, or falls
  inside a transaction.

**Record format.** Segments reuse the spill codec's framing byte for
byte (:mod:`repro.storage.spill`)::

    record   := length checksum payload
    length   := 4-byte big-endian unsigned int, len(payload)
    checksum := 4-byte big-endian unsigned int, zlib.crc32(payload)
    payload  := pickle.dumps({"version": int, "kind": str, "data": {...},
                              ["txn": int]}, protocol=4)

``version`` is the :attr:`Catalog.version` the record *produces* — the
monotonic counter the snapshot machinery already maintains — which is
what makes replay idempotent: a record whose version is at or below the
recovered state's version is skipped (it is already folded into the
checkpoint), and a version *gap* means acknowledged history is missing
and recovery refuses to guess. Transaction markers consume versions
like mutations do (``begin`` and ``commit``/``abort`` each take one), so
versions never rewind — a rolled-back transaction leaves the counter,
but not the data, advanced.

**Torn tail vs corruption.** Only an *incomplete* final frame of the
final segment — the file ends before the frame does — can be a write
torn by a crash, and recovery truncates it. A *complete* frame whose
CRC fails is never a torn write (torn writes shorten, they do not
rewrite), so it raises :class:`WalCorruptionError` even at the tail —
bit rot must never silently truncate acknowledged commits. Incomplete
tails are additionally cross-checked: if the bytes after the header
checksum clean as a whole (a flipped length field masking an intact
final frame), or contain an embedded valid frame (a flipped length
swallowing real records), recovery refuses instead of truncating. The
one remaining ambiguity, documented in DESIGN.md §15: a flip in the
final frame's length field that *extends* it past EOF while the real
payload was already short is indistinguishable from a torn write.

**Fsync policy.** ``"always"`` fsyncs at every commit point (one fsync
per acknowledged commit; in-transaction records ride for free until the
commit record), ``"batch"`` fsyncs every ``batch_every`` appends and on
rotation/checkpoint/close, ``"group"`` runs *group commit* — concurrent
committers elect a leader that waits up to ``group_commit_delay``
seconds for followers and issues one fsync for the whole batch — and
``"never"`` leaves flushing to the OS. Segment files are opened
unbuffered (``buffering=0``) so every append reaches the OS immediately
regardless of policy — the policies differ only in when the *disk* is
forced.

``python -m repro.storage.wal <dir>`` inspects a store: frame dump
(version, kind, transaction id, CRC status), end-to-end chain
verification, and the recoverable version range for point-in-time
recovery.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
import zlib
from typing import Any, Callable, Iterator

from repro.errors import (
    PointInTimeUnavailable,
    WalCorruptionError,
    WalError,
)
from repro.storage.catalog import Catalog
from repro.storage.spill import _HEADER, PICKLE_PROTOCOL
from repro.storage.table import Table
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

#: Fsync policies, in decreasing order of durability.
FSYNC_ALWAYS = "always"
FSYNC_BATCH = "batch"
FSYNC_GROUP = "group"
FSYNC_NEVER = "never"
FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_BATCH, FSYNC_GROUP, FSYNC_NEVER)

#: Record kinds that mutate the catalog — one per mutation path.
MUTATION_KINDS = (
    "create_table",
    "drop_table",
    "insert_rows",
    "replace_table",
    "create_index",
    "add_foreign_key",
)

#: Transaction bracket markers; ``data`` is empty, ``txn`` carries the id.
TXN_KINDS = ("txn_begin", "txn_commit", "txn_abort")

RECORD_KINDS = MUTATION_KINDS + TXN_KINDS

_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"
_CHECKPOINT_PREFIX = "checkpoint-"
_CHECKPOINT_SUFFIX = ".ckpt"
_TMP_SUFFIX = ".tmp"
ARCHIVE_DIR = "archive"

#: Default segment rotation threshold. Small enough that the rotation
#: path gets exercised by real workloads; segments are cheap.
DEFAULT_SEGMENT_BYTES = 1 << 20

#: Force a full checkpoint image after this many incremental deltas.
DEFAULT_FULL_CHECKPOINT_EVERY = 4

#: How long a group-commit leader waits for followers to pile on.
DEFAULT_GROUP_COMMIT_DELAY = 0.002


def _segment_name(first_version: int) -> str:
    # Zero-padded so lexicographic directory order == version order.
    return f"{_SEGMENT_PREFIX}{first_version:020d}{_SEGMENT_SUFFIX}"


def _checkpoint_name(version: int) -> str:
    return f"{_CHECKPOINT_PREFIX}{version:020d}{_CHECKPOINT_SUFFIX}"


def _checkpoint_version(name: str) -> int:
    return int(name[len(_CHECKPOINT_PREFIX):-len(_CHECKPOINT_SUFFIX)])


def _encode(record: dict) -> bytes:
    payload = pickle.dumps(record, protocol=PICKLE_PROTOCOL)
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def _fsync_dir(directory: str) -> None:
    """Make a rename/create/unlink in ``directory`` durable.

    Best-effort on platforms where directories cannot be opened for
    fsync; on POSIX this is the step that makes the checkpoint rename
    itself crash-safe."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - non-POSIX fallback
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - e.g. network filesystems
        pass
    finally:
        os.close(fd)


# ---------------------------------------------------------------------------
# Catalog (de)serialization — plain dicts of plain values, so the
# checkpoint/replay payloads never pickle live engine objects with locks
# or handles inside.
# ---------------------------------------------------------------------------


def table_state(table: Table) -> dict:
    """A table as plain data: enough to rebuild it exactly on replay."""
    return {
        "name": table.name,
        "columns": [
            (c.name, c.dtype.value, c.qualifier, c.nullable)
            for c in table.schema
        ],
        "rows": list(table.rows),
        "primary_key": list(table.primary_key) if table.primary_key else None,
        "indexes": [list(cols) for cols in table.indexes],
    }


def build_table(state: dict) -> Table:
    schema = Schema(
        Column(name, DataType(dtype), qualifier=qualifier, nullable=nullable)
        for name, dtype, qualifier, nullable in state["columns"]
    )
    table = Table(state["name"], schema, primary_key=state["primary_key"])
    table.rows = [tuple(row) for row in state["rows"]]
    for columns in state["indexes"]:
        table.create_index(columns)
    return table


def catalog_state(catalog: Catalog) -> dict:
    """Serialize a (snapshot of a) catalog for a checkpoint payload."""
    return {
        "version": catalog.version,
        "tables": [table_state(t) for t in catalog],
        "foreign_keys": [
            (
                fk.child_table,
                list(fk.child_columns),
                fk.parent_table,
                list(fk.parent_columns),
            )
            for fk in catalog.foreign_keys()
        ],
    }


def restore_catalog(state: dict) -> Catalog:
    catalog = Catalog()
    for tstate in state["tables"]:
        catalog.register(build_table(tstate))
    for child, child_cols, parent, parent_cols in state["foreign_keys"]:
        catalog.add_foreign_key(child, child_cols, parent, parent_cols)
    # The mutations above bumped the fresh catalog's version; pin it back
    # to the checkpointed value so replay lines up record by record.
    catalog._version = state["version"]
    return catalog


def _apply_record(catalog: Catalog, kind: str, data: dict) -> None:
    """Replay one WAL mutation record against ``catalog`` (no WAL attached)."""
    if kind == "create_table":
        catalog.register(build_table(data["table"]), replace=data["replace"])
    elif kind == "drop_table":
        catalog.drop(data["name"])
    elif kind == "insert_rows":
        catalog.insert_rows(
            data["table"], [tuple(row) for row in data["rows"]]
        )
    elif kind == "replace_table":
        catalog.replace_table(build_table(data["table"]))
    elif kind == "create_index":
        catalog.create_index(data["table"], data["columns"])
    elif kind == "add_foreign_key":
        catalog.add_foreign_key(
            data["child_table"],
            data["child_columns"],
            data["parent_table"],
            data["parent_columns"],
        )
    else:
        raise WalCorruptionError(f"unknown WAL record kind {kind!r}")


# ---------------------------------------------------------------------------
# Group commit
# ---------------------------------------------------------------------------


class _GroupCommitter:
    """Leader/follower fsync batching for the ``group`` policy.

    Committers arrive after their record is written (and after the
    catalog mutation lock is released, so writers keep streaming frames
    while a batch forms). The first arrival becomes leader, waits up to
    ``max_delay`` seconds when other commits are in flight, then issues
    one fsync that covers every frame written so far; followers just
    wait for the durable floor to pass their own frame. A failed group
    fsync poisons the log and truncates the unsynced suffix — memory may
    be ahead of disk at that point, so no further appends are accepted
    and every waiter gets the typed :class:`WalError` (its commit was
    never acknowledged).
    """

    def __init__(self, wal: "WriteAheadLog", max_delay: float):
        self.wal = wal
        self.max_delay = max_delay
        self._cond = threading.Condition()
        self._leader_active = False
        self._in_flight = 0

    def sync(self, token: int) -> None:
        wal = self.wal
        with self._cond:
            self._in_flight += 1
        try:
            while True:
                with self._cond:
                    if wal._synced_seq >= token:
                        wal.group_commits += 1
                        return
                    if wal._poisoned is not None:
                        raise WalError(
                            f"write-ahead log is poisoned: {wal._poisoned}"
                        )
                    if not self._leader_active:
                        self._leader_active = True
                        break
                    self._cond.wait()
            self._lead(token)
        finally:
            with self._cond:
                self._in_flight -= 1

    def _lead(self, token: int) -> None:
        """Run one batch as leader; always clears the leader flag."""
        wal = self.wal
        try:
            with self._cond:
                others = self._in_flight - 1
            if others > 0 and self.max_delay > 0:
                # Followers are piling on: give stragglers a beat to get
                # their frames written before paying for the fsync.
                time.sleep(self.max_delay)
            failure: OSError | None = None
            with wal._io_lock:
                target_seq = wal._write_seq
                target_size = wal._segment_size
                try:
                    wal._do_fsync()
                    wal._synced_seq = target_seq
                    wal._synced_size = target_size
                    wal._unsynced_appends = 0
                    wal.group_batches += 1
                except OSError as exc:
                    failure = exc
                    wal._poison_unsynced(f"group commit fsync failed: {exc}")
        finally:
            with self._cond:
                self._leader_active = False
                self._cond.notify_all()
        if failure is not None:
            raise WalError(
                f"group commit fsync failed: {failure}"
            ) from failure
        # The batch is durable. This is the crash point the concurrency
        # battery arms: everything fsynced above must survive even if the
        # process dies before a single waiter is acknowledged.
        from repro.execution.faults import check_group_fsync

        check_group_fsync()
        self.wal.group_commits += 1


# ---------------------------------------------------------------------------
# The writer
# ---------------------------------------------------------------------------


class WriteAheadLog:
    """Append-only segmented WAL plus checkpoint files in one directory.

    Appends happen under the owning catalog's ``mutation_lock`` (the
    catalog appends from its mutation paths, and
    :meth:`write_checkpoint` is invoked with the lock held so the
    snapshot and the truncation point agree). Group-commit waiters run
    *outside* that lock; the internal ``_io_lock`` fences their fsync
    against segment rotation.
    """

    def __init__(
        self,
        directory: str,
        fsync: str = FSYNC_ALWAYS,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        batch_every: int = 8,
        group_commit_delay: float = DEFAULT_GROUP_COMMIT_DELAY,
        archive: bool = False,
        full_checkpoint_every: int = DEFAULT_FULL_CHECKPOINT_EVERY,
    ):
        if fsync not in FSYNC_POLICIES:
            raise WalError(
                f"unknown fsync policy {fsync!r}; "
                f"expected one of {FSYNC_POLICIES}"
            )
        if segment_bytes < 1:
            raise WalError(f"segment_bytes must be >= 1, got {segment_bytes}")
        if batch_every < 1:
            raise WalError(f"batch_every must be >= 1, got {batch_every}")
        if group_commit_delay < 0:
            raise WalError(
                f"group_commit_delay must be >= 0, got {group_commit_delay}"
            )
        if full_checkpoint_every < 1:
            raise WalError(
                "full_checkpoint_every must be >= 1, "
                f"got {full_checkpoint_every}"
            )
        self.directory = directory
        self.fsync_policy = fsync
        self.segment_bytes = segment_bytes
        self.batch_every = batch_every
        self.archive = archive
        self.full_checkpoint_every = full_checkpoint_every
        self._handle = None
        self._segment_path: str | None = None
        self._segment_size = 0
        self._synced_size = 0
        self._unsynced_appends = 0
        self._write_seq = 0
        self._synced_seq = 0
        self._closed = False
        self._poisoned: str | None = None
        self._io_lock = threading.RLock()
        self._group = (
            _GroupCommitter(self, group_commit_delay)
            if fsync == FSYNC_GROUP
            else None
        )
        # Incremental-checkpoint bookkeeping. The dirty sets only become
        # trustworthy after the first checkpoint this writer performs
        # (recovery replays records before the writer exists), so the
        # first checkpoint after open is always a full image.
        self._dirty_tables: set[str] = set()
        self._dirty_dropped: set[str] = set()
        self._dirty_fks = False
        self._dirty_known = False
        self._last_checkpoint_version: int | None = None
        self._chain_length = 0
        # Observability counters, surfaced through Service.stats().
        self.wal_appends = 0
        self.wal_bytes = 0
        self.fsyncs = 0
        self.checkpoints = 0
        self.full_checkpoints = 0
        self.incremental_checkpoints = 0
        self.recoveries = 0
        self.group_commits = 0
        self.group_batches = 0
        os.makedirs(directory, exist_ok=True)

    # -- low-level file plumbing ---------------------------------------

    def _segments(self) -> list[str]:
        """Segment file names in version order (live directory only)."""
        return sorted(
            name
            for name in os.listdir(self.directory)
            if name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)
        )

    def _checkpoints_on_disk(self) -> list[str]:
        return sorted(
            name
            for name in os.listdir(self.directory)
            if name.startswith(_CHECKPOINT_PREFIX)
            and name.endswith(_CHECKPOINT_SUFFIX)
        )

    def _open_segment(self, path: str) -> None:
        # buffering=0: every write() goes straight to the OS, so a
        # simulated crash (which abandons the handle without flushing)
        # leaves exactly the bytes written so far — like a real one.
        self._handle = open(path, "ab", buffering=0)
        self._segment_path = path
        self._segment_size = os.path.getsize(path)
        # Pre-existing bytes were made durable by whoever wrote them (or
        # will be judged by recovery); treat them as the synced floor.
        self._synced_size = self._segment_size
        self._unsynced_appends = 0

    def _ensure_segment(self, next_version: int) -> None:
        if self._handle is None:
            segments = self._segments()
            if segments:
                self._open_segment(
                    os.path.join(self.directory, segments[-1])
                )
            else:
                self._rotate(next_version)

    def _rotate(self, first_version: int) -> None:
        """Start a fresh segment that will hold ``first_version`` onward."""
        with self._io_lock:
            if self._handle is not None:
                if self.fsync_policy != FSYNC_NEVER:
                    self._sync_handle()
                self._handle.close()
            path = os.path.join(self.directory, _segment_name(first_version))
            self._open_segment(path)

    def _sync_handle(self) -> None:
        if self._handle is None or self._unsynced_appends == 0:
            return
        self._do_fsync()
        self._unsynced_appends = 0
        self._synced_seq = self._write_seq
        self._synced_size = self._segment_size

    def _do_fsync(self) -> None:
        from repro.execution.faults import check_wal_fsync

        check_wal_fsync()
        os.fsync(self._handle.fileno())
        self.fsyncs += 1

    # -- poisoning -------------------------------------------------------

    @property
    def poisoned(self) -> str | None:
        """Why this log stopped accepting appends, or ``None``."""
        return self._poisoned

    def poison(self, reason: str) -> None:
        """Refuse every future append/checkpoint with a typed error.

        Used when the in-memory catalog can no longer be guaranteed to
        match the durable log — a transaction terminator that failed to
        become durable, or a failed group fsync after the mutation
        already applied. Recovery of the on-disk state is unaffected:
        the log is a (possibly shorter) clean prefix.
        """
        if self._poisoned is None:
            self._poisoned = reason

    def _poison_unsynced(self, reason: str) -> None:
        """Poison and chop the unsynced suffix so disk == acked state."""
        self.poison(reason)
        if self._handle is not None:
            try:
                os.ftruncate(self._handle.fileno(), self._synced_size)
                self._segment_size = self._synced_size
            except OSError:  # pragma: no cover - disk truly gone
                pass

    # -- the append path -----------------------------------------------

    def append(
        self,
        version: int,
        kind: str,
        data: dict,
        *,
        txn: int | None = None,
        commit_point: bool = True,
    ) -> int | None:
        """Durably journal one record *before* it applies in memory.

        ``txn`` tags in-transaction records with their transaction id;
        ``commit_point`` marks records whose durability acknowledges a
        commit (autocommit mutations, ``txn_commit``/``txn_abort``) —
        under the ``always`` policy only commit points fsync, and under
        ``group`` they return a token for :meth:`wait_durable`.

        On any failure — injected or real — the partially written frame
        is truncated away before the error propagates, so the log never
        retains a record whose mutation was not acknowledged. Raises
        :class:`WalError` (typed) for I/O and fsync failures.
        """
        from repro.execution.faults import check_wal_append

        if self._closed:
            raise WalError("write-ahead log is closed")
        if self._poisoned is not None:
            raise WalError(
                f"write-ahead log is poisoned: {self._poisoned}"
            )
        if kind not in RECORD_KINDS:
            raise WalError(f"unknown WAL record kind {kind!r}")
        try:
            self._ensure_segment(version)
            if self._segment_size >= self.segment_bytes:
                self._rotate(version)
        except OSError as exc:
            # Rotation fsync/open failure: no frame was written yet, so
            # the append simply never happened.
            raise WalError(f"WAL segment rotation failed: {exc}") from exc
        record: dict[str, Any] = {"version": version, "kind": kind,
                                  "data": data}
        if txn is not None:
            record["txn"] = txn
        frame = _encode(record)
        short_write = check_wal_append()  # may raise SimulatedCrash
        offset = self._segment_size
        if short_write is not None:
            # Injected torn write: the prefix really reaches the file,
            # then the "process" dies mid-write.
            from repro.execution.faults import SimulatedCrash

            self._handle.write(frame[: min(short_write, len(frame) - 1)])
            raise SimulatedCrash(
                f"injected short write at WAL offset {offset}"
            )
        try:
            self._handle.write(frame)
            self._segment_size += len(frame)
            self._write_seq += 1
            self._unsynced_appends += 1
            if self.fsync_policy == FSYNC_ALWAYS:
                if commit_point:
                    self._sync_handle()
            elif self.fsync_policy == FSYNC_BATCH:
                if self._unsynced_appends >= self.batch_every:
                    self._sync_handle()
        except OSError as exc:
            # Roll the frame back so the unacknowledged record is not
            # durable: recovered state must equal the acked prefix.
            try:
                os.ftruncate(self._handle.fileno(), offset)
                self._segment_size = offset
                self._write_seq = max(0, self._write_seq - 1)
                self._unsynced_appends = max(0, self._unsynced_appends - 1)
            except OSError:  # pragma: no cover - disk truly gone
                pass
            raise WalError(f"WAL append failed: {exc}") from exc
        self.wal_appends += 1
        self.wal_bytes += len(frame)
        self._track_dirty(kind, data)
        if self._group is not None and commit_point:
            return self._write_seq
        return None

    def wait_durable(self, token: int | None) -> None:
        """Block until the append identified by ``token`` is fsynced.

        A no-op for ``None`` tokens and for every policy except
        ``group`` (the other policies resolve durability inside
        :meth:`append` itself). Called *after* the catalog mutation lock
        is released so concurrent committers batch into one fsync.
        Raises :class:`WalError` if the group fsync failed — the commit
        was not acknowledged and the log is poisoned.
        """
        if token is None or self._group is None:
            return
        self._group.sync(token)

    def _track_dirty(self, kind: str, data: dict) -> None:
        """Feed the incremental-checkpoint dirty set from the record
        stream. Transactional records are tracked optimistically — an
        aborted transaction may over-mark tables as dirty, which only
        costs delta bytes, never correctness (deltas serialize the real
        catalog state)."""
        if kind in ("create_table", "replace_table"):
            self._dirty_tables.add(data["table"]["name"].lower())
        elif kind in ("insert_rows", "create_index"):
            self._dirty_tables.add(data["table"].lower())
        elif kind == "drop_table":
            name = data["name"].lower()
            self._dirty_dropped.add(name)
            # Dropping cascades over declared FKs, so the FK list moved.
            self._dirty_fks = True
        elif kind == "add_foreign_key":
            self._dirty_fks = True

    # -- checkpoints -----------------------------------------------------

    def write_checkpoint(self, state: dict, full: bool = False) -> str:
        """Write ``state`` (a :func:`catalog_state` dict) durably.

        Chooses an incremental delta (tables touched since the last
        checkpoint + drops + the FK list when it changed) when a chain
        anchor exists and the schedule allows, otherwise a full image;
        ``full=True`` forces the latter. Temp-file + fsync + atomic
        rename + directory fsync, then delete (or archive) every segment
        whose records the checkpoint folds in and every checkpoint no
        longer part of the live chain. Crash-safe at every step: an
        interrupted temp write leaves only a ``.tmp`` orphan (removed by
        recovery), a crash before the rename leaves the previous
        checkpoint authoritative, and a crash before the segment
        deletion leaves stale segments that replay idempotently.
        """
        from repro.execution.faults import check_checkpoint

        if self._closed:
            raise WalError("write-ahead log is closed")
        if self._poisoned is not None:
            raise WalError(
                f"write-ahead log is poisoned: {self._poisoned}"
            )
        version = state["version"]
        as_delta = (
            not full
            and self._dirty_known
            and self._last_checkpoint_version is not None
            and version > self._last_checkpoint_version
            and self._chain_length + 1 < self.full_checkpoint_every
        )
        if as_delta:
            dirty = self._dirty_tables
            payload: dict[str, Any] = {
                "format": "delta",
                "version": version,
                "base": self._last_checkpoint_version,
                "tables": [
                    t
                    for t in state["tables"]
                    if t["name"].lower() in dirty
                ],
                "dropped": sorted(self._dirty_dropped),
                "foreign_keys": (
                    state["foreign_keys"] if self._dirty_fks else None
                ),
            }
        else:
            payload = {"format": "full", **state}
        final_path = os.path.join(self.directory, _checkpoint_name(version))
        tmp_path = final_path + _TMP_SUFFIX
        frame = _encode(payload)
        try:
            with open(tmp_path, "wb", buffering=0) as handle:
                handle.write(frame[: len(frame) // 2])
                check_checkpoint("temp")  # crash leaves a torn .tmp
                handle.write(frame[len(frame) // 2:])
                os.fsync(handle.fileno())
                self.fsyncs += 1
            check_checkpoint("rename")
            os.replace(tmp_path, final_path)
            _fsync_dir(self.directory)
        except OSError as exc:
            raise WalError(f"checkpoint write failed: {exc}") from exc
        self.checkpoints += 1
        if as_delta:
            self.incremental_checkpoints += 1
            self._chain_length += 1
        else:
            self.full_checkpoints += 1
            self._chain_length = 0
        self._last_checkpoint_version = version
        self._dirty_tables.clear()
        self._dirty_dropped.clear()
        self._dirty_fks = False
        self._dirty_known = True
        # Everything at or below `version` is now reachable through the
        # checkpoint chain: rotate so new appends land in a fresh
        # segment, then retire the superseded segments and every
        # checkpoint older than the chain's full anchor. The checkpoint
        # itself is already durable; a failure in this cleanup only
        # leaves stale files that replay idempotently.
        try:
            self._rotate(version + 1)
            check_checkpoint("truncate")
            chain_floor = self._chain_anchor_version()
            for name in self._segments():
                path = os.path.join(self.directory, name)
                if path != self._segment_path:
                    self._retire(path, name)
            for name in self._checkpoints_on_disk():
                if _checkpoint_version(name) < chain_floor:
                    self._retire(os.path.join(self.directory, name), name)
            _fsync_dir(self.directory)
        except OSError as exc:
            raise WalError(
                f"checkpoint log truncation failed: {exc}"
            ) from exc
        return final_path

    def _chain_anchor_version(self) -> int:
        """Version of the full checkpoint anchoring the live chain."""
        anchors = [
            _checkpoint_version(name)
            for name in self._checkpoints_on_disk()
        ]
        if not anchors or self._last_checkpoint_version is None:
            return 0
        # The newest checkpoint minus the delta chain behind it: every
        # checkpoint the current chain still references must survive.
        return min(
            v
            for v in anchors
            if v >= self._last_checkpoint_version - self._chain_span()
        )

    def _chain_span(self) -> int:
        # Conservative: keep everything back through the chain that the
        # newest delta could reference. Chain links are identified by
        # exact base versions at load time; keeping a superset is safe.
        return (
            self._last_checkpoint_version or 0
        ) if self._chain_length else 0

    def _retire(self, path: str, name: str) -> None:
        """Remove a superseded file — or move it to the archive."""
        if self.archive:
            archive_dir = os.path.join(self.directory, ARCHIVE_DIR)
            os.makedirs(archive_dir, exist_ok=True)
            os.replace(path, os.path.join(archive_dir, name))
        else:
            os.unlink(path)

    # -- lifecycle -------------------------------------------------------

    def close(self) -> None:
        """Flush, fsync (unless policy is ``never``) and close handles."""
        if self._closed:
            return
        self._closed = True
        with self._io_lock:
            if self._handle is not None:
                if self.fsync_policy != FSYNC_NEVER:
                    try:
                        self._sync_handle()
                    except OSError:  # pragma: no cover - best effort
                        pass
                self._handle.close()
                self._handle = None

    def abandon(self) -> None:
        """Close the file handle without any flushing or fsync.

        The simulated-crash path: after a :class:`~repro.execution.
        faults.SimulatedCrash` the harness abandons the store; because
        segments are unbuffered, closing writes nothing, so the on-disk
        bytes are exactly what the 'crashed process' managed to write.
        """
        self._closed = True
        with self._io_lock:
            if self._handle is not None:
                try:
                    self._handle.close()
                finally:
                    self._handle = None

    def stats(self) -> dict[str, int]:
        return {
            "wal_appends": self.wal_appends,
            "wal_bytes": self.wal_bytes,
            "fsyncs": self.fsyncs,
            "checkpoints": self.checkpoints,
            "full_checkpoints": self.full_checkpoints,
            "incremental_checkpoints": self.incremental_checkpoints,
            "recoveries": self.recoveries,
            "group_commits": self.group_commits,
            "group_batches": self.group_batches,
        }

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Frame reading and the torn-tail / corruption classification
# ---------------------------------------------------------------------------


def _contains_valid_frame(data: bytes) -> bool:
    """Does any offset of ``data`` start a complete CRC-valid frame?

    Used on the claimed-payload bytes of an incomplete final frame: a
    hit means the length header was corrupted into swallowing real
    records, so truncation would silently drop acknowledged history.
    """
    limit = len(data) - _HEADER.size
    for position in range(limit + 1):
        length, checksum = _HEADER.unpack_from(data, position)
        if length == 0:
            continue  # zlib.crc32(b"") == 0: zero-runs would false-hit
        end = position + _HEADER.size + length
        if end > len(data):
            continue
        if zlib.crc32(data[position + _HEADER.size:end]) == checksum:
            return True
    return False


def _read_segment(
    path: str, is_last: bool, repair: bool = True
) -> Iterator[tuple[dict, int]]:
    """Yield ``(record, offset)`` for every decodable frame in a segment.

    Classification of a bad frame (DESIGN.md §15):

    * **complete frame, CRC mismatch** — never a torn write (a torn
      write shortens the file; it cannot rewrite bytes), so this raises
      :class:`WalCorruptionError` even at the very tail;
    * **incomplete frame** (the file ends inside the header or payload)
      in the *final* segment — a torn tail, physically truncated back to
      the last good frame when ``repair`` is true (read-only callers
      pass ``repair=False`` and the iterator just stops). Before
      truncating, two cross-checks refuse flipped-length masquerades:
      if the remaining bytes checksum clean as a whole, or contain an
      embedded CRC-valid frame, this is corruption, not a torn write;
    * **anything bad in a non-final segment** — mid-log damage, raises.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    size = len(data)
    offset = 0
    while offset < size:
        if size - offset < _HEADER.size:
            bad = "truncated record header"
            tail = b""
            checksum = None
        else:
            length, checksum = _HEADER.unpack_from(data, offset)
            start = offset + _HEADER.size
            end = start + length
            if end <= size:
                payload = data[start:end]
                if zlib.crc32(payload) != checksum:
                    raise WalCorruptionError(
                        f"record checksum mismatch at {path}:{offset} on a "
                        "complete frame — bit rot, not a torn write; "
                        "refusing to drop acknowledged history"
                    )
                try:
                    record = pickle.loads(payload)
                except Exception as exc:
                    raise WalCorruptionError(
                        f"undecodable WAL record at {path}:{offset}: {exc}"
                    ) from exc
                yield record, offset
                offset = end
                continue
            bad = "truncated record payload"
            tail = data[start:]
        if not is_last:
            raise WalCorruptionError(
                f"{bad} at {path}:{offset} with later log data following "
                "— mid-log damage, not a torn tail"
            )
        if tail and checksum is not None:
            if zlib.crc32(tail) == checksum:
                raise WalCorruptionError(
                    f"corrupt length field at {path}:{offset}: the frame's "
                    "payload is intact and checksums clean — refusing to "
                    "truncate an acknowledged record"
                )
            if _contains_valid_frame(tail):
                raise WalCorruptionError(
                    f"corrupt length field at {path}:{offset}: the claimed "
                    "payload swallows a complete later frame — mid-log "
                    "damage, not a torn tail"
                )
        if repair:
            # Torn tail: physically truncate back to the last good frame
            # so the next writer appends after clean history.
            with open(path, "r+b") as trunc:
                trunc.truncate(offset)
        return


def _load_checkpoint(path: str) -> dict:
    with open(path, "rb") as handle:
        header = handle.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise WalCorruptionError(f"truncated checkpoint header: {path}")
        length, checksum = _HEADER.unpack(header)
        payload = handle.read(length)
        if len(payload) < length or zlib.crc32(payload) != checksum:
            raise WalCorruptionError(
                f"checkpoint failed its CRC: {path} — acknowledged history "
                "is unreadable"
            )
        return pickle.loads(payload)


def _resolve_checkpoint_chain(
    paths_by_version: dict[int, str], newest: int
) -> dict:
    """Fold an incremental-checkpoint chain into one full state dict.

    Walks ``base`` links from the newest checkpoint back to a full
    image, then replays the deltas forward (drops, then table upserts,
    then the FK list when present). A missing or unreadable link raises
    :class:`WalCorruptionError` — half a chain is not a state.
    """
    chain: list[dict] = []
    version = newest
    seen: set[int] = set()
    while True:
        if version in seen:
            raise WalCorruptionError(
                f"incremental checkpoint chain loops at v{version}"
            )
        seen.add(version)
        path = paths_by_version.get(version)
        if path is None:
            raise WalCorruptionError(
                f"incremental checkpoint chain is broken: base checkpoint "
                f"v{version} is missing"
            )
        state = _load_checkpoint(path)
        chain.append(state)
        if state.get("format", "full") != "delta":
            break
        version = state["base"]
    full = chain[-1]
    tables = {t["name"].lower(): t for t in full["tables"]}
    foreign_keys = full["foreign_keys"]
    resolved_version = full["version"]
    for delta in reversed(chain[:-1]):
        for name in delta["dropped"]:
            tables.pop(name.lower(), None)
        for tstate in delta["tables"]:
            tables[tstate["name"].lower()] = tstate
        if delta["foreign_keys"] is not None:
            foreign_keys = delta["foreign_keys"]
        resolved_version = delta["version"]
    return {
        "version": resolved_version,
        "tables": list(tables.values()),
        "foreign_keys": foreign_keys,
    }


# ---------------------------------------------------------------------------
# Recovery
# ---------------------------------------------------------------------------


class _TxnBuffer:
    """Operations of one in-flight transaction during replay."""

    __slots__ = ("txn_id", "begin_version", "segment_index", "offset", "ops")

    def __init__(
        self, txn_id: int, begin_version: int, segment_index: int, offset: int
    ):
        self.txn_id = txn_id
        self.begin_version = begin_version
        self.segment_index = segment_index
        self.offset = offset
        self.ops: list[tuple[str, dict, int]] = []


def _replay(
    catalog: Catalog,
    segment_paths: list[str],
    repair: bool,
    stop_at: int | None = None,
) -> tuple[int, _TxnBuffer | None, list[int], int]:
    """Replay committed history from ``segment_paths`` onto ``catalog``.

    Transactional records are buffered until their durable terminator:
    ``txn_commit`` applies the buffer (and the begin/commit version
    bumps), ``txn_abort`` discards it but keeps the version bumps —
    versions never rewind. With ``stop_at``, records beyond that
    version are tracked (for boundary reporting) but not applied.

    Returns ``(replayed, pending, boundaries, max_seen)``: the count of
    applied mutation records, the unterminated tail transaction (if
    any), every committed-state boundary version observed (including
    those beyond ``stop_at``), and the highest record version seen.
    """
    replayed = 0
    seen = catalog.version
    boundaries: list[int] = [catalog.version]
    pending: _TxnBuffer | None = None
    # Once `stop_at` is reached we stop mutating the catalog but keep
    # scanning versions so refusals can name the reachable range.
    for index, path in enumerate(segment_paths):
        is_last = index == len(segment_paths) - 1
        for record, offset in _read_segment(path, is_last, repair=repair):
            version = record["version"]
            if version <= seen:
                continue  # stale duplicate — already folded in
            if version != seen + 1:
                raise WalCorruptionError(
                    f"WAL version gap in {os.path.basename(path)}: expected "
                    f"{seen + 1}, found {version} — acknowledged history "
                    "is missing"
                )
            seen = version
            kind = record["kind"]
            txn = record.get("txn")
            applying = stop_at is None or version <= stop_at
            if kind == "txn_begin":
                if pending is not None:
                    raise WalCorruptionError(
                        f"transaction {txn} begins at v{version} while "
                        f"transaction {pending.txn_id} is still open — "
                        "interleaved transactions are impossible"
                    )
                pending = _TxnBuffer(txn, version, index, offset)
            elif kind == "txn_commit":
                if pending is None or txn != pending.txn_id:
                    raise WalCorruptionError(
                        f"commit record for transaction {txn} at v{version} "
                        "without a matching begin"
                    )
                if applying:
                    catalog._version = pending.begin_version
                    for op_kind, op_data, op_version in pending.ops:
                        _apply_record(catalog, op_kind, op_data)
                        if catalog.version != op_version:
                            raise WalCorruptionError(
                                f"replaying {op_kind!r} @v{op_version} left "
                                f"the catalog at v{catalog.version}"
                            )
                    catalog._version = version
                    replayed += len(pending.ops)
                boundaries.append(version)
                pending = None
            elif kind == "txn_abort":
                if pending is None or txn != pending.txn_id:
                    raise WalCorruptionError(
                        f"abort record for transaction {txn} at v{version} "
                        "without a matching begin"
                    )
                if applying:
                    # The rollback consumed versions but no data.
                    catalog._version = version
                boundaries.append(version)
                pending = None
            else:
                if txn is not None:
                    if pending is None or txn != pending.txn_id:
                        raise WalCorruptionError(
                            f"record for transaction {txn} at v{version} "
                            "outside its begin/terminator bracket"
                        )
                    pending.ops.append((kind, record["data"], version))
                else:
                    if pending is not None:
                        raise WalCorruptionError(
                            f"autocommit record at v{version} inside open "
                            f"transaction {pending.txn_id}"
                        )
                    if applying:
                        _apply_record(catalog, kind, record["data"])
                        if catalog.version != version:
                            raise WalCorruptionError(
                                f"replaying {kind!r} @v{version} left the "
                                f"catalog at v{catalog.version}"
                            )
                        replayed += 1
                    boundaries.append(version)
    return replayed, pending, boundaries, seen


def _rollback_tail_txn(
    segment_paths: list[str], pending: _TxnBuffer
) -> None:
    """Physically erase an unterminated tail transaction from the log.

    Deletes every segment after the one holding the begin record, then
    truncates that segment back to the begin offset — the durable log
    ends at the last committed state, exactly what recovery returned.
    """
    for path in segment_paths[pending.segment_index + 1:]:
        os.unlink(path)
    with open(segment_paths[pending.segment_index], "r+b") as handle:
        handle.truncate(pending.offset)
    _fsync_dir(os.path.dirname(segment_paths[pending.segment_index]))


def recover(
    directory: str,
    on_progress: Callable[[str], None] | None = None,
    repair: bool = True,
) -> tuple[Catalog, int]:
    """Rebuild the catalog from ``directory``; returns (catalog, replayed).

    Protocol: remove temp-file orphans, load the newest checkpoint chain
    (its CRCs must pass — a corrupt newest chain is unrecoverable
    because the segments it superseded are gone), then replay every
    committed segment record with ``version > checkpoint.version`` in
    order. Duplicates (stale segments surviving a crash before
    checkpoint truncation) replay idempotently; a version gap raises
    :class:`WalCorruptionError`; a torn tail on the newest segment is
    physically truncated, and so is an unterminated tail transaction —
    the catalog rolls back to the last committed state. ``repair=False``
    (the inspection CLI) performs both analyses without touching disk.
    """
    if not os.path.isdir(directory):
        os.makedirs(directory, exist_ok=True)
    if repair:
        for name in sorted(os.listdir(directory)):
            if name.endswith(_TMP_SUFFIX):
                os.unlink(os.path.join(directory, name))
    checkpoints = sorted(
        name
        for name in os.listdir(directory)
        if name.startswith(_CHECKPOINT_PREFIX)
        and name.endswith(_CHECKPOINT_SUFFIX)
    )
    if checkpoints:
        by_version = {
            _checkpoint_version(name): os.path.join(directory, name)
            for name in checkpoints
        }
        state = _resolve_checkpoint_chain(
            by_version, _checkpoint_version(checkpoints[-1])
        )
        catalog = restore_catalog(state)
        if on_progress is not None:
            on_progress(f"checkpoint {checkpoints[-1]} @v{catalog.version}")
    else:
        catalog = Catalog()
    segment_paths = [
        os.path.join(directory, name)
        for name in sorted(
            name
            for name in os.listdir(directory)
            if name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)
        )
    ]
    replayed, pending, _, _ = _replay(catalog, segment_paths, repair=repair)
    if pending is not None and repair:
        _rollback_tail_txn(segment_paths, pending)
        if on_progress is not None:
            on_progress(
                f"rolled back unterminated transaction {pending.txn_id} "
                f"(begun @v{pending.begin_version})"
            )
    if on_progress is not None:
        on_progress(f"replayed {replayed} records to v{catalog.version}")
    return catalog, replayed


# ---------------------------------------------------------------------------
# Point-in-time recovery over the archived chain
# ---------------------------------------------------------------------------


def _gather_history(
    directory: str,
) -> tuple[dict[int, str], list[str]]:
    """Checkpoints (by version) and segment paths across live + archive.

    The live directory wins when both hold a checkpoint of the same
    version (identical content either way); segments sort by their
    version-encoded names, archive before live for equal names, and
    stale duplicates replay idempotently.
    """
    archive_dir = os.path.join(directory, ARCHIVE_DIR)
    checkpoints: dict[int, str] = {}
    segments: list[tuple[str, int, str]] = []
    for rank, base in enumerate((archive_dir, directory)):
        if not os.path.isdir(base):
            continue
        for name in sorted(os.listdir(base)):
            path = os.path.join(base, name)
            if name.startswith(_CHECKPOINT_PREFIX) and name.endswith(
                _CHECKPOINT_SUFFIX
            ):
                checkpoints[_checkpoint_version(name)] = path
            elif name.startswith(_SEGMENT_PREFIX) and name.endswith(
                _SEGMENT_SUFFIX
            ):
                segments.append((name, rank, path))
    segments.sort()
    return checkpoints, [path for _, _, path in segments]


def recover_point_in_time(directory: str, version: int) -> Catalog:
    """The catalog exactly as of committed version ``version``.

    Reconstructs from the best checkpoint chain at or below the target
    (searching the archive as well as the live directory) plus the
    archived and live segments, replaying committed transactions up to
    exactly ``version``. Never modifies the store. Raises
    :class:`PointInTimeUnavailable` when the target is not a reachable
    committed-state boundary — before the oldest archived history,
    beyond the newest committed version, or inside a transaction.
    """
    if version < 0:
        raise PointInTimeUnavailable(
            f"recover_to={version}: versions are non-negative"
        )
    checkpoints, segment_paths = _gather_history(directory)
    basis_version = 0
    basis_state: dict | None = None
    for candidate in sorted(checkpoints, reverse=True):
        if candidate > version:
            continue
        basis_state = _resolve_checkpoint_chain(checkpoints, candidate)
        basis_version = candidate
        break
    catalog = restore_catalog(basis_state) if basis_state else Catalog()
    try:
        _, _, boundaries, _ = _replay(
            catalog, segment_paths, repair=False, stop_at=version
        )
    except WalCorruptionError as exc:
        if catalog.version == version:  # pragma: no cover - damage beyond
            return catalog
        raise PointInTimeUnavailable(
            f"recover_to={version}: history between v{basis_version} and "
            f"the target is unreadable ({exc})"
        ) from exc
    if catalog.version == version:
        return catalog
    reachable = sorted(set(boundaries))
    newest = reachable[-1] if reachable else 0
    if version > newest:
        raise PointInTimeUnavailable(
            f"recover_to={version} is beyond the newest committed version "
            f"v{newest}"
        )
    if version < reachable[0]:
        raise PointInTimeUnavailable(
            f"recover_to={version} predates the oldest recoverable history "
            f"(v{reachable[0]}); enable archive=True to retain superseded "
            "segments for point-in-time recovery"
        )
    below = max(b for b in reachable if b < version)
    above = min(b for b in reachable if b > version)
    raise PointInTimeUnavailable(
        f"recover_to={version} is not a committed-state boundary (it falls "
        f"inside a transaction); nearest committed versions are v{below} "
        f"and v{above}"
    )


def recoverable_range(directory: str) -> tuple[int, int]:
    """The ``(oldest, newest)`` committed versions PITR can reproduce.

    ``oldest`` is 0 when the full record history survives (archive mode,
    or no checkpoint has truncated the log yet), otherwise the oldest
    checkpoint version still on disk (checkpoint versions between
    ``oldest`` and the newest checkpoint are reachable individually;
    versions that fell between checkpoints whose segments were deleted
    are not). Raises :class:`WalCorruptionError` on unreadable history.
    """
    checkpoints, segment_paths = _gather_history(directory)
    try:
        # Full-history replay from the empty catalog: succeeds exactly
        # when no checkpoint ever discarded segments (or they were all
        # archived), in which case every version from 0 is reachable.
        _, _, boundaries, _ = _replay(
            Catalog(), segment_paths, repair=False
        )
        return 0, max(boundaries)
    except WalCorruptionError:
        if not checkpoints:
            raise
    basis = _resolve_checkpoint_chain(checkpoints, max(checkpoints))
    catalog = restore_catalog(basis)
    _, _, boundaries, _ = _replay(catalog, segment_paths, repair=False)
    return min(checkpoints), max(boundaries)


# ---------------------------------------------------------------------------
# Inspection CLI: python -m repro.storage.wal <dir>
# ---------------------------------------------------------------------------


def _dump_segment(path: str, label: str, out: Callable[[str], None]) -> None:
    """Print one line per frame, tolerating damage (marked, not raised)."""
    with open(path, "rb") as handle:
        data = handle.read()
    size = len(data)
    offset = 0
    while offset < size:
        if size - offset < _HEADER.size:
            out(f"  {label} @{offset}: TORN (truncated header, "
                f"{size - offset} bytes)")
            return
        length, checksum = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if end > size:
            out(f"  {label} @{offset}: TORN (payload {size - start}/"
                f"{length} bytes)")
            return
        payload = data[start:end]
        if zlib.crc32(payload) != checksum:
            out(f"  {label} @{offset}: crc=BAD (complete frame, "
                f"{length} bytes)")
            return
        try:
            record = pickle.loads(payload)
        except Exception:
            out(f"  {label} @{offset}: crc=ok but payload undecodable")
            return
        txn = record.get("txn")
        out(
            f"  {label} @{offset}: v{record['version']} "
            f"{record['kind']} txn={txn if txn is not None else '-'} crc=ok"
        )
        offset = end


def main(argv: list[str] | None = None) -> int:
    """Inspect a WAL directory: frames, chain verification, PITR range."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.storage.wal",
        description=(
            "Inspect a write-ahead-log directory: dump frames, verify the "
            "segment/checkpoint chain end-to-end, and report the "
            "recoverable version range for point-in-time recovery."
        ),
    )
    parser.add_argument("directory", help="the WAL directory to inspect")
    parser.add_argument(
        "--dump",
        action="store_true",
        help="print every frame (version, kind, txn id, CRC status)",
    )
    args = parser.parse_args(argv)
    directory = args.directory
    if not os.path.isdir(directory):
        print(f"error: {directory} is not a directory")
        return 2
    checkpoints, segment_paths = _gather_history(directory)
    root = os.path.abspath(directory)
    live_segments = sum(
        1
        for p in segment_paths
        if os.path.dirname(os.path.abspath(p)) == root
    )
    archived = len(segment_paths) - live_segments
    print(
        f"{directory}: {live_segments} live segment(s), "
        f"{archived} archived, {len(checkpoints)} checkpoint(s)"
    )
    if args.dump:
        for path in segment_paths:
            rel = os.path.relpath(path, directory)
            print(f"segment {rel}:")
            _dump_segment(path, rel, print)
        for version in sorted(checkpoints):
            rel = os.path.relpath(checkpoints[version], directory)
            try:
                state = _load_checkpoint(checkpoints[version])
            except WalCorruptionError as exc:
                print(f"checkpoint {rel}: UNREADABLE ({exc})")
                continue
            fmt = state.get("format", "full")
            extra = (
                f" base=v{state['base']}" if fmt == "delta" else ""
            )
            print(
                f"checkpoint {rel}: v{version} {fmt}{extra} "
                f"({len(state['tables'])} table(s))"
            )
    try:
        catalog, replayed = recover(directory, repair=False)
    except WalError as exc:
        print(f"verify: FAILED — {type(exc).__name__}: {exc}")
        return 1
    print(
        f"verify: ok — state v{catalog.version}, "
        f"{len(catalog.table_names())} table(s), "
        f"{replayed} record(s) beyond the newest checkpoint"
    )
    try:
        oldest, newest = recoverable_range(directory)
    except WalError as exc:
        print(f"recoverable range: unavailable ({exc})")
        return 1
    print(f"recoverable versions: v{oldest}..v{newest} (recover_to=)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
