"""Schemas: ordered, named, typed column lists with qualifier resolution.

A :class:`Schema` describes the shape of any tuple stream in the engine —
base tables, intermediate operator outputs and the temporary ``$group``
relations bound by GApply. Columns carry an optional *qualifier* (a table
name or alias) so that a join of two tables can expose ``s.name`` and
``p.name`` side by side while still resolving unambiguous bare names.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator

from repro.errors import AmbiguousColumnError, SchemaError, UnknownColumnError
from repro.storage.types import DataType


@dataclass(frozen=True)
class Column:
    """One column: a name, a type and an optional qualifier.

    ``nullable`` is advisory metadata used by the optimizer's foreign-key
    reasoning and by the TPC-H loader's constraint checks; the executor
    itself never forbids NULLs.
    """

    name: str
    dtype: DataType = DataType.ANY
    qualifier: str | None = None
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if "." in self.name:
            raise SchemaError(
                f"column name {self.name!r} may not contain '.'; use qualifier"
            )

    @property
    def qualified_name(self) -> str:
        if self.qualifier:
            return f"{self.qualifier}.{self.name}"
        return self.name

    def matches(self, reference: str) -> bool:
        """Whether this column is named by ``reference``.

        ``reference`` may be bare (``p_name``) or qualified (``part.p_name``).
        A bare reference matches regardless of the column's qualifier; a
        qualified reference must match both parts.
        """
        if "." in reference:
            qualifier, name = reference.rsplit(".", 1)
            return self.name == name and self.qualifier == qualifier
        return self.name == reference

    def with_qualifier(self, qualifier: str | None) -> "Column":
        return replace(self, qualifier=qualifier)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Column({self.qualified_name}: {self.dtype.value})"


class Schema:
    """An ordered list of :class:`Column` with name-resolution helpers.

    Duplicate qualified names are rejected; duplicate *bare* names are
    allowed (they arise from joins) but resolving such a bare name raises
    :class:`AmbiguousColumnError`.
    """

    __slots__ = ("columns", "_index")

    def __init__(self, columns: Iterable[Column]):
        self.columns: tuple[Column, ...] = tuple(columns)
        seen: set[str] = set()
        for column in self.columns:
            qname = column.qualified_name
            if qname in seen:
                raise SchemaError(f"duplicate column {qname!r} in schema")
            seen.add(qname)
        # Lazy-built map: reference string -> position (or error marker).
        self._index: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @staticmethod
    def of(*specs: tuple[str, DataType] | Column | str) -> "Schema":
        """Convenience constructor.

        Accepts ``Column`` instances, ``(name, dtype)`` pairs, or bare names
        (typed ``ANY``). Example::

            Schema.of(("s_suppkey", DataType.INTEGER), "s_name")
        """
        columns: list[Column] = []
        for spec in specs:
            if isinstance(spec, Column):
                columns.append(spec)
            elif isinstance(spec, str):
                columns.append(Column(spec))
            else:
                name, dtype = spec
                columns.append(Column(name, dtype))
        return Schema(columns)

    def qualify(self, qualifier: str | None) -> "Schema":
        """Return a copy with every column re-qualified (aliasing a table)."""
        return Schema(col.with_qualifier(qualifier) for col in self.columns)

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a join/cross product: our columns then ``other``'s."""
        return Schema(self.columns + other.columns)

    def project(self, references: Iterable[str]) -> "Schema":
        """Schema restricted to the referenced columns, in reference order."""
        return Schema(self.columns[self.index_of(ref)] for ref in references)

    def rename(self, names: Iterable[str]) -> "Schema":
        """Replace column names positionally (AS-clause output naming)."""
        names = list(names)
        if len(names) != len(self.columns):
            raise SchemaError(
                f"rename expects {len(self.columns)} names, got {len(names)}"
            )
        return Schema(
            Column(name, col.dtype, None, col.nullable)
            for name, col in zip(names, self.columns)
        )

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def index_of(self, reference: str) -> int:
        """Position of the column named by ``reference``.

        Raises :class:`UnknownColumnError` or :class:`AmbiguousColumnError`.
        """
        cached = self._index.get(reference)
        if cached is not None:
            return cached
        matches = [
            i for i, col in enumerate(self.columns) if col.matches(reference)
        ]
        if not matches:
            raise UnknownColumnError(
                reference, [c.qualified_name for c in self.columns]
            )
        if len(matches) > 1:
            raise AmbiguousColumnError(
                reference, [self.columns[i].qualified_name for i in matches]
            )
        self._index[reference] = matches[0]
        return matches[0]

    def column(self, reference: str) -> Column:
        return self.columns[self.index_of(reference)]

    def has(self, reference: str) -> bool:
        try:
            self.index_of(reference)
            return True
        except UnknownColumnError:
            return False
        except AmbiguousColumnError:
            return True

    def names(self) -> list[str]:
        return [col.name for col in self.columns]

    def qualified_names(self) -> list[str]:
        return [col.qualified_name for col in self.columns]

    def indices_of(self, references: Iterable[str]) -> list[int]:
        return [self.index_of(ref) for ref in references]

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self.columns)

    def __getitem__(self, index: int) -> Column:
        return self.columns[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self.columns == other.columns

    def __hash__(self) -> int:
        return hash(self.columns)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{c.qualified_name}:{c.dtype.value}" for c in self.columns
        )
        return f"Schema({inner})"

    def describe(self) -> str:
        """Multi-line human-readable description (used by examples/docs)."""
        width = max((len(c.qualified_name) for c in self.columns), default=0)
        lines = [
            f"  {c.qualified_name:<{width}}  {c.dtype.value}"
            f"{'' if c.nullable else '  NOT NULL'}"
            for c in self.columns
        ]
        return "\n".join(lines)
