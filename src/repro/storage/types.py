"""SQL value domain: data types, NULL handling and three-valued logic.

The engine follows SQL semantics throughout:

* ``NULL`` is represented by Python ``None``.
* Comparisons involving NULL yield the third truth value ``UNKNOWN``.
* Predicates keep a row only when they evaluate to ``TRUE`` (never on
  ``UNKNOWN``), exactly as a WHERE clause does.

:class:`TruthValue` implements Kleene three-valued logic, and the helpers in
this module (:func:`compare_values`, :func:`sql_eq`, ...) are the single place
where NULL-aware value comparison is defined; everything above (expressions,
joins, grouping) delegates here.

Grouping is the one context where SQL treats NULLs as equal to each other
(``GROUP BY`` puts all NULLs in one group); :func:`grouping_key` provides that
behaviour.
"""

from __future__ import annotations

import datetime
import enum
from typing import Any

from repro.errors import TypeCheckError


class DataType(enum.Enum):
    """The SQL types supported by the engine.

    The set is deliberately small but covers everything TPC-H and the paper's
    queries need. ``ANY`` is used for columns whose type cannot be inferred
    statically (e.g. a ``NULL`` literal in one branch of a UNION).
    """

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    BOOLEAN = "boolean"
    DATE = "date"
    ANY = "any"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType.{self.name}"

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INTEGER, DataType.FLOAT, DataType.ANY)

    @property
    def is_comparable(self) -> bool:
        return self is not DataType.BOOLEAN


_PYTHON_TYPE_MAP: dict[DataType, tuple[type, ...]] = {
    DataType.INTEGER: (int,),
    DataType.FLOAT: (float, int),
    DataType.STRING: (str,),
    DataType.BOOLEAN: (bool,),
    DataType.DATE: (datetime.date,),
}


def infer_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a Python value.

    ``None`` infers to :data:`DataType.ANY` because a NULL belongs to every
    type.
    """
    if value is None:
        return DataType.ANY
    if isinstance(value, bool):  # bool is a subclass of int; check first
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.STRING
    if isinstance(value, datetime.date):
        return DataType.DATE
    raise TypeCheckError(f"unsupported Python value for SQL domain: {value!r}")


def check_value(value: Any, expected: DataType) -> Any:
    """Validate that ``value`` inhabits ``expected``; return it unchanged.

    NULL inhabits every type. INTEGER values are accepted where FLOAT is
    expected (SQL numeric promotion) but not the other way around.
    """
    if value is None or expected is DataType.ANY:
        return value
    allowed = _PYTHON_TYPE_MAP[expected]
    if isinstance(value, bool) and expected is not DataType.BOOLEAN:
        raise TypeCheckError(f"boolean value {value!r} where {expected.value} expected")
    if not isinstance(value, allowed):
        raise TypeCheckError(
            f"value {value!r} ({type(value).__name__}) does not inhabit "
            f"SQL type {expected.value}"
        )
    return value


def common_type(left: DataType, right: DataType) -> DataType:
    """The result type when two typed values meet (comparison, UNION, CASE)."""
    if left is right:
        return left
    if DataType.ANY in (left, right):
        return right if left is DataType.ANY else left
    numeric = {DataType.INTEGER, DataType.FLOAT}
    if left in numeric and right in numeric:
        return DataType.FLOAT
    raise TypeCheckError(f"incompatible types: {left.value} and {right.value}")


class TruthValue(enum.Enum):
    """Kleene three-valued logic values used by SQL predicates."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        """A predicate passes only when it is definitely TRUE."""
        return self is TruthValue.TRUE

    def and_(self, other: "TruthValue") -> "TruthValue":
        if TruthValue.FALSE in (self, other):
            return TruthValue.FALSE
        if TruthValue.UNKNOWN in (self, other):
            return TruthValue.UNKNOWN
        return TruthValue.TRUE

    def or_(self, other: "TruthValue") -> "TruthValue":
        if TruthValue.TRUE in (self, other):
            return TruthValue.TRUE
        if TruthValue.UNKNOWN in (self, other):
            return TruthValue.UNKNOWN
        return TruthValue.FALSE

    def not_(self) -> "TruthValue":
        if self is TruthValue.TRUE:
            return TruthValue.FALSE
        if self is TruthValue.FALSE:
            return TruthValue.TRUE
        return TruthValue.UNKNOWN

    @staticmethod
    def of(value: bool | None) -> "TruthValue":
        """Lift a nullable Python boolean into the 3VL domain."""
        if value is None:
            return TruthValue.UNKNOWN
        return TruthValue.TRUE if value else TruthValue.FALSE

    def to_sql(self) -> bool | None:
        """Lower back to a nullable boolean (the SQL BOOLEAN value domain)."""
        if self is TruthValue.UNKNOWN:
            return None
        return self is TruthValue.TRUE


TRUE = TruthValue.TRUE
FALSE = TruthValue.FALSE
UNKNOWN = TruthValue.UNKNOWN


def compare_values(left: Any, right: Any) -> int | None:
    """SQL comparison: return -1/0/+1, or ``None`` when either side is NULL.

    Mixed int/float comparison is allowed; any other cross-type comparison is
    a type error (SQL would fail to coerce).
    """
    if left is None or right is None:
        return None
    lt, rt = infer_type(left), infer_type(right)
    if lt is not rt and not (lt.is_numeric and rt.is_numeric):
        raise TypeCheckError(
            f"cannot compare {lt.value} value {left!r} with {rt.value} value {right!r}"
        )
    if left < right:
        return -1
    if left > right:
        return 1
    return 0


def sql_eq(left: Any, right: Any) -> TruthValue:
    cmp = compare_values(left, right)
    return UNKNOWN if cmp is None else TruthValue.of(cmp == 0)


def sql_ne(left: Any, right: Any) -> TruthValue:
    cmp = compare_values(left, right)
    return UNKNOWN if cmp is None else TruthValue.of(cmp != 0)


def sql_lt(left: Any, right: Any) -> TruthValue:
    cmp = compare_values(left, right)
    return UNKNOWN if cmp is None else TruthValue.of(cmp < 0)


def sql_le(left: Any, right: Any) -> TruthValue:
    cmp = compare_values(left, right)
    return UNKNOWN if cmp is None else TruthValue.of(cmp <= 0)


def sql_gt(left: Any, right: Any) -> TruthValue:
    cmp = compare_values(left, right)
    return UNKNOWN if cmp is None else TruthValue.of(cmp > 0)


def sql_ge(left: Any, right: Any) -> TruthValue:
    cmp = compare_values(left, right)
    return UNKNOWN if cmp is None else TruthValue.of(cmp >= 0)


class _NullKey:
    """Sentinel that stands in for NULL inside grouping/distinct keys.

    It is equal only to itself and sorts before every concrete value, giving
    the engine a single, deterministic NULL group and a stable sort order.
    """

    _instance: "_NullKey | None" = None

    def __new__(cls) -> "_NullKey":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL_KEY"

    def __lt__(self, other: Any) -> bool:
        return not isinstance(other, _NullKey)

    def __gt__(self, other: Any) -> bool:
        return False

    def __le__(self, other: Any) -> bool:
        return True

    def __ge__(self, other: Any) -> bool:
        return isinstance(other, _NullKey)


NULL_KEY = _NullKey()


def grouping_key(values: tuple[Any, ...]) -> tuple[Any, ...]:
    """Build a hashable, orderable grouping key from a tuple of SQL values.

    Unlike WHERE-clause equality, GROUP BY / DISTINCT treat NULLs as
    equal to each other, so NULL maps to the dedicated :data:`NULL_KEY`
    sentinel. Booleans are tagged so ``True`` does not collide with ``1``.
    """
    key = []
    for value in values:
        if value is None:
            key.append(NULL_KEY)
        elif isinstance(value, bool):
            key.append(("bool", value))
        else:
            key.append(value)
    return tuple(key)


def sort_key(values: tuple[Any, ...]) -> tuple[Any, ...]:
    """Key usable with ``sorted``; NULLs sort first (NULLS FIRST semantics)."""
    return grouping_key(values)


def format_value(value: Any) -> str:
    """Render a SQL value for display/tagging. NULL renders as ``NULL``."""
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, float):
        # Trim floating noise for stable display without losing precision
        # meaningful at TPC-H money scales.
        return f"{value:.6g}"
    if isinstance(value, datetime.date):
        return value.isoformat()
    return str(value)
