"""The catalog: named tables, declared constraints and cached statistics.

The catalog is the engine's notion of a database. It records, besides the
tables themselves:

* **primary keys** — needed by the invariant-grouping rule to know when a
  join preserves group multiplicity;
* **foreign keys** — the paper's Definition 2 requires "every join above n is
  a foreign-key join", and the optimizer asks the catalog whether an equijoin
  column pair is a declared key/foreign-key pair;
* **statistics** — computed lazily, invalidated explicitly.

**Concurrency and snapshots.** A catalog is shared by every query on a
:class:`~repro.api.Database`, so its structure is versioned and guarded:

* every structural mutation (register/drop/FK) happens under one
  re-entrant ``mutation_lock`` and bumps a monotonically increasing
  ``version``;
* :meth:`snapshot` pins the current version as an immutable
  :class:`CatalogSnapshot` — the table objects are *frozen* (in-place
  mutation raises) and the snapshot refuses DDL, so a query planned and
  executed against it can never observe a torn catalog or half-applied
  write, no matter what concurrent writers do;
* writers use the copy-on-write helpers (:meth:`insert_rows`,
  :meth:`replace_table`) which validate fully, clone the frozen version,
  and swap the new version in atomically under the lock. Readers never
  block on writers and writers never block on readers; writers serialize
  only against each other.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.errors import CatalogError, ConstraintError, WalError
from repro.storage.statistics import TableStatistics, compute_table_statistics
from repro.storage.table import Table
from repro.storage.types import grouping_key


@dataclass(frozen=True)
class ForeignKey:
    """A declared reference: child.columns -> parent.columns (same arity)."""

    child_table: str
    child_columns: tuple[str, ...]
    parent_table: str
    parent_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.child_columns) != len(self.parent_columns):
            raise CatalogError(
                "foreign key column lists must have equal length: "
                f"{self.child_columns} vs {self.parent_columns}"
            )


@dataclass
class _TxnState:
    """The rollback basis of an in-flight transaction.

    Captured at ``begin`` after freezing every table (writers then
    copy-on-write, so these objects never change underneath us); restored
    wholesale on rollback or on a failed commit."""

    txn_id: int
    owner: int
    tables: dict[str, Table]
    foreign_keys: list[ForeignKey]
    statistics: dict[str, TableStatistics]
    begin_version: int


class Catalog:
    """A mutable collection of tables with constraints and statistics."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._foreign_keys: list[ForeignKey] = []
        self._statistics: dict[str, TableStatistics] = {}
        #: Serializes structural mutation and copy-on-write swaps.
        #: Re-entrant so a write helper can call ``table()`` internally.
        self.mutation_lock = threading.RLock()
        #: Held from ``begin_transaction`` until its terminator by the
        #: owning thread; every mutation takes it first (ordering:
        #: gate → ``mutation_lock``), so writers from other threads
        #: queue behind an open transaction instead of interleaving
        #: with it — there is exactly one transaction at a time, which
        #: is what makes the WAL's begin/terminator bracketing flat.
        self._txn_gate = threading.RLock()
        self._txn: _TxnState | None = None
        self._version = 0
        #: Optional write-ahead log (:mod:`repro.storage.wal`); when
        #: attached, every mutation journals itself *before* applying.
        self._wal = None

    @property
    def version(self) -> int:
        """Monotonic mutation counter; bumped by every structural change."""
        return self._version

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------

    def attach_wal(self, wal) -> None:
        """Journal every future mutation to ``wal`` before applying it."""
        with self.mutation_lock:
            self._wal = wal

    def _log(self, kind: str, data_fn) -> int | None:
        """Append one WAL record for the mutation about to apply.

        Called under ``mutation_lock`` *after* the mutation validated and
        *before* any in-memory state changes: if the append fails (typed
        :class:`~repro.errors.WalError`) or the process 'dies' at an
        armed crash point, the caller's state is untouched — the durable
        log and the acknowledged state can never diverge. ``data_fn`` is
        lazy so non-durable catalogs pay nothing for serialization.

        Inside a transaction the record carries the transaction id and is
        *not* a commit point (durability resolves at the terminator);
        autocommit records are commit points and may return a
        group-commit token for :meth:`_wait_durable`.
        """
        if self._wal is None:
            return None
        txn = self._txn
        return self._wal.append(
            self._version + 1,
            kind,
            data_fn(),
            txn=txn.txn_id if txn is not None else None,
            commit_point=txn is None,
        )

    def _wait_durable(self, token: int | None) -> None:
        """Resolve a group-commit token *outside* every lock.

        Must be called after both the transaction gate and the mutation
        lock are released: the whole point of group commit is that
        concurrent committers reach the fsync batcher together, which
        they cannot do while serialized on the catalog's locks.
        """
        if token is not None and self._wal is not None:
            self._wal.wait_durable(token)

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def begin_transaction(self) -> int:
        """Open a transaction; returns its id (the begin record version).

        Takes the transaction gate — held until :meth:`commit_transaction`
        or :meth:`rollback_transaction` — so every other writer thread
        queues behind this transaction. The begin record consumes a
        catalog version (versions never rewind, even on rollback: the
        plan cache keys on version, so a rewound counter could alias a
        stale cached plan onto a different catalog state).
        """
        self._txn_gate.acquire()
        try:
            with self.mutation_lock:
                if self._txn is not None:
                    raise CatalogError(
                        "a transaction is already active; nested "
                        "transactions are not supported"
                    )
                txn_id = self._version + 1
                for table in self._tables.values():
                    table.freeze()
                if self._wal is not None:
                    self._wal.append(
                        txn_id, "txn_begin", {}, txn=txn_id,
                        commit_point=False,
                    )
                self._txn = _TxnState(
                    txn_id=txn_id,
                    owner=threading.get_ident(),
                    tables=dict(self._tables),
                    foreign_keys=list(self._foreign_keys),
                    statistics=dict(self._statistics),
                    begin_version=txn_id,
                )
                self._version = txn_id
                return txn_id
        except BaseException:
            self._txn_gate.release()
            raise

    def _require_owned_txn(self, action: str) -> None:
        txn = self._txn
        if txn is None:
            raise CatalogError(f"no active transaction to {action}")
        if txn.owner != threading.get_ident():
            raise CatalogError(
                f"cannot {action}: the active transaction belongs to "
                "another thread"
            )

    def _restore_txn_state(self, txn: _TxnState) -> None:
        self._tables = txn.tables
        self._foreign_keys = txn.foreign_keys
        self._statistics = txn.statistics

    def _terminate_txn(self, kind: str, restore: bool) -> int | None:
        """Append a terminator and close the transaction; returns the
        group-commit token.

        A terminator append that fails is unrecoverable for this writer:
        the transaction's operation records are already durable, so if
        anything *later* became durable the dangling bracket would read
        as mid-log corruption. Poisoning the WAL guarantees nothing
        later does — the unterminated transaction stays the durable
        tail, which recovery rolls back — and the in-memory catalog is
        restored to the pre-transaction state to match. The version
        still advances past the failed terminator (never rewinds).
        """
        token = None
        with self.mutation_lock:
            txn = self._txn
            terminator_version = self._version + 1
            if self._wal is not None:
                try:
                    token = self._wal.append(
                        terminator_version, kind, {}, txn=txn.txn_id,
                        commit_point=True,
                    )
                except WalError as exc:
                    self._restore_txn_state(txn)
                    self._version = terminator_version
                    self._txn = None
                    self._wal.poison(
                        f"transaction {txn.txn_id} {kind} record failed "
                        f"to append: {exc}"
                    )
                    raise
            if restore:
                self._restore_txn_state(txn)
            self._version = terminator_version
            self._txn = None
        return token

    def commit_transaction(self) -> None:
        """Make the open transaction's operations durable, atomically.

        The commit record is the commit point: once its append (and
        fsync, per policy) succeeds the whole transaction is
        acknowledged; if the process dies any earlier, recovery rolls
        the store back to the pre-transaction state. Raises
        :class:`~repro.errors.WalError` when durability fails — the
        in-memory state is then rolled back too and the WAL poisoned.
        """
        self._require_owned_txn("commit")
        try:
            token = self._terminate_txn("txn_commit", restore=False)
        finally:
            self._txn_gate.release()
        self._wait_durable(token)

    def rollback_transaction(self) -> None:
        """Discard the open transaction's operations.

        Restores the pre-transaction tables, foreign keys, and cached
        statistics; the version counter keeps every consumed version
        (the abort record replays as a pure version bump).
        """
        self._require_owned_txn("rollback")
        try:
            token = self._terminate_txn("txn_abort", restore=True)
        finally:
            self._txn_gate.release()
        self._wait_durable(token)

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------

    def register(self, table: Table, replace: bool = False) -> Table:
        key = table.name.lower()
        token = None
        with self._txn_gate:
            with self.mutation_lock:
                if key in self._tables and not replace:
                    raise CatalogError(f"table {table.name!r} already exists")
                if self._wal is not None:
                    from repro.storage.wal import table_state

                    token = self._log(
                        "create_table",
                        lambda: {
                            "table": table_state(table), "replace": replace,
                        },
                    )
                self._tables[key] = table
                self._statistics.pop(key, None)
                self._version += 1
        self._wait_durable(token)
        return table

    def drop(self, name: str) -> None:
        key = name.lower()
        token = None
        with self._txn_gate:
            with self.mutation_lock:
                if key not in self._tables:
                    raise CatalogError(f"cannot drop unknown table {name!r}")
                token = self._log("drop_table", lambda: {"name": name})
                del self._tables[key]
                self._statistics.pop(key, None)
                self._foreign_keys = [
                    fk
                    for fk in self._foreign_keys
                    if fk.child_table.lower() != key
                    and fk.parent_table.lower() != key
                ]
                self._version += 1
        self._wait_durable(token)

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(
                f"unknown table {name!r}; known: {sorted(self._tables)}"
            )
        return self._tables[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(t.name for t in self._tables.values())

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    def __iter__(self) -> Iterable[Table]:
        return iter(self._tables.values())

    # ------------------------------------------------------------------
    # Snapshots and copy-on-write writes
    # ------------------------------------------------------------------

    def snapshot(self) -> "CatalogSnapshot":
        """Pin the current version: an immutable catalog view.

        Freezes every current table version (cheap — a flag per table;
        writers copy-on-write from then on) and copies the name → table
        map, FK list, and statistics cache, so later DDL/DML on this
        catalog is invisible to the snapshot and vice versa.

        While a transaction is open, snapshots pin the *pre-transaction*
        state (the rollback basis captured at begin): uncommitted
        operations are never visible to readers, and the reported
        version is one the plan cache can safely key on — it names a
        committed state that a rollback cannot invalidate.
        """
        with self.mutation_lock:
            txn = self._txn
            if txn is not None:
                return CatalogSnapshot(
                    tables=dict(txn.tables),
                    foreign_keys=list(txn.foreign_keys),
                    statistics=dict(txn.statistics),
                    version=txn.begin_version - 1,
                )
            for table in self._tables.values():
                table.freeze()
            return CatalogSnapshot(
                tables=dict(self._tables),
                foreign_keys=list(self._foreign_keys),
                statistics=dict(self._statistics),
                version=self._version,
            )

    def insert_rows(
        self, table_name: str, rows: Iterable[Sequence[Any]]
    ) -> int:
        """Atomically append ``rows`` to a table, copy-on-write.

        Every row is validated *before* any state changes, so a width or
        type error inserts nothing; if the current version is frozen (a
        snapshot pinned it), a clone receives the rows and is swapped in
        under the mutation lock — concurrent snapshot readers keep seeing
        the old version, never a partially extended row list.
        """
        token = None
        with self._txn_gate:
            with self.mutation_lock:
                current = self.table(table_name)
                validated = [current.validate_row(row) for row in rows]
                token = self._log(
                    "insert_rows",
                    lambda: {"table": current.name, "rows": validated},
                )
                target = current.clone() if current.frozen else current
                target.rows.extend(validated)
                target._invalidate_indexes()
                if target is not current:
                    self._tables[current.name.lower()] = target
                self._statistics.pop(current.name.lower(), None)
                self._version += 1
        self._wait_durable(token)
        return len(validated)

    def replace_table(self, table: Table) -> Table:
        """Swap in a new version of an existing table (schema-compatible
        replacement built off :meth:`Table.clone`)."""
        key = table.name.lower()
        token = None
        with self._txn_gate:
            with self.mutation_lock:
                if key not in self._tables:
                    raise CatalogError(
                        f"cannot replace unknown table {table.name!r}"
                    )
                if self._wal is not None:
                    from repro.storage.wal import table_state

                    token = self._log(
                        "replace_table",
                        lambda: {"table": table_state(table)},
                    )
                self._tables[key] = table
                self._statistics.pop(key, None)
                self._version += 1
        self._wait_durable(token)
        return table

    def create_index(self, table_name: str, columns: Sequence[str]):
        """Create (or return the existing) index on a table's columns.

        The catalog-level index DDL path: unlike calling
        :meth:`Table.create_index` directly, this journals the DDL to an
        attached WAL and bumps the catalog version, and it respects
        copy-on-write — a frozen (snapshotted) table version is cloned
        rather than mutated under concurrent readers.
        """
        token = None
        with self._txn_gate:
            with self.mutation_lock:
                table = self.table(table_name)
                key = tuple(table.schema.column(c).name for c in columns)
                existing = table.indexes.get(key)
                if existing is not None:
                    return existing
                token = self._log(
                    "create_index",
                    lambda: {"table": table.name, "columns": list(key)},
                )
                if table.frozen:
                    target = table.clone()
                    index = target.create_index(key)
                    self._tables[table.name.lower()] = target
                else:
                    index = table.create_index(key)
                self._version += 1
        self._wait_durable(token)
        return index

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------

    def add_foreign_key(
        self,
        child_table: str,
        child_columns: Sequence[str],
        parent_table: str,
        parent_columns: Sequence[str],
    ) -> ForeignKey:
        """Declare a foreign key; tables and columns must already exist."""
        token = None
        with self._txn_gate:
            with self.mutation_lock:
                child = self.table(child_table)
                parent = self.table(parent_table)
                for col in child_columns:
                    child.schema.index_of(col)
                for col in parent_columns:
                    parent.schema.index_of(col)
                fk = ForeignKey(
                    child.name, tuple(child_columns),
                    parent.name, tuple(parent_columns),
                )
                token = self._log(
                    "add_foreign_key",
                    lambda: {
                        "child_table": fk.child_table,
                        "child_columns": list(fk.child_columns),
                        "parent_table": fk.parent_table,
                        "parent_columns": list(fk.parent_columns),
                    },
                )
                self._foreign_keys.append(fk)
                self._version += 1
        self._wait_durable(token)
        return fk

    def foreign_keys(self) -> tuple[ForeignKey, ...]:
        return tuple(self._foreign_keys)

    def find_foreign_key(
        self,
        child_table: str,
        child_columns: Sequence[str],
        parent_table: str,
        parent_columns: Sequence[str],
    ) -> ForeignKey | None:
        """The declared FK matching this (possibly reordered) column pairing.

        The pairing matters: (child.a -> parent.x, child.b -> parent.y) is
        matched as a set of column *pairs*, independent of order.
        """
        wanted = set(zip(child_columns, parent_columns))
        for fk in self._foreign_keys:
            if (
                fk.child_table.lower() == child_table.lower()
                and fk.parent_table.lower() == parent_table.lower()
                and set(zip(fk.child_columns, fk.parent_columns)) == wanted
            ):
                return fk
        return None

    def is_primary_key(self, table_name: str, columns: Sequence[str]) -> bool:
        table = self.table(table_name)
        if table.primary_key is None:
            return False
        return set(table.primary_key) == set(columns)

    def validate_constraints(self) -> None:
        """Check every declared PK and FK against the data.

        Used by loaders and property tests; raises :class:`ConstraintError`
        on the first violation found.
        """
        for table in self._tables.values():
            table.check_primary_key()
        for fk in self._foreign_keys:
            self._validate_foreign_key(fk)

    def _validate_foreign_key(self, fk: ForeignKey) -> None:
        parent = self.table(fk.parent_table)
        child = self.table(fk.child_table)
        parent_positions = parent.schema.indices_of(fk.parent_columns)
        child_positions = child.schema.indices_of(fk.child_columns)
        parent_keys = {
            grouping_key(tuple(row[i] for i in parent_positions))
            for row in parent.rows
        }
        for row in child.rows:
            values = tuple(row[i] for i in child_positions)
            if any(v is None for v in values):
                continue  # SQL FK semantics: NULLs are exempt
            if grouping_key(values) not in parent_keys:
                raise ConstraintError(
                    f"foreign key violation: {fk.child_table}{values!r} has no "
                    f"parent in {fk.parent_table}({', '.join(fk.parent_columns)})"
                )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def statistics(self, name: str) -> TableStatistics:
        """Statistics for a table, computed on first use and cached.

        Computation happens outside the mutation lock (it scans the
        table), so two racing readers may both compute; the redundant
        result is identical and the last store wins.
        """
        key = name.lower()
        stats = self._statistics.get(key)
        if stats is None:
            stats = compute_table_statistics(self.table(name))
            self._statistics[key] = stats
        return stats

    def invalidate_statistics(self, name: str | None = None) -> None:
        if name is None:
            self._statistics.clear()
        else:
            self._statistics.pop(name.lower(), None)


class CatalogSnapshot(Catalog):
    """A read-only catalog pinned at one version.

    Shares the (frozen) table objects with the live catalog at snapshot
    time; structural mutation raises :class:`CatalogError`. Statistics
    still compute lazily into the snapshot's own cache — a snapshot's
    tables never change, so its cached statistics never go stale.
    """

    def __init__(
        self,
        tables: dict[str, Table],
        foreign_keys: list[ForeignKey],
        statistics: dict[str, TableStatistics],
        version: int,
    ):
        super().__init__()
        self._tables = tables
        self._foreign_keys = foreign_keys
        self._statistics = statistics
        self._version = version

    def _read_only(self, action: str) -> CatalogError:
        return CatalogError(
            f"cannot {action}: this catalog is a read-only snapshot "
            f"(version {self._version}); apply writes to the live catalog"
        )

    def register(self, table: Table, replace: bool = False) -> Table:
        raise self._read_only(f"register table {table.name!r}")

    def drop(self, name: str) -> None:
        raise self._read_only(f"drop table {name!r}")

    def add_foreign_key(self, *args, **kwargs) -> ForeignKey:
        raise self._read_only("add a foreign key")

    def insert_rows(self, table_name: str, rows) -> int:
        raise self._read_only(f"insert into table {table_name!r}")

    def replace_table(self, table: Table) -> Table:
        raise self._read_only(f"replace table {table.name!r}")

    def create_index(self, table_name: str, columns):
        raise self._read_only(f"create an index on table {table_name!r}")
