"""The catalog: named tables, declared constraints and cached statistics.

The catalog is the engine's notion of a database. It records, besides the
tables themselves:

* **primary keys** — needed by the invariant-grouping rule to know when a
  join preserves group multiplicity;
* **foreign keys** — the paper's Definition 2 requires "every join above n is
  a foreign-key join", and the optimizer asks the catalog whether an equijoin
  column pair is a declared key/foreign-key pair;
* **statistics** — computed lazily, invalidated explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import CatalogError, ConstraintError
from repro.storage.statistics import TableStatistics, compute_table_statistics
from repro.storage.table import Table
from repro.storage.types import grouping_key


@dataclass(frozen=True)
class ForeignKey:
    """A declared reference: child.columns -> parent.columns (same arity)."""

    child_table: str
    child_columns: tuple[str, ...]
    parent_table: str
    parent_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.child_columns) != len(self.parent_columns):
            raise CatalogError(
                "foreign key column lists must have equal length: "
                f"{self.child_columns} vs {self.parent_columns}"
            )


class Catalog:
    """A mutable collection of tables with constraints and statistics."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._foreign_keys: list[ForeignKey] = []
        self._statistics: dict[str, TableStatistics] = {}

    # ------------------------------------------------------------------
    # Table management
    # ------------------------------------------------------------------

    def register(self, table: Table, replace: bool = False) -> Table:
        key = table.name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[key] = table
        self._statistics.pop(key, None)
        return table

    def drop(self, name: str) -> None:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(f"cannot drop unknown table {name!r}")
        del self._tables[key]
        self._statistics.pop(key, None)
        self._foreign_keys = [
            fk
            for fk in self._foreign_keys
            if fk.child_table.lower() != key and fk.parent_table.lower() != key
        ]

    def table(self, name: str) -> Table:
        key = name.lower()
        if key not in self._tables:
            raise CatalogError(
                f"unknown table {name!r}; known: {sorted(self._tables)}"
            )
        return self._tables[key]

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table_names(self) -> list[str]:
        return sorted(t.name for t in self._tables.values())

    def __contains__(self, name: str) -> bool:
        return self.has_table(name)

    def __iter__(self) -> Iterable[Table]:
        return iter(self._tables.values())

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------

    def add_foreign_key(
        self,
        child_table: str,
        child_columns: Sequence[str],
        parent_table: str,
        parent_columns: Sequence[str],
    ) -> ForeignKey:
        """Declare a foreign key; tables and columns must already exist."""
        child = self.table(child_table)
        parent = self.table(parent_table)
        for col in child_columns:
            child.schema.index_of(col)
        for col in parent_columns:
            parent.schema.index_of(col)
        fk = ForeignKey(
            child.name, tuple(child_columns), parent.name, tuple(parent_columns)
        )
        self._foreign_keys.append(fk)
        return fk

    def foreign_keys(self) -> tuple[ForeignKey, ...]:
        return tuple(self._foreign_keys)

    def find_foreign_key(
        self,
        child_table: str,
        child_columns: Sequence[str],
        parent_table: str,
        parent_columns: Sequence[str],
    ) -> ForeignKey | None:
        """The declared FK matching this (possibly reordered) column pairing.

        The pairing matters: (child.a -> parent.x, child.b -> parent.y) is
        matched as a set of column *pairs*, independent of order.
        """
        wanted = set(zip(child_columns, parent_columns))
        for fk in self._foreign_keys:
            if (
                fk.child_table.lower() == child_table.lower()
                and fk.parent_table.lower() == parent_table.lower()
                and set(zip(fk.child_columns, fk.parent_columns)) == wanted
            ):
                return fk
        return None

    def is_primary_key(self, table_name: str, columns: Sequence[str]) -> bool:
        table = self.table(table_name)
        if table.primary_key is None:
            return False
        return set(table.primary_key) == set(columns)

    def validate_constraints(self) -> None:
        """Check every declared PK and FK against the data.

        Used by loaders and property tests; raises :class:`ConstraintError`
        on the first violation found.
        """
        for table in self._tables.values():
            table.check_primary_key()
        for fk in self._foreign_keys:
            self._validate_foreign_key(fk)

    def _validate_foreign_key(self, fk: ForeignKey) -> None:
        parent = self.table(fk.parent_table)
        child = self.table(fk.child_table)
        parent_positions = parent.schema.indices_of(fk.parent_columns)
        child_positions = child.schema.indices_of(fk.child_columns)
        parent_keys = {
            grouping_key(tuple(row[i] for i in parent_positions))
            for row in parent.rows
        }
        for row in child.rows:
            values = tuple(row[i] for i in child_positions)
            if any(v is None for v in values):
                continue  # SQL FK semantics: NULLs are exempt
            if grouping_key(values) not in parent_keys:
                raise ConstraintError(
                    f"foreign key violation: {fk.child_table}{values!r} has no "
                    f"parent in {fk.parent_table}({', '.join(fk.parent_columns)})"
                )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def statistics(self, name: str) -> TableStatistics:
        """Statistics for a table, computed on first use and cached."""
        key = name.lower()
        stats = self._statistics.get(key)
        if stats is None:
            stats = compute_table_statistics(self.table(name))
            self._statistics[key] = stats
        return stats

    def invalidate_statistics(self, name: str | None = None) -> None:
        if name is None:
            self._statistics.clear()
        else:
            self._statistics.pop(name.lower(), None)
