"""In-memory multiset tables.

A :class:`Table` is a schema plus a list of row tuples. Lists (not sets)
because the whole paper is careful about *multiset* semantics: projection
does not deduplicate, UNION ALL keeps duplicates, and GApply's formal
definition unions per-group results with UNION ALL.

Tables double as the temporary relations that GApply binds to its
relation-valued ``$group`` parameter — the executor builds a small
``Table`` per group and the per-group plan's ``GroupScan`` leaf reads it.

**Versioning.** Tables are the unit of copy-on-write versioning behind
snapshot-isolated reads (:meth:`~repro.storage.catalog.Catalog.snapshot`):
:meth:`freeze` marks a table immutable — any further in-place mutation
raises — and :meth:`clone` produces the next writable version sharing the
schema and the (immutable) row tuples but owning a fresh row list and
fresh, lazily built indexes. A reader holding a frozen version can iterate
``rows`` without any lock while writers build and swap in new versions.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import ConstraintError, SchemaError
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType, check_value, grouping_key

Row = tuple[Any, ...]


class Table:
    """A named multiset of rows conforming to a :class:`Schema`."""

    __slots__ = ("name", "schema", "rows", "primary_key", "indexes", "frozen")

    def __init__(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Sequence[Any]] = (),
        primary_key: Sequence[str] | None = None,
    ):
        self.name = name
        self.schema = schema
        self.primary_key: tuple[str, ...] | None = (
            tuple(primary_key) if primary_key else None
        )
        if self.primary_key:
            for col in self.primary_key:
                schema.index_of(col)  # validates
        self.indexes: dict[tuple[str, ...], Any] = {}
        self.frozen = False
        self.rows: list[Row] = []
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------

    def create_index(self, columns: Sequence[str]):
        """Create (or return the existing) index on the given columns."""
        from repro.storage.index import TableIndex

        key = tuple(self.schema.column(c).name for c in columns)
        existing = self.indexes.get(key)
        if existing is not None:
            return existing
        index = TableIndex(self, key)
        self.indexes[key] = index
        return index

    def index_on(self, columns: Sequence[str]):
        """The index covering exactly these columns (any order), or None."""
        try:
            wanted = tuple(sorted(self.schema.column(c).name for c in columns))
        except Exception:
            return None
        for key, index in self.indexes.items():
            if tuple(sorted(key)) == wanted:
                return index
        return None

    def _invalidate_indexes(self) -> None:
        for index in self.indexes.values():
            index.invalidate()

    # ------------------------------------------------------------------
    # Versioning (copy-on-write snapshots)
    # ------------------------------------------------------------------

    def freeze(self) -> "Table":
        """Mark this version immutable; in-place mutation now raises.

        Called when the catalog hands the table out in a snapshot: readers
        may iterate ``rows`` lock-free forever after, so writers must go
        through :meth:`clone` and swap in the new version atomically.
        """
        self.frozen = True
        return self

    def clone(self) -> "Table":
        """The next writable version: shared schema and row *tuples*, but
        a fresh row list and fresh (unbuilt) indexes on the same column
        sets."""
        twin = Table(self.name, self.schema, primary_key=self.primary_key)
        twin.rows = list(self.rows)
        for columns in self.indexes:
            twin.create_index(columns)
        return twin

    def _check_writable(self) -> None:
        if self.frozen:
            raise ConstraintError(
                f"table {self.name!r} is a frozen snapshot version; "
                "writers must clone() and swap in a new version"
            )

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def validate_row(self, row: Sequence[Any]) -> Row:
        """Width/type-check one row into the stored tuple form (without
        inserting it — the atomic write path validates a whole batch
        before touching any row list)."""
        if len(row) != len(self.schema):
            raise SchemaError(
                f"row width {len(row)} does not match schema width "
                f"{len(self.schema)} for table {self.name!r}"
            )
        return tuple(
            check_value(value, column.dtype)
            for value, column in zip(row, self.schema)
        )

    def insert(self, row: Sequence[Any]) -> None:
        """Append one row after width/type validation."""
        self._check_writable()
        self.rows.append(self.validate_row(row))
        self._invalidate_indexes()

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> int:
        count = 0
        for row in rows:
            self.insert(row)
            count += 1
        return count

    def clear(self) -> None:
        self._check_writable()
        self.rows.clear()
        self._invalidate_indexes()

    # ------------------------------------------------------------------
    # Constraint checking (used by the TPC-H loader and tests)
    # ------------------------------------------------------------------

    def check_primary_key(self) -> None:
        """Raise :class:`ConstraintError` if the declared key has duplicates
        or NULLs."""
        if not self.primary_key:
            return
        positions = self.schema.indices_of(self.primary_key)
        seen: set[tuple[Any, ...]] = set()
        for row in self.rows:
            key_values = tuple(row[i] for i in positions)
            if any(v is None for v in key_values):
                raise ConstraintError(
                    f"NULL in primary key {self.primary_key} of {self.name!r}"
                )
            key = grouping_key(key_values)
            if key in seen:
                raise ConstraintError(
                    f"duplicate primary key {key_values!r} in {self.name!r}"
                )
            seen.add(key)

    # ------------------------------------------------------------------
    # Read access
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def column_values(self, reference: str) -> list[Any]:
        """All values of one column, in row order (duplicates preserved)."""
        position = self.schema.index_of(reference)
        return [row[position] for row in self.rows]

    def head(self, n: int = 10) -> list[Row]:
        return self.rows[:n]

    def sorted_rows(self, by: Sequence[str]) -> list[Row]:
        """Rows sorted by the given columns, NULLS FIRST, stable."""
        positions = self.schema.indices_of(by)
        return sorted(
            self.rows,
            key=lambda row: grouping_key(tuple(row[i] for i in positions)),
        )

    def filter(self, predicate: Callable[[Row], bool]) -> "Table":
        """A new unnamed table containing rows passing ``predicate``."""
        result = Table(f"{self.name}_filtered", self.schema)
        result.rows = [row for row in self.rows if predicate(row)]
        return result

    def to_dicts(self) -> list[dict[str, Any]]:
        """Rows as dicts keyed by qualified column name (for tests/docs)."""
        names = self.schema.qualified_names()
        return [dict(zip(names, row)) for row in self.rows]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Table({self.name!r}, {len(self.rows)} rows, {self.schema!r})"

    def pretty(self, limit: int = 20) -> str:
        """ASCII rendering of the table for examples and debugging."""
        from repro.storage.types import format_value

        headers = self.schema.qualified_names()
        body = [[format_value(v) for v in row] for row in self.rows[:limit]]
        widths = [
            max(len(h), *(len(r[i]) for r in body)) if body else len(h)
            for i, h in enumerate(headers)
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [" | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
        lines += [
            " | ".join(cell.ljust(w) for cell, w in zip(row, widths))
            for row in body
        ]
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)


def table_from_rows(
    name: str,
    columns: Sequence[tuple[str, DataType]],
    rows: Iterable[Sequence[Any]],
    primary_key: Sequence[str] | None = None,
) -> Table:
    """Build a table in one call; the standard test/bootstrap helper."""
    schema = Schema(Column(n, t, qualifier=name) for n, t in columns)
    return Table(name, schema, rows, primary_key=primary_key)
