"""Secondary indexes over in-memory tables.

The paper's measured rule benefits (Table 1's 732x selection wins, the
group-selection rewrites) presuppose a server where selective predicates
and key lookups are cheap — i.e. indexed access paths. This module
provides:

* **hash lookup** on any column combination (equality seeks, index
  nested-loop joins);
* **ordered access** on single comparable columns (range seeks), via a
  sorted key array and binary search.

Indexes are rebuilt lazily after table mutations. The built structures
are published **atomically** as one state tuple: concurrent readers — two
snapshot queries sharing a frozen table version is the common case — each
pick up either a complete build or trigger their own, never a
half-assigned mix of buckets from one build and sorted arrays from
another.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, NamedTuple, Sequence

from repro.errors import SchemaError
from repro.storage.table import Row, Table
from repro.storage.types import grouping_key


class _IndexState(NamedTuple):
    """One complete build, published in a single attribute store."""

    buckets: dict[tuple, list[Row]]
    sorted_keys: list | None
    sorted_rows: list[Row] | None
    row_count: int


class TableIndex:
    """One index: table + column list; hash buckets plus sorted keys."""

    def __init__(self, table: Table, columns: Sequence[str]):
        if not columns:
            raise SchemaError("index requires at least one column")
        self.table = table
        self.columns = tuple(columns)
        self._positions = table.schema.indices_of(columns)
        self._state: _IndexState | None = None

    # ------------------------------------------------------------------
    # Build / invalidate
    # ------------------------------------------------------------------

    @property
    def is_single_column(self) -> bool:
        return len(self.columns) == 1

    def invalidate(self) -> None:
        self._state = None

    def _ensure_built(self) -> _IndexState:
        """The current complete state, building it if stale.

        Everything is computed into locals and installed with one
        assignment, so a reader racing a rebuild sees the old complete
        state or the new complete state — worst case two threads build
        redundantly, and the last store wins with an equivalent result.
        """
        rows = self.table.rows
        state = self._state
        if state is not None and state.row_count == len(rows):
            return state
        buckets: dict[tuple, list[Row]] = {}
        for row in rows:
            values = tuple(row[i] for i in self._positions)
            if any(v is None for v in values):
                continue  # NULL keys are never matched by = or ranges
            buckets.setdefault(grouping_key(values), []).append(row)
        sorted_keys: list | None = None
        sorted_rows: list[Row] | None = None
        if self.is_single_column:
            position = self._positions[0]
            pairs = sorted(
                (
                    (grouping_key((row[position],))[0], row)
                    for row in rows
                    if row[position] is not None
                ),
                key=lambda pair: pair[0],
            )
            sorted_keys = [key for key, _ in pairs]
            sorted_rows = [row for _, row in pairs]
        state = _IndexState(buckets, sorted_keys, sorted_rows, len(rows))
        self._state = state
        return state

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------

    def lookup(self, values: Sequence[Any]) -> list[Row]:
        """Rows whose indexed columns equal ``values`` (SQL = semantics:
        NULL matches nothing)."""
        if any(v is None for v in values):
            return []
        state = self._ensure_built()
        return state.buckets.get(grouping_key(tuple(values)), [])

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Row]:
        """Rows with indexed value in [low, high] (single-column only)."""
        if not self.is_single_column:
            raise SchemaError(
                f"range scan requires a single-column index, have {self.columns}"
            )
        state = self._ensure_built()
        assert state.sorted_keys is not None and state.sorted_rows is not None
        keys = state.sorted_keys
        start = 0
        if low is not None:
            start = (
                bisect.bisect_left(keys, low)
                if low_inclusive
                else bisect.bisect_right(keys, low)
            )
        end = len(keys)
        if high is not None:
            end = (
                bisect.bisect_right(keys, high)
                if high_inclusive
                else bisect.bisect_left(keys, high)
            )
        for index in range(start, end):
            yield state.sorted_rows[index]

    def distinct_key_count(self) -> int:
        return len(self._ensure_built().buckets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TableIndex({self.table.name}.{','.join(self.columns)})"
