"""Secondary indexes over in-memory tables.

The paper's measured rule benefits (Table 1's 732x selection wins, the
group-selection rewrites) presuppose a server where selective predicates
and key lookups are cheap — i.e. indexed access paths. This module
provides:

* **hash lookup** on any column combination (equality seeks, index
  nested-loop joins);
* **ordered access** on single comparable columns (range seeks), via a
  sorted key array and binary search.

Indexes are rebuilt lazily after table mutations.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Sequence

from repro.errors import SchemaError
from repro.storage.table import Row, Table
from repro.storage.types import grouping_key


class TableIndex:
    """One index: table + column list; hash buckets plus sorted keys."""

    def __init__(self, table: Table, columns: Sequence[str]):
        if not columns:
            raise SchemaError("index requires at least one column")
        self.table = table
        self.columns = tuple(columns)
        self._positions = table.schema.indices_of(columns)
        self._buckets: dict[tuple, list[Row]] | None = None
        self._sorted_keys: list | None = None
        self._sorted_rows: list[Row] | None = None
        self._built_row_count = -1

    # ------------------------------------------------------------------
    # Build / invalidate
    # ------------------------------------------------------------------

    @property
    def is_single_column(self) -> bool:
        return len(self.columns) == 1

    def invalidate(self) -> None:
        self._buckets = None
        self._sorted_keys = None
        self._sorted_rows = None
        self._built_row_count = -1

    def _ensure_built(self) -> None:
        if (
            self._buckets is not None
            and self._built_row_count == len(self.table.rows)
        ):
            return
        buckets: dict[tuple, list[Row]] = {}
        for row in self.table.rows:
            values = tuple(row[i] for i in self._positions)
            if any(v is None for v in values):
                continue  # NULL keys are never matched by = or ranges
            buckets.setdefault(grouping_key(values), []).append(row)
        self._buckets = buckets
        self._built_row_count = len(self.table.rows)
        if self.is_single_column:
            position = self._positions[0]
            pairs = sorted(
                (
                    (grouping_key((row[position],))[0], row)
                    for row in self.table.rows
                    if row[position] is not None
                ),
                key=lambda pair: pair[0],
            )
            self._sorted_keys = [key for key, _ in pairs]
            self._sorted_rows = [row for _, row in pairs]
        else:
            self._sorted_keys = None
            self._sorted_rows = None

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------

    def lookup(self, values: Sequence[Any]) -> list[Row]:
        """Rows whose indexed columns equal ``values`` (SQL = semantics:
        NULL matches nothing)."""
        if any(v is None for v in values):
            return []
        self._ensure_built()
        assert self._buckets is not None
        return self._buckets.get(grouping_key(tuple(values)), [])

    def range_scan(
        self,
        low: Any = None,
        high: Any = None,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> Iterator[Row]:
        """Rows with indexed value in [low, high] (single-column only)."""
        if not self.is_single_column:
            raise SchemaError(
                f"range scan requires a single-column index, have {self.columns}"
            )
        self._ensure_built()
        assert self._sorted_keys is not None and self._sorted_rows is not None
        keys = self._sorted_keys
        start = 0
        if low is not None:
            start = (
                bisect.bisect_left(keys, low)
                if low_inclusive
                else bisect.bisect_right(keys, low)
            )
        end = len(keys)
        if high is not None:
            end = (
                bisect.bisect_right(keys, high)
                if high_inclusive
                else bisect.bisect_left(keys, high)
            )
        for index in range(start, end):
            yield self._sorted_rows[index]

    def distinct_key_count(self) -> int:
        self._ensure_built()
        assert self._buckets is not None
        return len(self._buckets)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TableIndex({self.table.name}.{','.join(self.columns)})"
