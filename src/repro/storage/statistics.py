"""Column and table statistics for the cost model.

Section 4.4 of the paper estimates the cost of GApply as

    cost(GApply) = #groups x cost(PGQ on one average group)

where ``#groups`` is the number of distinct values in the grouping columns
and the average group size is ``|outer| / #groups``. Selectivities inside the
per-group query are assumed uniform across groups, so statistics gathered on
the whole relation (or on one representative group) suffice.

This module computes exactly the statistics that model needs:

* per-column distinct counts, null fractions, min/max;
* equi-width histograms for range-selectivity estimation;
* multi-column distinct counts for grouping-column sets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.storage.table import Row, Table
from repro.storage.types import grouping_key

DEFAULT_HISTOGRAM_BUCKETS = 32


@dataclass(frozen=True)
class HistogramBucket:
    """One equi-width bucket: [low, high) except the last which is closed."""

    low: float
    high: float
    count: int


@dataclass
class ColumnStatistics:
    """Summary statistics for one column of a relation."""

    row_count: int
    null_count: int
    distinct_count: int
    min_value: Any = None
    max_value: Any = None
    histogram: tuple[HistogramBucket, ...] = field(default_factory=tuple)

    @property
    def null_fraction(self) -> float:
        if self.row_count == 0:
            return 0.0
        return self.null_count / self.row_count

    def selectivity_eq(self, value: Any) -> float:
        """Estimated fraction of rows with column = value (uniformity)."""
        if self.row_count == 0 or value is None:
            return 0.0
        if self.distinct_count == 0:
            return 0.0
        return (1.0 - self.null_fraction) / self.distinct_count

    def selectivity_range(
        self, low: float | None, high: float | None
    ) -> float:
        """Estimated fraction of rows with low <= column <= high.

        Uses the histogram when present, else a linear interpolation over
        [min, max], else the textbook 1/3 default.
        """
        if self.row_count == 0:
            return 0.0
        non_null = self.row_count - self.null_count
        if non_null == 0:
            return 0.0
        if self.histogram:
            covered = 0.0
            for bucket in self.histogram:
                b_low, b_high = bucket.low, bucket.high
                lo = b_low if low is None else max(low, b_low)
                hi = b_high if high is None else min(high, b_high)
                if hi <= lo:
                    continue
                width = b_high - b_low
                fraction = 1.0 if width == 0 else (hi - lo) / width
                covered += bucket.count * min(1.0, fraction)
            return min(1.0, covered / self.row_count)
        if (
            isinstance(self.min_value, (int, float))
            and isinstance(self.max_value, (int, float))
            and self.max_value > self.min_value
        ):
            lo = self.min_value if low is None else max(low, self.min_value)
            hi = self.max_value if high is None else min(high, self.max_value)
            if hi <= lo:
                return 0.0
            span = self.max_value - self.min_value
            return min(1.0, (hi - lo) / span) * (non_null / self.row_count)
        return 1.0 / 3.0


def compute_column_statistics(
    values: Sequence[Any], buckets: int = DEFAULT_HISTOGRAM_BUCKETS
) -> ColumnStatistics:
    """Scan one column and produce its :class:`ColumnStatistics`."""
    row_count = len(values)
    non_null = [v for v in values if v is not None]
    null_count = row_count - len(non_null)
    distinct = len({grouping_key((v,))[0] for v in non_null})
    min_value = max_value = None
    histogram: tuple[HistogramBucket, ...] = ()
    if non_null:
        try:
            min_value = min(non_null)
            max_value = max(non_null)
        except TypeError:
            min_value = max_value = None
        if (
            isinstance(min_value, (int, float))
            and not isinstance(min_value, bool)
            and isinstance(max_value, (int, float))
            and max_value > min_value
        ):
            histogram = _build_histogram(non_null, min_value, max_value, buckets)
    return ColumnStatistics(
        row_count=row_count,
        null_count=null_count,
        distinct_count=distinct,
        min_value=min_value,
        max_value=max_value,
        histogram=histogram,
    )


def _build_histogram(
    values: Sequence[float], low: float, high: float, buckets: int
) -> tuple[HistogramBucket, ...]:
    width = (high - low) / buckets
    if width <= 0 or not math.isfinite(width):
        # high > low can still yield a zero width (subnormal range
        # underflowing the division) or an infinite one (range overflow);
        # a single bucket spanning the whole range is the honest summary.
        return (HistogramBucket(low, high, len(values)),)
    counts = [0] * buckets
    for value in values:
        index = int((value - low) / width)
        if index >= buckets:  # max value lands in the last (closed) bucket
            index = buckets - 1
        counts[index] += 1
    return tuple(
        HistogramBucket(low + i * width, low + (i + 1) * width, counts[i])
        for i in range(buckets)
    )


@dataclass
class TableStatistics:
    """Statistics for a whole relation, per column plus the row count."""

    row_count: int
    columns: dict[str, ColumnStatistics]

    def column(self, name: str) -> ColumnStatistics | None:
        return self.columns.get(name)

    def distinct_count(self, column: str) -> int:
        stats = self.columns.get(column)
        if stats is None:
            return max(1, int(math.sqrt(self.row_count)) or 1)
        return max(1, stats.distinct_count)


def compute_table_statistics(
    table: Table, buckets: int = DEFAULT_HISTOGRAM_BUCKETS
) -> TableStatistics:
    """Scan a table once per column and summarize it."""
    columns: dict[str, ColumnStatistics] = {}
    for position, column in enumerate(table.schema):
        values = [row[position] for row in table.rows]
        stats = compute_column_statistics(values, buckets)
        columns[column.name] = stats
        columns[column.qualified_name] = stats
    return TableStatistics(row_count=len(table.rows), columns=columns)


def count_distinct_rows(rows: Sequence[Row], positions: Sequence[int]) -> int:
    """Number of distinct combinations of the given column positions.

    This is the paper's "#groups" quantity: the number of distinct values in
    the grouping columns.
    """
    return len({grouping_key(tuple(row[i] for i in positions)) for row in rows})
