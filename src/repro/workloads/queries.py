"""The paper's query catalog (Section 2 and Section 5).

Each query comes in the formulations the paper compares:

* ``gapply_sql`` — the Section 3.1 syntax (``gapply(...) ... group by
  cols : var``), which the engine executes with the GApply operator;
* ``baseline_sql`` — the classical no-GApply SQL a "sorting and tagging"
  stack ships to the server: sorted outer unions with re-joins and
  (decorrelated) per-group subqueries, ordered by the group key;
* ``naive_sql`` (where the paper mentions one) — the semantically
  equivalent formulation the paper notes runs "orders of magnitude"
  slower, with genuinely correlated per-row subqueries.

The baselines deliberately mirror the SQL the paper prints: Q1/Q2 re-join
``partsupp ⋈ part`` once per branch, Q2's baseline uses the decorrelated
average (the plan a competent 2003 optimizer finds), and Q4's baseline is
the derived-table formulation from Section 5.2 verbatim (modulo dialect).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PaperQuery:
    """One benchmark query with its competing formulations."""

    name: str
    description: str
    gapply_sql: str
    baseline_sql: str
    naive_sql: str | None = None


Q1 = PaperQuery(
    name="Q1",
    description=(
        "For each supplier element, return the names and retail prices of "
        "all parts supplied, and the overall average retail price of all "
        "parts supplied."
    ),
    gapply_sql="""
        select gapply(
            select p_name, p_retailprice, null from tmpSupp
            union all
            select null, null, avg(p_retailprice) from tmpSupp
        ) as (name, price, avgprice)
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey : tmpSupp
    """,
    baseline_sql="""
        select ps_suppkey, p_name, p_retailprice, null
        from partsupp, part
        where ps_partkey = p_partkey
        union all
        select ps_suppkey, null, null, avg(p_retailprice)
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey
        order by ps_suppkey
    """,
)


Q2 = PaperQuery(
    name="Q2",
    description=(
        "For each supplier element, compute the average retail price of "
        "all parts supplied and find the number of parts priced above and "
        "below this average."
    ),
    gapply_sql="""
        select gapply(
            select count(*), null from tmpSupp
            where p_retailprice >= (select avg(p_retailprice) from tmpSupp)
            union all
            select null, count(*) from tmpSupp
            where p_retailprice < (select avg(p_retailprice) from tmpSupp)
        ) as (count_above, count_below)
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey : tmpSupp
    """,
    # The decorrelated baseline: per-supplier averages computed once per
    # branch via a derived table and re-joined — still two extra
    # partsupp x part joins compared to the GApply form.
    baseline_sql="""
        select ps1.ps_suppkey, count(*), null
        from partsupp ps1, part,
             (select ps_suppkey, avg(p_retailprice)
              from partsupp, part
              where p_partkey = ps_partkey
              group by ps_suppkey) as averages(avg_suppkey, avgprice)
        where p_partkey = ps1.ps_partkey
          and ps1.ps_suppkey = averages.avg_suppkey
          and p_retailprice >= averages.avgprice
        group by ps1.ps_suppkey
        union all
        select ps2.ps_suppkey, null, count(*)
        from partsupp ps2, part,
             (select ps_suppkey, avg(p_retailprice)
              from partsupp, part
              where p_partkey = ps_partkey
              group by ps_suppkey) as averages(avg_suppkey, avgprice)
        where p_partkey = ps2.ps_partkey
          and ps2.ps_suppkey = averages.avg_suppkey
          and p_retailprice < averages.avgprice
        group by ps2.ps_suppkey
        order by ps_suppkey
    """,
    # The paper's literal Section 2 SQL: a correlated average subquery
    # re-evaluated per (supplier, part) row.
    naive_sql="""
        select ps1.ps_suppkey, count(*), null
        from partsupp ps1, part
        where p_partkey = ps1.ps_partkey
          and p_retailprice >= (select avg(p_retailprice)
                                from partsupp, part
                                where p_partkey = ps_partkey
                                  and ps_suppkey = ps1.ps_suppkey)
        group by ps1.ps_suppkey
        union all
        select ps2.ps_suppkey, null, count(*)
        from partsupp ps2, part
        where p_partkey = ps2.ps_partkey
          and p_retailprice < (select avg(p_retailprice)
                               from partsupp, part
                               where p_partkey = ps_partkey
                                 and ps_suppkey = ps2.ps_suppkey)
        group by ps2.ps_suppkey
        order by ps_suppkey
    """,
)


# Q3's price-band parameters: high-end = within 20% of the maximum,
# low-end = within 50% of the minimum.
HIGH_END_FRACTION = 0.8
LOW_END_MULTIPLE = 1.5

Q3 = PaperQuery(
    name="Q3",
    description=(
        "For each supplier, all part names and prices where the prices are "
        "high-end or low-end: high-end is more than a fraction of the "
        "maximum, low-end less than a multiple of the minimum."
    ),
    gapply_sql=f"""
        select gapply(
            select p_name, p_retailprice, 'high' from tmpSupp
            where p_retailprice >=
                  {HIGH_END_FRACTION} * (select max(p_retailprice) from tmpSupp)
            union all
            select p_name, p_retailprice, 'low' from tmpSupp
            where p_retailprice <=
                  {LOW_END_MULTIPLE} * (select min(p_retailprice) from tmpSupp)
        ) as (name, price, band)
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey : tmpSupp
    """,
    baseline_sql=f"""
        select ps1.ps_suppkey, p_name, p_retailprice, 'high'
        from partsupp ps1, part,
             (select ps_suppkey, max(p_retailprice)
              from partsupp, part
              where p_partkey = ps_partkey
              group by ps_suppkey) as maxes(max_suppkey, maxprice)
        where p_partkey = ps1.ps_partkey
          and ps1.ps_suppkey = maxes.max_suppkey
          and p_retailprice >= {HIGH_END_FRACTION} * maxes.maxprice
        union all
        select ps2.ps_suppkey, p_name, p_retailprice, 'low'
        from partsupp ps2, part,
             (select ps_suppkey, min(p_retailprice)
              from partsupp, part
              where p_partkey = ps_partkey
              group by ps_suppkey) as mins(min_suppkey, minprice)
        where p_partkey = ps2.ps_partkey
          and ps2.ps_suppkey = mins.min_suppkey
          and p_retailprice <= {LOW_END_MULTIPLE} * mins.minprice
        order by ps_suppkey
    """,
)


Q4 = PaperQuery(
    name="Q4",
    description=(
        "For each supplier, for each part size supplied, compute the "
        "average retail price and find all parts with this size priced "
        "more than the average."
    ),
    gapply_sql="""
        select gapply(
            select p_name, p_retailprice from tmp
            where p_retailprice > (select avg(p_retailprice) from tmp)
        ) as (name, price)
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey, p_size : tmp
    """,
    # Section 5.2's SQL for Q4, adapted to this dialect (the paper's text
    # has `partsupp.p_size`, which must be `part.p_size`).
    baseline_sql="""
        select tmp.ps_suppkey, p_name, p_size, p_retailprice
        from (select ps_suppkey, p_size, avg(p_retailprice)
              from partsupp, part
              where p_partkey = ps_partkey
              group by ps_suppkey, p_size) as tmp(ps_suppkey, size, avgprice),
             partsupp, part
        where ps_partkey = p_partkey
          and partsupp.ps_suppkey = tmp.ps_suppkey
          and part.p_size = tmp.size
          and p_retailprice > tmp.avgprice
        order by ps_suppkey
    """,
    # A "semantically equivalent but different" phrasing (Section 5.2 notes
    # such variants run orders of magnitude slower): fully correlated.
    naive_sql="""
        select ps1.ps_suppkey, p_name, p_size, p_retailprice
        from partsupp ps1, part
        where p_partkey = ps1.ps_partkey
          and p_retailprice > (select avg(p_retailprice)
                               from partsupp, part p2
                               where p2.p_partkey = ps_partkey
                                 and ps_suppkey = ps1.ps_suppkey
                                 and p2.p_size = part.p_size)
        order by ps_suppkey
    """,
)


PAPER_QUERIES: tuple[PaperQuery, ...] = (Q1, Q2, Q3, Q4)


def query_by_name(name: str) -> PaperQuery:
    for query in PAPER_QUERIES:
        if query.name.lower() == name.lower():
            return query
    raise KeyError(
        f"unknown paper query {name!r}; known: "
        + ", ".join(q.name for q in PAPER_QUERIES)
    )
