"""Deterministic TPC-H data generator (the subset the paper uses).

The paper's experiments run on the TPC-H benchmark database; the queries
touch ``supplier``, ``partsupp`` and ``part`` (Section 2 reproduces that
part of the schema). This generator follows the TPC-H specification's
shapes at laptop scale:

* ``region`` (5 rows) and ``nation`` (25 rows) — fixed;
* ``part`` — SF x 2,000 rows, ``p_retailprice`` from the spec's formula
  ``(90000 + ((partkey/10) mod 20001) + 100 (partkey mod 1000)) / 100``,
  sizes uniform in 1..50, brands ``Brand#MN``;
* ``supplier`` — SF x 100 rows with account balances uniform in
  [-999.99, 9999.99];
* ``partsupp`` — 4 rows per part, supplier assignment per the spec's
  ``(partkey + i (S/4 + (partkey - 1)/S)) mod S + 1`` permutation, so every
  supplier supplies about ``80 x SF`` parts — the group-size distribution
  the paper's speedups depend on.

Determinism: everything derives from the row keys and a seeded PRNG, so
benchmark runs are exactly reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.storage.catalog import Catalog
from repro.storage.table import Table
from repro.storage.schema import Column, Schema
from repro.storage.types import DataType

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)

_TYPE_SYLLABLE_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO")
_TYPE_SYLLABLE_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED")
_TYPE_SYLLABLE_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")
_CONTAINERS_1 = ("SM", "MED", "LG", "JUMBO", "WRAP")
_CONTAINERS_2 = ("CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM")
_NAME_WORDS = (
    "almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
    "blanched", "blue", "blush", "brown", "burlywood", "burnished",
    "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
    "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
    "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
)


@dataclass(frozen=True)
class TpchConfig:
    """Scale and determinism knobs for the generator.

    ``scale`` is the TPC-H scale factor; the paper used SF=5 (a 5 GB
    database) on a 1 GHz machine — we default to SF=0.01, which yields the
    same group structure (~80 parts per supplier after the 4-suppliers-per-
    part expansion is inverted) at interpreter-friendly sizes.
    """

    scale: float = 0.01
    seed: int = 20030609  # SIGMOD 2003 started June 9, 2003
    parts_per_scale: int = 2_000
    suppliers_per_scale: int = 100

    @property
    def part_count(self) -> int:
        return max(8, int(self.parts_per_scale * self.scale))

    @property
    def supplier_count(self) -> int:
        return max(4, int(self.suppliers_per_scale * self.scale))


def _part_retailprice(partkey: int) -> float:
    return (90_000 + ((partkey // 10) % 20_001) + 100 * (partkey % 1_000)) / 100.0


def _part_name(rng: random.Random) -> str:
    return " ".join(rng.sample(_NAME_WORDS, 5))


def _part_type(rng: random.Random) -> str:
    return " ".join(
        (
            rng.choice(_TYPE_SYLLABLE_1),
            rng.choice(_TYPE_SYLLABLE_2),
            rng.choice(_TYPE_SYLLABLE_3),
        )
    )


def _comment(rng: random.Random, low: int, high: int) -> str:
    length = rng.randint(low, high)
    words = []
    while sum(len(w) + 1 for w in words) < length:
        words.append(rng.choice(_NAME_WORDS))
    return " ".join(words)


def generate_region() -> Table:
    schema = Schema(
        (
            Column("r_regionkey", DataType.INTEGER, "region", nullable=False),
            Column("r_name", DataType.STRING, "region", nullable=False),
            Column("r_comment", DataType.STRING, "region"),
        )
    )
    rows = [(key, name, f"region {name.lower()}") for key, name in enumerate(REGIONS)]
    return Table("region", schema, rows, primary_key=("r_regionkey",))


def generate_nation() -> Table:
    schema = Schema(
        (
            Column("n_nationkey", DataType.INTEGER, "nation", nullable=False),
            Column("n_name", DataType.STRING, "nation", nullable=False),
            Column("n_regionkey", DataType.INTEGER, "nation", nullable=False),
            Column("n_comment", DataType.STRING, "nation"),
        )
    )
    rows = [
        (key, name, region, f"nation {name.lower()}")
        for key, (name, region) in enumerate(NATIONS)
    ]
    return Table("nation", schema, rows, primary_key=("n_nationkey",))


def generate_part(config: TpchConfig) -> Table:
    rng = random.Random(config.seed ^ 0x9A97)
    schema = Schema(
        (
            Column("p_partkey", DataType.INTEGER, "part", nullable=False),
            Column("p_name", DataType.STRING, "part", nullable=False),
            Column("p_mfgr", DataType.STRING, "part", nullable=False),
            Column("p_brand", DataType.STRING, "part", nullable=False),
            Column("p_type", DataType.STRING, "part", nullable=False),
            Column("p_size", DataType.INTEGER, "part", nullable=False),
            Column("p_container", DataType.STRING, "part", nullable=False),
            Column("p_retailprice", DataType.FLOAT, "part", nullable=False),
            Column("p_comment", DataType.STRING, "part"),
        )
    )
    rows = []
    for partkey in range(1, config.part_count + 1):
        mfgr = rng.randint(1, 5)
        brand = mfgr * 10 + rng.randint(1, 5)
        rows.append(
            (
                partkey,
                _part_name(rng),
                f"Manufacturer#{mfgr}",
                f"Brand#{brand}",
                _part_type(rng),
                rng.randint(1, 50),
                f"{rng.choice(_CONTAINERS_1)} {rng.choice(_CONTAINERS_2)}",
                _part_retailprice(partkey),
                _comment(rng, 5, 22),
            )
        )
    return Table("part", schema, rows, primary_key=("p_partkey",))


def generate_supplier(config: TpchConfig) -> Table:
    rng = random.Random(config.seed ^ 0x5059)
    schema = Schema(
        (
            Column("s_suppkey", DataType.INTEGER, "supplier", nullable=False),
            Column("s_name", DataType.STRING, "supplier", nullable=False),
            Column("s_address", DataType.STRING, "supplier", nullable=False),
            Column("s_nationkey", DataType.INTEGER, "supplier", nullable=False),
            Column("s_phone", DataType.STRING, "supplier", nullable=False),
            Column("s_acctbal", DataType.FLOAT, "supplier", nullable=False),
            Column("s_comment", DataType.STRING, "supplier"),
        )
    )
    rows = []
    for suppkey in range(1, config.supplier_count + 1):
        nation = rng.randint(0, len(NATIONS) - 1)
        rows.append(
            (
                suppkey,
                f"Supplier#{suppkey:09d}",
                _comment(rng, 10, 30).title(),
                nation,
                f"{10 + nation}-{rng.randint(100, 999)}-{rng.randint(100, 999)}-{rng.randint(1000, 9999)}",
                round(rng.uniform(-999.99, 9999.99), 2),
                _comment(rng, 25, 60),
            )
        )
    return Table("supplier", schema, rows, primary_key=("s_suppkey",))


def generate_partsupp(config: TpchConfig) -> Table:
    """4 partsupp rows per part, spec supplier-assignment permutation."""
    rng = random.Random(config.seed ^ 0x9559)
    schema = Schema(
        (
            Column("ps_partkey", DataType.INTEGER, "partsupp", nullable=False),
            Column("ps_suppkey", DataType.INTEGER, "partsupp", nullable=False),
            Column("ps_availqty", DataType.INTEGER, "partsupp", nullable=False),
            Column("ps_supplycost", DataType.FLOAT, "partsupp", nullable=False),
            Column("ps_comment", DataType.STRING, "partsupp"),
        )
    )
    supplier_count = config.supplier_count
    # The spec's permutation assumes S >= 40; at laptop scale we keep its
    # shape (partkey base + stride per replica) but use a stride of S/4,
    # which is distinct for the four replicas at any S >= 4.
    stride = max(1, supplier_count // 4)
    replicas = min(4, supplier_count)
    rows = []
    for partkey in range(1, config.part_count + 1):
        for i in range(replicas):
            suppkey = (partkey + i * stride) % supplier_count + 1
            rows.append(
                (
                    partkey,
                    suppkey,
                    rng.randint(1, 9_999),
                    round(rng.uniform(1.0, 1_000.0), 2),
                    _comment(rng, 10, 40),
                )
            )
    return Table("partsupp", schema, rows, primary_key=("ps_partkey", "ps_suppkey"))


def load_tpch(
    catalog: Catalog, config: TpchConfig | None = None, validate: bool = False
) -> TpchConfig:
    """Generate and register all tables with keys/foreign keys declared."""
    config = config or TpchConfig()
    catalog.register(generate_region(), replace=True)
    catalog.register(generate_nation(), replace=True)
    catalog.register(generate_part(config), replace=True)
    catalog.register(generate_supplier(config), replace=True)
    catalog.register(generate_partsupp(config), replace=True)
    catalog.add_foreign_key("nation", ["n_regionkey"], "region", ["r_regionkey"])
    catalog.add_foreign_key("supplier", ["s_nationkey"], "nation", ["n_nationkey"])
    catalog.add_foreign_key("partsupp", ["ps_partkey"], "part", ["p_partkey"])
    catalog.add_foreign_key("partsupp", ["ps_suppkey"], "supplier", ["s_suppkey"])
    # Index the key columns and the selective predicate columns the
    # paper-style workloads probe (the paper's server had clustered and
    # secondary indexes; without them the large Table-1 ratios cannot
    # materialize on any substrate).
    catalog.table("part").create_index(["p_partkey"])
    catalog.table("part").create_index(["p_retailprice"])
    catalog.table("part").create_index(["p_size"])
    catalog.table("supplier").create_index(["s_suppkey"])
    catalog.table("partsupp").create_index(["ps_partkey"])
    catalog.table("partsupp").create_index(["ps_suppkey"])
    catalog.table("nation").create_index(["n_nationkey"])
    if validate:
        catalog.validate_constraints()
    catalog.invalidate_statistics()
    return config
