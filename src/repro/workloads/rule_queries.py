"""Parameterized queries for the Table-1 rule-effectiveness study.

Section 5.2: "For each rule, we pick a relevant parameterized query. We
then vary the parameter and for each of its values, find the performance
benefit obtained by applying the rule." This module defines one sweep per
Table-1 row; the harness in :mod:`repro.bench.table1` fires the rule under
test on each instance and reports max / average / average-over-wins.

All queries run over the TPC-H subset of :mod:`repro.workloads.tpch` and
use the ``gapply`` syntax, so every sweep starts from a plan containing the
GApply operator the rule rewrites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class RuleSweep:
    """One Table-1 row: the rule under test and its parameterized query."""

    rule_name: str
    title: str
    parameter_name: str
    parameters: tuple
    make_sql: Callable[[object], str]

    def instances(self) -> list[tuple[object, str]]:
        return [(p, self.make_sql(p)) for p in self.parameters]


# ----------------------------------------------------------------------
# Row 1: Placing Selection before GApply
# ----------------------------------------------------------------------
# Figure-3 shape: the per-group query only looks at cheap parts (price at
# most X); the covering range (p_retailprice <= X) pushes into the outer
# query, shrinking every group before partitioning. TPC-H retail prices
# run 900..1100 + 100*(partkey mod 1000) ~ [900, 2001); thresholds sweep
# the selectivity from ~1/500 to 1.

def _selection_sql(threshold: float) -> str:
    return f"""
        select gapply(
            select p_name, p_retailprice from g
            where p_retailprice <= {threshold}
              and p_retailprice >
                  (select avg(p_retailprice) from g
                   where p_retailprice <= {threshold})
        ) as (name, price)
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey : g
    """


SELECTION_SWEEP = RuleSweep(
    rule_name="selection_before_gapply",
    title="Placing Selection Before GApply",
    parameter_name="price threshold",
    parameters=(902.0, 905.0, 925.0, 1000.0, 1200.0, 1500.0, 2100.0),
    make_sql=_selection_sql,
)


# ----------------------------------------------------------------------
# Row 2: Placing Projection before GApply
# ----------------------------------------------------------------------
# The outer join is wide (partsupp x part is 14 columns, two of them long
# comments); the per-group query touches only a few. The parameter is how
# many columns the per-group query returns — the fewer, the more the
# projection rule saves in partition buffering.

_PROJECTION_COLUMNS = (
    "p_name",
    "p_retailprice",
    "p_size",
    "p_brand",
    "p_type",
    "p_container",
    "p_comment",
    "ps_availqty",
    "ps_supplycost",
    "ps_comment",
)


def _projection_sql(column_count: int) -> str:
    columns = ", ".join(_PROJECTION_COLUMNS[:column_count])
    return f"""
        select gapply(
            select {columns} from g
            where p_retailprice > (select avg(p_retailprice) from g)
        )
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey : g
    """


PROJECTION_SWEEP = RuleSweep(
    rule_name="projection_before_gapply",
    title="Placing Projection Before GApply",
    parameter_name="returned columns",
    parameters=(1, 2, 4, 6, 10),
    make_sql=_projection_sql,
)


# ----------------------------------------------------------------------
# Row 3: Converting GApply to groupby
# ----------------------------------------------------------------------
# The per-group query is pure aggregation; the parameter is the number of
# aggregates computed per group.

_AGGREGATES = (
    "count(*)",
    "avg(p_retailprice)",
    "min(p_retailprice)",
    "max(p_retailprice)",
    "sum(ps_availqty)",
    "min(p_size)",
)


def _to_groupby_sql(aggregate_count: int) -> str:
    aggregates = ", ".join(_AGGREGATES[:aggregate_count])
    return f"""
        select gapply(select {aggregates} from g)
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey : g
    """


TO_GROUPBY_SWEEP = RuleSweep(
    rule_name="gapply_to_groupby",
    title="Converting GApply To groupby",
    parameter_name="aggregate count",
    parameters=(1, 2, 4, 6),
    make_sql=_to_groupby_sql,
)


# ----------------------------------------------------------------------
# Row 4: Group selection (exists)
# ----------------------------------------------------------------------
# "Find all suppliers that supply some expensive part" — sweep the
# expensiveness threshold; the rule wins when few groups qualify and can
# lose when almost all do (it reconstructs every qualifying group with an
# extra join).

def _exists_selection_sql(threshold: float) -> str:
    return f"""
        select gapply(
            select * from g
            where exists (select ps_suppkey from g
                          where p_retailprice > {threshold})
        )
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey : g
    """


EXISTS_SWEEP = RuleSweep(
    rule_name="exists_group_selection",
    title="Group Selection: Exists",
    parameter_name="price threshold",
    parameters=(2050.0, 2000.0, 1900.0, 1500.0, 1000.0, 0.0),
    make_sql=_exists_selection_sql,
)


# ----------------------------------------------------------------------
# Row 5: Group selection (aggregate)
# ----------------------------------------------------------------------
# "Suppliers whose average part price exceeds x."

def _aggregate_selection_sql(threshold: float) -> str:
    return f"""
        select gapply(
            select * from g
            where exists (select 1 from g
                          having avg(p_retailprice) > {threshold})
        )
        from partsupp, part
        where ps_partkey = p_partkey
        group by ps_suppkey : g
    """


AGGREGATE_SWEEP = RuleSweep(
    rule_name="aggregate_group_selection",
    title="Group Selection: Aggregate",
    parameter_name="average threshold",
    parameters=(1700.0, 1550.0, 1500.0, 1450.0, 1300.0, 0.0),
    make_sql=_aggregate_selection_sql,
)


# ----------------------------------------------------------------------
# Row 6: Invariant grouping (pushing GApply below a join)
# ----------------------------------------------------------------------
# Figure-7 shape: supplier details join above the groupwise processing.
# The parameter is how many rows the per-group query keeps: when it keeps
# only the minimum-priced part, the relocated GApply shrinks the input of
# the supplier join dramatically.

def _invariant_sql(band: float) -> str:
    condition = (
        "p_retailprice = (select min(p_retailprice) from g)"
        if band == 0.0
        else (
            f"p_retailprice <= {1.0 + band} * "
            "(select min(p_retailprice) from g)"
        )
    )
    return f"""
        select gapply(
            select s_name, p_name, p_retailprice from g
            where {condition}
        ) as (sname, pname, price)
        from partsupp, part, supplier
        where ps_partkey = p_partkey and ps_suppkey = s_suppkey
        group by ps_suppkey : g
    """


INVARIANT_SWEEP = RuleSweep(
    rule_name="invariant_grouping",
    title="Invariant Grouping",
    parameter_name="price band over minimum",
    parameters=(0.0, 0.05, 0.2, 0.5),
    make_sql=_invariant_sql,
)


TABLE1_SWEEPS: tuple[RuleSweep, ...] = (
    SELECTION_SWEEP,
    PROJECTION_SWEEP,
    TO_GROUPBY_SWEEP,
    EXISTS_SWEEP,
    AGGREGATE_SWEEP,
    INVARIANT_SWEEP,
)


def sweep_by_rule(rule_name: str) -> RuleSweep:
    for sweep in TABLE1_SWEEPS:
        if sweep.rule_name == rule_name:
            return sweep
    raise KeyError(
        f"no sweep for rule {rule_name!r}; known: "
        + ", ".join(s.rule_name for s in TABLE1_SWEEPS)
    )
