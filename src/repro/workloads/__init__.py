"""Workloads: TPC-H generator and the paper's query catalog."""

from repro.workloads.queries import (
    PAPER_QUERIES,
    PaperQuery,
    Q1,
    Q2,
    Q3,
    Q4,
    query_by_name,
)
from repro.workloads.tpch import TpchConfig, load_tpch

__all__ = [
    "PAPER_QUERIES",
    "PaperQuery",
    "Q1",
    "Q2",
    "Q3",
    "Q4",
    "TpchConfig",
    "load_tpch",
    "query_by_name",
]
