"""Exception hierarchy for the repro engine.

Every error raised by the library derives from :class:`ReproError` so callers
can catch engine failures without also swallowing programming errors such as
``TypeError`` raised by their own code.

Errors carry *query context*: :meth:`ReproError.add_context` attaches the
SQL text (and, where known, the plan path of the failing operator) to an
in-flight error without clobbering context set closer to the failure
site. :meth:`Database.sql <repro.api.Database.sql>` attaches the query
text to every engine error that escapes it, so a caller catching
:class:`ReproError` can always recover which statement failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro engine.

    ``sql`` and ``plan_path`` are optional context attributes, attached
    via :meth:`add_context` by whichever layer knows them (the API facade
    knows the SQL text; operators know their plan path). First writer
    wins: context set nearest the failure is never overwritten.
    """

    sql: str | None = None
    plan_path: str | None = None

    def add_context(
        self, sql: str | None = None, plan_path: str | None = None
    ) -> "ReproError":
        if sql is not None and self.sql is None:
            self.sql = sql
        if plan_path is not None and self.plan_path is None:
            self.plan_path = plan_path
        return self


class SchemaError(ReproError):
    """A schema is malformed or a column reference cannot be resolved."""


class AmbiguousColumnError(SchemaError):
    """An unqualified column name matches more than one column."""

    def __init__(self, name: str, candidates: list[str]):
        self.name = name
        self.candidates = candidates
        super().__init__(
            f"column reference {name!r} is ambiguous; candidates: "
            + ", ".join(sorted(candidates))
        )


class UnknownColumnError(SchemaError):
    """A column reference does not match any column in scope."""

    def __init__(self, name: str, available: list[str] | None = None):
        self.name = name
        self.available = available or []
        message = f"unknown column {name!r}"
        if self.available:
            message += "; available: " + ", ".join(self.available)
        super().__init__(message)


class TypeCheckError(ReproError):
    """An expression or operator is applied to values of the wrong type."""


class CatalogError(ReproError):
    """A table or constraint is missing from, or conflicts with, the catalog."""


class ConstraintError(ReproError):
    """Data violates a declared key or foreign-key constraint."""


class SqlSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    known, so front ends can point at the error location.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class BindError(ReproError):
    """A parsed query failed semantic analysis (name resolution, typing)."""


class PlanError(ReproError):
    """A logical plan is malformed or cannot be lowered to a physical plan."""


class OptimizerError(ReproError):
    """The optimizer reached an inconsistent state while rewriting a plan."""


class ExecutionError(ReproError):
    """A runtime failure while executing a physical plan."""


class QueryCancelled(ExecutionError):
    """The query's cancellation token was triggered while it was running."""


class BudgetExceeded(ExecutionError):
    """A per-query resource budget was exhausted (see the subclasses)."""


class TimeoutExceeded(BudgetExceeded):
    """The query ran past its wall-clock budget (``timeout=`` seconds).

    When the query went through the admission queue of a
    :class:`~repro.serve.Service`, ``queued_seconds`` and
    ``executing_seconds`` break the elapsed time down so callers can tell
    an overloaded service (all queue wait) from a genuinely slow query.
    """

    queued_seconds: float | None = None
    executing_seconds: float | None = None


class MemoryBudgetExceeded(BudgetExceeded):
    """A buffering operator would exceed the query's cell budget
    (``memory_budget=``). GApply's partition phase, ORDER BY sorts and
    DISTINCT spill to disk instead of raising this; hash builds
    (joins, aggregates) cannot."""


class RowBudgetExceeded(BudgetExceeded):
    """The query produced more output rows than ``max_rows=`` allows."""


class SpillError(ExecutionError):
    """A spill run file could not be written or read back."""


class WalError(ReproError):
    """A write-ahead-log append, fsync, or checkpoint failed.

    Raised *before* the in-memory catalog mutation applies and after the
    partially written record has been truncated away, so a caller that
    catches it holds a store whose durable state still equals its
    acknowledged state exactly."""


class WalCorruptionError(WalError):
    """The write-ahead log or a checkpoint is damaged beyond a torn tail.

    A bad frame at the very end of the newest segment is a torn write and
    is silently truncated during recovery; a bad frame *followed by more
    log data*, a version gap in the replay sequence, or a checkpoint that
    fails its CRC means acknowledged history is unreadable — recovery
    refuses to guess and raises this instead."""


class PointInTimeUnavailable(WalError):
    """A ``recover_to=`` target is not a reachable committed state.

    Raised by point-in-time recovery when the requested version predates
    the oldest archived history, exceeds the newest committed version,
    or falls strictly inside a transaction (between its ``begin`` and
    ``commit`` records) — only committed-state boundaries are
    reconstructible. The message names the reachable range."""


class WorkerCrashed(ExecutionError):
    """A worker-pool backend lost workers and exhausted its retries.

    Carries ``consumed_batches`` — how many dispatch batches were fully
    merged before the crash — so the caller can resume the remaining work
    on a lower rung of the degradation ladder without redoing (or worse,
    double-counting) the completed prefix.
    """

    def __init__(self, message: str, consumed_batches: int = 0):
        self.consumed_batches = consumed_batches
        super().__init__(message)


class ServiceError(ReproError):
    """A failure in the concurrent query service layer (:mod:`repro.serve`)."""


class ServiceOverloaded(ServiceError):
    """The service shed this query: every concurrency slot is busy and the
    admission wait-queue is full.

    This is the *retryable* load-shedding signal: ``queue_depth`` reports
    how many queries were already waiting and ``suggested_backoff`` is the
    seconds a well-behaved client should sleep before retrying (scaled
    with queue pressure, deterministic so tests can assert on it).
    """

    retryable = True

    def __init__(
        self,
        message: str,
        queue_depth: int = 0,
        suggested_backoff: float = 0.0,
    ):
        self.queue_depth = queue_depth
        self.suggested_backoff = suggested_backoff
        super().__init__(message)


class ServiceStopped(ServiceError):
    """The service refused the request because it is draining or stopped.

    Not retryable against the same service instance — clients should fail
    over rather than back off.
    """

    retryable = False


class XmlPublishError(ReproError):
    """An XML view, XQuery expression, or tagging step is invalid."""
