"""Exception hierarchy for the repro engine.

Every error raised by the library derives from :class:`ReproError` so callers
can catch engine failures without also swallowing programming errors such as
``TypeError`` raised by their own code.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro engine."""


class SchemaError(ReproError):
    """A schema is malformed or a column reference cannot be resolved."""


class AmbiguousColumnError(SchemaError):
    """An unqualified column name matches more than one column."""

    def __init__(self, name: str, candidates: list[str]):
        self.name = name
        self.candidates = candidates
        super().__init__(
            f"column reference {name!r} is ambiguous; candidates: "
            + ", ".join(sorted(candidates))
        )


class UnknownColumnError(SchemaError):
    """A column reference does not match any column in scope."""

    def __init__(self, name: str, available: list[str] | None = None):
        self.name = name
        self.available = available or []
        message = f"unknown column {name!r}"
        if self.available:
            message += "; available: " + ", ".join(self.available)
        super().__init__(message)


class TypeCheckError(ReproError):
    """An expression or operator is applied to values of the wrong type."""


class CatalogError(ReproError):
    """A table or constraint is missing from, or conflicts with, the catalog."""


class ConstraintError(ReproError):
    """Data violates a declared key or foreign-key constraint."""


class SqlSyntaxError(ReproError):
    """The SQL text could not be tokenized or parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    known, so front ends can point at the error location.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class BindError(ReproError):
    """A parsed query failed semantic analysis (name resolution, typing)."""


class PlanError(ReproError):
    """A logical plan is malformed or cannot be lowered to a physical plan."""


class OptimizerError(ReproError):
    """The optimizer reached an inconsistent state while rewriting a plan."""


class ExecutionError(ReproError):
    """A runtime failure while executing a physical plan."""


class XmlPublishError(ReproError):
    """An XML view, XQuery expression, or tagging step is invalid."""
