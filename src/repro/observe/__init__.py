"""Operator-level observability: metrics, traces, and EXPLAIN rendering.

The paper's empirical claims (Table 1, Figure 8) are about *work avoided*
— rows kept out of GApply's partition phase, groups never materialized,
GApply collapsed to a plain groupby. Wall-clock time on a 1-CPU container
cannot see any of that reliably (EXPERIMENTS.md E9), so this package makes
the work itself observable:

* :mod:`repro.observe.metrics` — a :class:`MetricsRegistry` holding one
  :class:`OperatorMetrics` record per physical operator (rows in/out,
  executions, groups formed, empty groups, index probes, comparisons,
  partition rows) plus monotonic timers behind an injectable clock;
* :mod:`repro.observe.trace` — lightweight spans at plan → operator →
  group granularity, JSON-exportable;
* :mod:`repro.observe.explain` — the ``EXPLAIN`` / ``EXPLAIN ANALYZE``
  renderer: an annotated plan tree with estimated vs. actual
  cardinalities, per-operator metrics, and the optimizer's rule-firing
  trace;
* ``python -m repro.observe`` — a CLI dumping rendered trees and JSON
  traces for any paper workload query.

Everything here is strictly opt-in: when no registry is attached to the
:class:`~repro.execution.context.ExecutionContext`, the executor's hot
path neither allocates nor touches any observe object (guarded by a
tier-1 test).
"""

from repro.observe.metrics import (
    LockedCounters,
    MetricsRegistry,
    OperatorMetrics,
    join_path,
)
from repro.observe.trace import Span, Tracer

__all__ = [
    "LockedCounters",
    "MetricsRegistry",
    "OperatorMetrics",
    "Span",
    "Tracer",
    "join_path",
]
