"""EXPLAIN / EXPLAIN ANALYZE rendering.

An :class:`Explanation` bundles everything one query run produced for
inspection: the physical plan (with the planner's ``est_rows`` stamps),
the optimizer's :class:`~repro.optimizer.engine.OptimizationReport`
(rule-firing trace), and — for ANALYZE — the metrics registry and tracer
from an actual execution. ``render()`` produces the annotated plan tree;
``to_json()`` the machine-readable trace document CI archives.

Plain ``EXPLAIN`` output is deterministic (labels, estimates, rule trace —
no wall-clock anywhere), which is what lets the golden plan-snapshot tests
check it in verbatim. ``EXPLAIN ANALYZE`` adds actual cardinalities and
per-operator timings, so its text is for humans and its counters — never
its timings — for tests.

This module deliberately lives outside ``repro.observe.__init__``: it
imports the execution layer, which the metrics module must not (the base
operator imports metrics lazily through the context), so keeping it out of
the package root avoids an import cycle.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

from repro.execution.base import PhysicalOperator
from repro.observe.metrics import MetricsRegistry, join_path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.execution.context import Counters
    from repro.observe.trace import Tracer
    from repro.optimizer.engine import OptimizationReport
    from repro.storage.schema import Schema


def format_rows(value: float | int | None) -> str:
    """Row counts for display: ints plain, floats trimmed, None as '?'."""
    if value is None:
        return "?"
    if isinstance(value, float):
        if value == int(value):
            return str(int(value))
        return f"{value:.1f}"
    return str(value)


@dataclass
class Explanation:
    """The result of ``EXPLAIN [ANALYZE] <query>``.

    ``rows``/``schema``/``counters`` are populated only for ANALYZE (the
    query actually ran); ``registry``/``tracer`` likewise.
    """

    sql: str | None
    analyze: bool
    physical_plan: PhysicalOperator
    report: "OptimizationReport | None" = None
    registry: MetricsRegistry | None = None
    tracer: "Tracer | None" = None
    rows: list | None = None
    schema: "Schema | None" = None
    counters: "Counters | None" = None
    #: Plan-cache outcome (source "hit"/"miss", key digest, param count)
    #: when the run went through the plan cache; None when it bypassed.
    plan_cache: dict[str, Any] | None = None

    # ------------------------------------------------------------------
    # Text rendering
    # ------------------------------------------------------------------

    def render(self) -> str:
        lines = ["EXPLAIN ANALYZE" if self.analyze else "EXPLAIN"]
        lines.extend(self._header_lines())
        metrics = self._metrics_by_path()
        self._render_node(self.physical_plan, "", 0, metrics, lines)
        return "\n".join(lines)

    __str__ = render

    def _header_lines(self) -> list[str]:
        # The cache line only names source and parameter count — both
        # deterministic for a given query on a fresh database — so golden
        # snapshots stay byte-stable.
        cache_lines = []
        if self.plan_cache is not None:
            count = self.plan_cache.get("params", 0)
            cache_lines.append(
                "-- plan cache: {} ({} param{})".format(
                    self.plan_cache.get("source", "?"),
                    count,
                    "" if count == 1 else "s",
                )
            )
        report = self.report
        if report is None:
            return ["-- optimizer: off"] + cache_lines
        lines = [
            "-- cost: {:.0f} (unoptimized {:.0f}); explored {} plan{}{}".format(
                report.best_estimate.cost,
                report.original_estimate.cost,
                report.explored,
                "" if report.explored == 1 else "s",
                " [truncated]" if report.truncated else "",
            ),
            f"-- rules fired: {', '.join(report.fired) or 'none'}",
        ]
        active = [f for f in report.rule_trace if f.proposed]
        if active:
            lines.append(
                "-- rule trace: "
                + "; ".join(
                    f"{f.rule} proposed={f.proposed} kept={f.kept}"
                    for f in active
                )
            )
        return lines + cache_lines

    def _metrics_by_path(self) -> dict[str, dict]:
        if self.registry is None:
            return {}
        return self.registry.snapshot(include_time=True)

    def _render_node(
        self,
        node: PhysicalOperator,
        path: str,
        depth: int,
        metrics: dict[str, dict],
        lines: list[str],
    ) -> None:
        annotations = [f"est={format_rows(node.est_rows)}"]
        record = metrics.get(path)
        if record is not None:
            annotations.append(f"actual={format_rows(record['rows_out'])}")
            if record["executions"] != 1:
                annotations.append(f"execs={record['executions']}")
            for name, short in (
                ("groups_formed", "groups"),
                ("empty_groups_skipped", "empty"),
                ("partition_rows", "partition_rows"),
                ("index_probes", "probes"),
                ("comparisons", "cmp"),
            ):
                if record[name]:
                    annotations.append(f"{short}={record[name]}")
            annotations.append(f"time={record['elapsed_ns'] / 1e6:.1f}ms")
        lines.append(
            "{}{}  ({})".format("  " * depth, node.label(), ", ".join(annotations))
        )
        for index, child in enumerate(node.children()):
            self._render_node(
                child, join_path(path, str(index)), depth + 1, metrics, lines
            )

    # ------------------------------------------------------------------
    # JSON export (the CI trace artifact)
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        document: dict[str, Any] = {
            "sql": self.sql,
            "analyze": self.analyze,
            "plan": self._node_json(
                self.physical_plan, "", self._metrics_by_path()
            ),
        }
        if self.report is not None:
            report = self.report
            document["optimizer"] = {
                "cost": report.best_estimate.cost,
                "unoptimized_cost": report.original_estimate.cost,
                "explored": report.explored,
                "truncated": report.truncated,
                "fired": list(report.fired),
                "rule_trace": [f.to_dict() for f in report.rule_trace],
            }
        if self.plan_cache is not None:
            document["plan_cache"] = dict(self.plan_cache)
        if self.counters is not None:
            document["work"] = self.counters.snapshot()
        if self.tracer is not None:
            document["trace"] = self.tracer.to_json()
        return document

    def _node_json(
        self, node: PhysicalOperator, path: str, metrics: dict[str, dict]
    ) -> dict:
        entry: dict[str, Any] = {
            "op": node.label(),
            "path": path,
            "est_rows": node.est_rows,
        }
        record = metrics.get(path)
        if record is not None:
            entry["metrics"] = {k: v for k, v in record.items() if k != "op"}
        children = [
            self._node_json(child, join_path(path, str(index)), metrics)
            for index, child in enumerate(node.children())
        ]
        if children:
            entry["children"] = children
        return entry

    def dumps(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_json(), indent=indent)
