"""Per-operator metrics: the registry behind EXPLAIN ANALYZE.

A :class:`MetricsRegistry` maps every node of one physical plan to an
:class:`OperatorMetrics` record, keyed by the node's *tree path* — ``""``
for the root, ``"0"`` / ``"1"`` for its children, ``"1.0"`` for the first
child of the second child, and so on. Paths are derived purely from the
plan structure, so two walks over equal-shaped plans produce the same
keys. That is the property the parallel GApply backends rely on: a
process-pool worker re-registers its unpickled copy of the per-group plan,
counts work into a fresh registry, and ships a snapshot home; the parent
merges it under the per-group subtree's path prefix and ends up with
metrics identical to a serial run (sums over plain ints, no ordering
sensitivity).

Timing uses an injectable monotonic clock (``perf_counter_ns`` by
default); tests inject a fake clock to make ``elapsed_ns`` deterministic.
Because wall-clock is noisy and worker clocks are not comparable across
processes, :meth:`MetricsRegistry.snapshot` *excludes* elapsed time by
default — equivalence tests compare the deterministic counters only, and
the EXPLAIN ANALYZE renderer asks for time explicitly.

Nothing in this module is imported on the executor's default path: the
base :class:`~repro.execution.base.PhysicalOperator` only calls in here
when a registry is attached to the execution context.

**Concurrency.** Registries and tracers are *per-query* objects — the
:class:`~repro.api.Database` facade builds a fresh one per execution, so
two threads sharing a Database never share a registry's hot path. The
structural mutations that *can* race (ad-hoc self-registration via
:meth:`MetricsRegistry.record_for`, worker-snapshot merging) are guarded
by a lock; the per-``next()`` counter updates stay lock-free because only
the single thread driving a plan touches them (parallel workers count
into their own fresh registries and ship snapshots home). For state that
genuinely is shared across queries — service health counters, test
probes — use :class:`LockedCounters`.
"""

from __future__ import annotations

import threading
import time
from typing import TYPE_CHECKING, Callable, Iterator, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.execution.base import PhysicalOperator
    from repro.execution.context import ExecutionContext

#: Deterministic work counters carried by every record (merged by sum).
COUNTER_FIELDS = (
    "executions",
    "rows_out",
    "comparisons",
    "index_probes",
    "groups_formed",
    "empty_groups_skipped",
    "partition_rows",
    "spill_runs",
    "spilled_rows",
    "spill_bytes",
)

#: The synthetic snapshot key a worker uses for counters that belong to the
#: *enclosing* GApply operator (which lives in the parent's plan, not in the
#: per-group plan the worker was shipped): empty-group accounting.
ENCLOSING_GAPPLY = "@gapply"


def join_path(prefix: str, relative: str) -> str:
    """Join registry tree paths (either side may be the root ``""``)."""
    if not relative:
        return prefix
    if not prefix:
        return relative
    return f"{prefix}.{relative}"


class OperatorMetrics:
    """Counters and cumulative time for one physical operator.

    ``rows_out`` counts every row the operator emitted (summed over all of
    its executions — a per-group plan's operators execute once per group).
    ``elapsed_ns`` is *inclusive* time: the operator plus everything below
    it, measured around each ``next()`` on the operator's iterator so time
    spent in consumers upstream is excluded.
    """

    __slots__ = ("path", "label") + COUNTER_FIELDS + ("elapsed_ns",)

    def __init__(self, path: str, label: str):
        self.path = path
        self.label = label
        for name in COUNTER_FIELDS:
            setattr(self, name, 0)
        self.elapsed_ns = 0

    def counters(self, include_time: bool = False) -> dict[str, int]:
        data = {name: getattr(self, name) for name in COUNTER_FIELDS}
        if include_time:
            data["elapsed_ns"] = self.elapsed_ns
        return data

    def add(self, counters: Mapping[str, int]) -> None:
        """Fold a counter mapping in (sums; unknown keys are rejected)."""
        for name, value in counters.items():
            if name == "op":
                continue
            if name not in self.__slots__ or name in ("path", "label"):
                raise KeyError(f"unknown operator metric {name!r}")
            setattr(self, name, getattr(self, name) + value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{name}={getattr(self, name)}"
            for name in COUNTER_FIELDS
            if getattr(self, name)
        )
        return f"OperatorMetrics({self.path!r}, {self.label!r}, {inner})"


class MetricsRegistry:
    """Per-operator metrics for one (or several) plan executions.

    Usage::

        registry = MetricsRegistry()
        registry.register_plan(physical)
        ctx = ExecutionContext(metrics=registry)
        rows = run_plan(physical, ctx)
        registry.snapshot()   # {path: {"op": label, counter: value, ...}}

    The registry accumulates across executions of the same plan; use a
    fresh registry per measured run.
    """

    def __init__(self, clock: Callable[[], int] = time.perf_counter_ns):
        self.clock = clock
        self._by_id: dict[int, OperatorMetrics] = {}
        self._by_path: dict[str, OperatorMetrics] = {}
        self._unregistered = 0
        #: Guards structural mutation (registration, snapshot merging).
        #: Counter increments on existing records are intentionally
        #: lock-free: one registry belongs to one query's driving thread.
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------

    def register_plan(self, root: "PhysicalOperator", prefix: str = "") -> None:
        """Walk ``root`` and create one record per node, keyed by path."""
        self._record_at(prefix, root.label(), node=root)
        for index, child in enumerate(root.children()):
            self.register_plan(child, join_path(prefix, str(index)))

    def _record_at(
        self, path: str, label: str, node: "PhysicalOperator | None" = None
    ) -> OperatorMetrics:
        with self._lock:
            record = self._by_path.get(path)
            if record is None:
                record = OperatorMetrics(path, label)
                self._by_path[path] = record
            if node is not None:
                self._by_id[id(node)] = record
            return record

    def record_for(self, op: "PhysicalOperator") -> OperatorMetrics:
        """The record for ``op``; unknown plans self-register on first use
        under a ``?N`` prefix (so ad-hoc plans still get metrics, with
        paths that cannot collide with a registered tree)."""
        record = self._by_id.get(id(op))
        if record is None:
            with self._lock:
                self._unregistered += 1
                prefix = f"?{self._unregistered - 1}"
            self.register_plan(op, prefix)
            record = self._by_id[id(op)]
        return record

    def path_of(self, op: "PhysicalOperator") -> str:
        return self.record_for(op).path

    def records(self) -> list[OperatorMetrics]:
        return [self._by_path[path] for path in sorted(self._by_path)]

    def total(self, field: str) -> int:
        """Sum one counter over every operator (e.g. ``partition_rows``)."""
        return sum(getattr(record, field) for record in self._by_path.values())

    def by_label(self, label_prefix: str) -> list[OperatorMetrics]:
        """Records whose operator label starts with ``label_prefix``
        (e.g. ``"GApply"``), in path order."""
        return [r for r in self.records() if r.label.startswith(label_prefix)]

    # ------------------------------------------------------------------
    # Instrumented execution (called by PhysicalOperator.execute)
    # ------------------------------------------------------------------

    def drive(self, op: "PhysicalOperator", ctx: "ExecutionContext") -> Iterator:
        """Run ``op._execute(ctx)`` counting rows and inclusive time.

        The clock brackets each ``next()`` call so the measured time covers
        the operator and its subtree but not the consumer above it.
        """
        record = self.record_for(op)
        record.executions += 1
        tracer = ctx.tracer
        span = (
            None
            if tracer is None
            else tracer.begin("operator", op.label(), path=record.path)
        )
        clock = self.clock
        iterator = op._execute(ctx)
        rows = 0
        elapsed = 0
        try:
            while True:
                start = clock()
                try:
                    row = next(iterator)
                except StopIteration:
                    elapsed += clock() - start
                    break
                elapsed += clock() - start
                rows += 1
                yield row
        finally:
            record.rows_out += rows
            record.elapsed_ns += elapsed
            if span is not None:
                tracer.end(span, rows_out=rows)

    # ------------------------------------------------------------------
    # Snapshots and merging (the cross-worker protocol)
    # ------------------------------------------------------------------

    def snapshot(self, include_time: bool = False) -> dict[str, dict]:
        """Plain-dict view, path-sorted: ``{path: {"op": label, ...}}``.

        Excludes ``elapsed_ns`` unless asked: the deterministic counters
        are the equivalence contract across execution backends; time is
        reporting-only.
        """
        return {
            path: {"op": self._by_path[path].label,
                   **self._by_path[path].counters(include_time)}
            for path in sorted(self._by_path)
        }

    def merge_snapshot(
        self,
        snapshot: Mapping[str, Mapping[str, int]],
        prefix: str = "",
        enclosing_gapply_path: str | None = None,
    ) -> None:
        """Fold a worker snapshot in under ``prefix``.

        ``enclosing_gapply_path`` is where the worker's synthetic
        :data:`ENCLOSING_GAPPLY` entry lands — the parent-side GApply
        record that owns the worker's empty-group counts.
        """
        for relative, counters in snapshot.items():
            if relative == ENCLOSING_GAPPLY:
                if enclosing_gapply_path is None:
                    raise KeyError(
                        "snapshot has an enclosing-GApply entry but no "
                        "target path was given"
                    )
                path = enclosing_gapply_path
                label = self._by_path[path].label if path in self._by_path else "GApply"
            else:
                path = join_path(prefix, relative)
                label = counters.get("op", "?")
            record = self._by_path.get(path)
            if record is None:
                record = self._record_at(path, str(label))
            record.add({k: v for k, v in counters.items() if k != "op"})

    def to_json(self) -> dict:
        """The JSON trace document: every record, with time included."""
        return {
            "operators": [
                {"path": record.path, "op": record.label,
                 **record.counters(include_time=True)}
                for record in self.records()
            ]
        }


class LockedCounters:
    """Named integer counters safe to bump from any number of threads.

    The building block for state genuinely shared across concurrent
    queries — the query service's health/stats snapshot
    (:meth:`repro.serve.Service.stats`) is built on one. ``snapshot``
    returns a point-in-time copy taken under the lock, so a reader never
    sees a torn multi-counter update made through :meth:`add_many`.
    """

    def __init__(self, **initial: int):
        self._lock = threading.Lock()
        self._values: dict[str, int] = dict(initial)

    def inc(self, name: str, amount: int = 1) -> int:
        """Add ``amount`` (may be negative); returns the new value."""
        with self._lock:
            value = self._values.get(name, 0) + amount
            self._values[name] = value
            return value

    def add_many(self, **amounts: int) -> None:
        """Apply several increments as one atomic update."""
        with self._lock:
            for name, amount in amounts.items():
                self._values[name] = self._values.get(name, 0) + amount

    def get(self, name: str) -> int:
        with self._lock:
            return self._values.get(name, 0)

    def max_of(self, name: str, candidate: int) -> int:
        """Raise ``name`` to ``candidate`` if larger (peak tracking)."""
        with self._lock:
            value = max(self._values.get(name, 0), candidate)
            self._values[name] = value
            return value

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._values)
