"""Lightweight tracing spans: plan → operator → group granularity.

A :class:`Tracer` collects a flat list of :class:`Span` records linked by
parent ids — cheap to record (one append per span), trivially
JSON-exportable, and reconstructable into a tree offline. Three kinds are
emitted by the engine:

* ``plan`` — one span around a whole plan execution (opened by
  :meth:`repro.api.Database.execute` when tracing is requested);
* ``operator`` — one span per operator *execution* (a per-group plan's
  operators open one span per group), recorded by the metrics registry's
  instrumented driver;
* ``group`` — one span per GApply group on the serial execution phase,
  attributed with the grouping-key values and the rows emitted.

Tracing shares the registry's injectable clock discipline. Spans recorded
inside parallel pool workers are not shipped back (worker wall-clocks are
not comparable across processes); the deterministic counters are — see
:mod:`repro.observe.metrics`. A ``max_spans`` cap bounds memory on
pathological plans; the ``dropped`` count reports what the cap cost.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable

DEFAULT_MAX_SPANS = 20_000


@dataclass
class Span:
    """One traced interval; ``end_ns`` is None while the span is open."""

    span_id: int
    parent_id: int | None
    kind: str  # "plan" | "operator" | "group"
    name: str
    start_ns: int
    end_ns: int | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration_ns(self) -> int | None:
        if self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "kind": self.kind,
            "name": self.name,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Span collector with an explicit parent stack.

    ``begin`` returns the span id; ``end`` closes it (and pops it off the
    parent stack if it is the innermost open span). Spans beyond
    ``max_spans`` are counted as dropped rather than recorded.

    A tracer belongs to one query, but its span list and parent stack are
    mutated under a lock anyway: recording a span is already an
    allocation, so the lock costs little, and it makes the tracer safe if
    spans ever arrive from a helper thread (thread-backend GApply workers
    share the parent's context objects).
    """

    def __init__(
        self,
        clock: Callable[[], int] = time.perf_counter_ns,
        max_spans: int = DEFAULT_MAX_SPANS,
    ):
        self.clock = clock
        self.max_spans = max_spans
        self.spans: list[Span] = []
        self.dropped = 0
        self._open: list[int] = []
        self._next_id = 0
        self._lock = threading.Lock()

    def begin(self, kind: str, name: str, **attrs: Any) -> int:
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
            if len(self.spans) >= self.max_spans:
                self.dropped += 1
                return span_id
            parent = self._open[-1] if self._open else None
            self.spans.append(
                Span(span_id, parent, kind, name, self.clock(), attrs=attrs)
            )
            self._open.append(span_id)
            return span_id

    def end(self, span_id: int, **attrs: Any) -> None:
        with self._lock:
            if self._open and self._open[-1] == span_id:
                self._open.pop()
            for span in reversed(self.spans):
                if span.span_id == span_id:
                    span.end_ns = self.clock()
                    span.attrs.update(attrs)
                    return
            # A dropped span: nothing recorded to close.

    def to_json(self) -> dict:
        return {
            "spans": [span.to_dict() for span in self.spans],
            "dropped": self.dropped,
        }

    def dumps(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_json(), indent=indent)
