"""``python -m repro.observe``: dump EXPLAIN [ANALYZE] for workload queries.

Renders the annotated plan tree for any of the paper's benchmark queries
(or ad-hoc SQL) against a generated TPC-H catalog, and optionally writes
the machine-readable JSON trace documents CI archives as artifacts::

    python -m repro.observe                       # all 10 formulations
    python -m repro.observe --query Q2 --analyze  # one query, executed
    python -m repro.observe --sql "select ..."    # ad-hoc text
    python -m repro.observe --analyze --json-dir traces/
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.api import Database
from repro.storage.catalog import Catalog
from repro.workloads.queries import PAPER_QUERIES, query_by_name
from repro.workloads.tpch import TpchConfig, load_tpch


def formulations(names: list[str] | None) -> list[tuple[str, str]]:
    """(label, sql) pairs: every formulation of every selected query."""
    queries = (
        list(PAPER_QUERIES)
        if not names
        else [query_by_name(name) for name in names]
    )
    out: list[tuple[str, str]] = []
    for query in queries:
        out.append((f"{query.name}-gapply", query.gapply_sql))
        out.append((f"{query.name}-baseline", query.baseline_sql))
        if query.naive_sql is not None:
            out.append((f"{query.name}-naive", query.naive_sql))
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.observe", description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--query", action="append", dest="queries", metavar="NAME",
        help="paper query to explain (Q1..Q4; repeatable; default: all)",
    )
    parser.add_argument(
        "--sql", help="explain this SQL text instead of the paper queries"
    )
    parser.add_argument(
        "--analyze", action="store_true",
        help="execute the plans and annotate actual cardinalities/metrics",
    )
    parser.add_argument(
        "--scale", type=float, default=0.02,
        help="TPC-H scale factor for the generated catalog (default 0.02)",
    )
    parser.add_argument(
        "--json-dir", metavar="DIR",
        help="also write one <label>.json trace document per query to DIR",
    )
    args = parser.parse_args(argv)

    catalog = Catalog()
    load_tpch(catalog, TpchConfig(scale=args.scale))
    db = Database(catalog)
    explain = "analyze" if args.analyze else True

    if args.sql:
        targets = [("adhoc", args.sql)]
    else:
        try:
            targets = formulations(args.queries)
        except KeyError as error:
            parser.error(str(error))

    json_dir = None
    if args.json_dir:
        json_dir = Path(args.json_dir)
        json_dir.mkdir(parents=True, exist_ok=True)

    for label, sql in targets:
        explanation = db.sql(sql, explain=explain)
        print(f"=== {label} ===")
        print(explanation.render())
        print()
        if json_dir is not None:
            path = json_dir / f"{label}.json"
            path.write_text(explanation.dumps() + "\n")
            print(f"wrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
