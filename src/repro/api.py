"""High-level public API: the :class:`Database` facade.

Ties the whole stack together: catalog + SQL front end + optimizer +
executor. This is what the examples and benchmarks use::

    db = Database()
    db.create_table("part", [("p_partkey", DataType.INTEGER), ...],
                    rows, primary_key=["p_partkey"])
    result = db.sql("select gapply(select avg(p_retailprice) from g) "
                    "from part group by p_brand : g")
    print(result.pretty())
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Iterator, Sequence

from repro.algebra.operators import LogicalOperator
from repro.errors import (
    BindError,
    CatalogError,
    PlanError,
    ReproError,
    WalError,
)
from repro.execution.base import PhysicalOperator
from repro.execution.governor import Budget, Governor
from repro.execution.parallel import BACKENDS
from repro.execution.context import Counters, ExecutionContext
from repro.observe.explain import Explanation
from repro.observe.metrics import MetricsRegistry
from repro.observe.trace import Tracer
from repro.execution.vector.compiler import compile_plan
from repro.optimizer.engine import OptimizationReport, Optimizer
from repro.optimizer.plancache import (
    CachedPlan,
    PlanCache,
    PlanKey,
    options_tag,
    substitute_parameters,
    text_digest,
)
from repro.optimizer.planner import (
    ENGINES,
    VECTOR_ENGINE,
    VOLCANO_ENGINE,
    Planner,
    PlannerOptions,
)
from repro.sql.ast import AstExplain, AstQuery
from repro.sql.binder import Binder
from repro.sql.normalize import (
    bind_ast_parameters,
    count_parameters,
    parameterize,
    seed_parameters,
    type_signature,
)
from repro.sql.parser import parse, parse_statement
from repro.sql.printer import print_statement
from repro.storage.catalog import Catalog
from repro.storage.schema import Schema
from repro.storage.table import Table, table_from_rows
from repro.storage.types import DataType
from repro.xmlpub.stream import DEFAULT_CHUNK_BYTES, XmlChunkStream
from repro.xmlpub.translate import Translator
from repro.xmlpub.view import XmlView


@dataclass
class QueryResult:
    """Materialized result of one query execution."""

    schema: Schema
    rows: list[tuple]
    counters: Counters
    logical_plan: LogicalOperator
    physical_plan: PhysicalOperator
    optimization: OptimizationReport | None = None
    metrics: MetricsRegistry | None = None
    trace: Tracer | None = None
    #: Which execution engine produced the rows ("volcano" or "vector").
    engine: str = VOLCANO_ENGINE
    #: Plan-cache outcome for this run (``source`` is "hit"/"miss", plus
    #: key digest and parameter count); None when the run bypassed the
    #: cache.
    plan_cache: dict[str, Any] | None = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_table(self, name: str = "result") -> Table:
        table = Table(name, self.schema)
        table.rows = list(self.rows)
        return table

    def to_dicts(self) -> list[dict[str, Any]]:
        names = self.schema.qualified_names()
        return [dict(zip(names, row)) for row in self.rows]

    def pretty(self, limit: int = 20) -> str:
        return self.to_table().pretty(limit)


def _with_parallel_knobs(
    options: PlannerOptions | None,
    parallelism: int | None,
    backend: str | None,
) -> PlannerOptions | None:
    """Fold the convenience parallel knobs into planner options.

    A bare ``parallelism=N`` (N > 1) implies the process backend — the
    only one that scales CPU-bound per-group plans on CPython.
    """
    if parallelism is None and backend is None:
        return options
    # Validate here, not only in PGApply: a plan whose GApply the optimizer
    # rewrites away (e.g. to groupby) never builds the operator, and bad
    # knob values should not ride along silently in that case.
    if parallelism is not None and parallelism < 1:
        raise PlanError(f"parallelism must be >= 1, got {parallelism}")
    if backend is not None and backend not in BACKENDS:
        raise PlanError(
            f"unknown GApply backend {backend!r}; use one of {BACKENDS}"
        )
    base = options or PlannerOptions()
    updates: dict[str, Any] = {}
    if parallelism is not None:
        updates["gapply_parallelism"] = parallelism
    if backend is not None:
        updates["gapply_backend"] = backend
    elif parallelism is not None and parallelism > 1:
        updates["gapply_backend"] = "process"
    return replace(base, **updates)


def _with_engine_knob(
    options: PlannerOptions | None, engine: str | None
) -> PlannerOptions | None:
    """Fold the convenience ``engine`` knob into planner options."""
    if engine is None:
        return options
    if engine not in ENGINES:
        raise PlanError(
            f"unknown execution engine {engine!r}; use one of {ENGINES}"
        )
    return replace(options or PlannerOptions(), engine=engine)


def _resolve_governor(
    governor: Governor | None,
    timeout: float | None,
    memory_budget: int | None,
    max_rows: int | None,
    sql_text: str | None,
) -> Governor | None:
    """One governor per run: from the budget knobs, or prebuilt, not both."""
    knobs = (
        timeout is not None
        or memory_budget is not None
        or max_rows is not None
    )
    if governor is not None and knobs:
        raise PlanError(
            "pass either a prebuilt governor or budget knobs, not both"
        )
    if governor is None and knobs:
        governor = Governor(
            Budget(
                timeout=timeout,
                memory_cells=memory_budget,
                max_rows=max_rows,
            ),
            sql=sql_text,
        )
    return governor


def _governed_rows(
    row_source: Iterator[tuple],
    governor: Governor | None,
    sql_text: str | None,
) -> Iterator[tuple]:
    """The lazy row loop behind :meth:`Database.execute_stream`.

    Mirrors the materializing loop in :meth:`Database.execute`: enforce
    ``max_rows`` at the root and make sure every engine error leaves
    carrying the SQL it happened in. The finally clause closes the
    operator tree even when the consumer abandons the stream mid-flight
    (GeneratorExit travels through ``yield``).
    """
    try:
        if governor is None:
            yield from row_source
        else:
            for row in row_source:
                governor.tick_output(1)
                yield row
    except ReproError as error:
        raise error.add_context(sql=sql_text)
    finally:
        close = getattr(row_source, "close", None)
        if close is not None:
            close()


class RowStream:
    """A lazily executed query result: plan now, rows on demand.

    Built by :meth:`Database.execute_stream`. Planning (bind validation,
    optimization, lowering, vector compilation) happens eagerly inside
    ``execute_stream`` so plan-shape errors surface at call time; row
    production is pulled through this iterator one row at a time — no
    intermediate list anywhere, which is what lets the streaming XML
    publisher hold documents larger than memory.

    ``close()`` tears down the underlying operator tree (releasing
    generator-held resources such as GApply spill files); it is idempotent
    and also runs when the stream is used as a context manager or its
    consumer abandons it.
    """

    def __init__(
        self,
        rows: Iterator[tuple],
        schema: Schema,
        logical_plan: LogicalOperator,
        physical_plan: PhysicalOperator,
        counters: Counters,
        engine: str,
        governor: Governor | None = None,
    ):
        self._rows = rows
        self.schema = schema
        self.logical_plan = logical_plan
        self.physical_plan = physical_plan
        self.counters = counters
        self.engine = engine
        self.governor = governor

    def __iter__(self) -> "RowStream":
        return self

    def __next__(self) -> tuple:
        return next(self._rows)

    def close(self) -> None:
        close = getattr(self._rows, "close", None)
        if close is not None:
            close()

    def __enter__(self) -> "RowStream":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class Transaction:
    """A multi-statement transaction handle from :meth:`Database.begin`.

    All writes on the owning database between ``begin()`` and
    :meth:`commit` belong to this transaction: they journal to the WAL
    under one transaction id and recovery applies them atomically — a
    crash before the durable commit record rolls the store back to the
    state this transaction began from. :meth:`rollback` discards the
    writes immediately (in memory and, via the abort record, in the
    durable history).

    Context-manager form commits on clean exit and rolls back when the
    block raises::

        with db.begin():
            db.create_table("part", ...)
            db.catalog.insert_rows("part", rows)
            db.create_index("part", ["p_partkey"])
        # all durable here, or none of it

    The handle is single-use: after commit or rollback every further
    call raises :class:`~repro.errors.CatalogError`. If the commit
    itself fails durability (:class:`~repro.errors.WalError`), the
    catalog is rolled back and the handle ends in state ``"failed"``.
    """

    def __init__(self, database: "Database"):
        self._database = database
        self.state = "active"

    def _require_active(self, action: str) -> None:
        if self.state != "active":
            raise CatalogError(
                f"cannot {action}: transaction already {self.state}"
            )

    def commit(self) -> None:
        """Durably commit every operation made since ``begin()``."""
        self._require_active("commit")
        try:
            self._database.catalog.commit_transaction()
        except WalError:
            self.state = "failed"
            raise
        self.state = "committed"

    def rollback(self) -> None:
        """Discard every operation made since ``begin()``."""
        self._require_active("rollback")
        try:
            self._database.catalog.rollback_transaction()
        except WalError:
            self.state = "failed"
            raise
        self.state = "rolled back"

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self.state != "active":
            return  # committed/rolled back explicitly inside the block
        if exc_type is None:
            self.commit()
        else:
            self.rollback()


class Database:
    """An in-memory database with GApply support end to end.

    Thread-safety contract: reads (``sql``/``execute``/``plan``) are safe
    to issue from any number of threads — per-query state (contexts,
    counters, metrics registries, tracers, governors) is built fresh per
    call. Concurrent *writes* racing reads on the same catalog need
    snapshot isolation: route them through :class:`repro.serve.Service`,
    or take :meth:`snapshot` yourself before reading while another thread
    mutates.
    """

    #: Sentinel: "build a fresh default PlanCache" (vs. None = disabled).
    _DEFAULT_CACHE: Any = object()

    def __init__(
        self,
        catalog: Catalog | None = None,
        plan_cache: "PlanCache | None" = _DEFAULT_CACHE,
    ):
        self.catalog = catalog or Catalog()
        if plan_cache is Database._DEFAULT_CACHE:
            plan_cache = PlanCache()
        self.plan_cache = plan_cache
        #: The write-ahead log behind :meth:`open`; ``None`` for plain
        #: in-memory databases.
        self.wal = None

    @classmethod
    def open(
        cls,
        path: str,
        fsync: str = "always",
        segment_bytes: int | None = None,
        batch_every: int = 8,
        group_commit_delay: float | None = None,
        archive: bool = False,
        full_checkpoint_every: int | None = None,
        recover_to: int | None = None,
        plan_cache: "PlanCache | None" = _DEFAULT_CACHE,
    ) -> "Database":
        """Open (or create) a durable database rooted at directory ``path``.

        Recovery first: load the newest valid checkpoint chain, replay
        the write-ahead log on top of it (truncating a torn tail on the
        newest segment and rolling back an unterminated tail
        transaction; raising :class:`~repro.errors.WalCorruptionError`
        on mid-log damage), then attach a writer so every subsequent
        catalog mutation journals itself before applying. ``fsync`` is
        one of ``"always"`` / ``"batch"`` / ``"group"`` / ``"never"``
        (:data:`repro.storage.wal.FSYNC_POLICIES`);
        ``group_commit_delay`` caps how long a group-commit leader waits
        for followers. ``archive=True`` moves superseded segments and
        checkpoints into ``<path>/archive/`` instead of deleting them,
        which is what makes point-in-time recovery reach past the last
        checkpoint; ``full_checkpoint_every=N`` allows up to N-1
        incremental checkpoint deltas between full images.

        ``recover_to=version`` is **point-in-time recovery**: return a
        read-only database pinned at exactly that committed version,
        rebuilt from the archived chain, without modifying the store or
        attaching a writer. Raises
        :class:`~repro.errors.PointInTimeUnavailable` (typed) when the
        version is not a reachable committed state.
        """
        from repro.storage import wal as walmod

        if recover_to is not None:
            catalog = walmod.recover_point_in_time(path, recover_to)
            return cls(catalog, plan_cache=plan_cache)
        catalog, replayed = walmod.recover(path)
        kwargs: dict[str, Any] = {
            "fsync": fsync,
            "batch_every": batch_every,
            "archive": archive,
        }
        if segment_bytes is not None:
            kwargs["segment_bytes"] = segment_bytes
        if group_commit_delay is not None:
            kwargs["group_commit_delay"] = group_commit_delay
        if full_checkpoint_every is not None:
            kwargs["full_checkpoint_every"] = full_checkpoint_every
        log = walmod.WriteAheadLog(path, **kwargs)
        log.recoveries = 1
        log.replayed_records = replayed
        catalog.attach_wal(log)
        database = cls(catalog, plan_cache=plan_cache)
        database.wal = log
        return database

    def begin(self) -> "Transaction":
        """Open a multi-statement transaction on this database.

        Every catalog mutation until :meth:`Transaction.commit` journals
        under one transaction id; recovery replays all of them or none.
        Usable as a context manager: a clean exit commits, an exception
        rolls back. One transaction at a time — concurrent writers queue
        behind it (see ``Catalog._txn_gate``). Works on non-durable
        databases too (rollback is in-memory-only there).
        """
        self.catalog.begin_transaction()
        return Transaction(self)

    def checkpoint(self, full: bool = False) -> None:
        """Serialize the current catalog into a durable checkpoint and
        truncate (or archive) the WAL segments it supersedes. Writes an
        incremental delta when possible unless ``full=True``. No-op
        without a WAL; refused inside an open transaction (the
        checkpoint would capture the pre-transaction snapshot while
        claiming the in-transaction version)."""
        if self.wal is None:
            return
        from repro.errors import WalError
        from repro.storage import wal as walmod

        with self.catalog.mutation_lock:
            if self.catalog.in_transaction:
                raise WalError(
                    "cannot checkpoint inside an open transaction; "
                    "commit or roll back first"
                )
            state = walmod.catalog_state(self.catalog.snapshot())
            self.wal.write_checkpoint(state, full=full)

    def close(self) -> None:
        """Flush and close the WAL (if any). The database object stays
        queryable in memory; only durability ends."""
        if self.wal is not None:
            self.wal.close()

    def create_index(self, table_name: str, columns: Sequence[str]):
        """Catalog-level index DDL (journaled when the database is
        durable; see :meth:`repro.storage.catalog.Catalog.create_index`)."""
        return self.catalog.create_index(table_name, columns)

    def snapshot(self) -> "Database":
        """A read-only Database pinned to the catalog's current version.

        Queries against the snapshot see a frozen, immutable state no
        matter what concurrent writers do to this database afterwards
        (copy-on-write versioning; see
        :meth:`repro.storage.catalog.Catalog.snapshot`). DDL and inserts
        on the snapshot raise :class:`~repro.errors.CatalogError`.

        The snapshot *shares* this database's plan cache: entries are
        keyed by catalog version, so a snapshot pinned at version V only
        ever sees plans built against V, and plans it builds are reused
        by every other snapshot at the same version.
        """
        return Database(self.catalog.snapshot(), plan_cache=self.plan_cache)

    def prepare(self, text: str) -> "Prepared":
        """Parse + normalize once, execute many times.

        Two flavors of parameterization:

        * Explicit markers — ``db.prepare("... where p_size < $1")`` —
          require a full ``params`` vector on every
          :meth:`Prepared.execute`.
        * Automatic extraction — prepare any literal query and the
          normalizer lifts its literals into parameters, in left-to-right
          order; ``execute()`` with no arguments re-runs the original
          literals, ``execute([...])`` rebinds them.

        Execution goes through the shared plan cache, so repeated
        executions (and plain ``db.sql`` calls of the same query shape)
        skip bind + optimize after the first.
        """
        return Prepared(self, text)

    # ------------------------------------------------------------------
    # DDL-ish
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, DataType]],
        rows: Iterable[Sequence[Any]] = (),
        primary_key: Sequence[str] | None = None,
    ) -> Table:
        table = table_from_rows(name, columns, rows, primary_key)
        return self.catalog.register(table)

    def add_foreign_key(
        self,
        child_table: str,
        child_columns: Sequence[str],
        parent_table: str,
        parent_columns: Sequence[str],
    ) -> None:
        self.catalog.add_foreign_key(
            child_table, child_columns, parent_table, parent_columns
        )

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    def plan(self, sql: str) -> LogicalOperator:
        """Parse + bind only: the initial logical plan for SQL text."""
        return Binder(self.catalog).bind(parse(sql))

    def sql(
        self,
        text: str,
        optimize: bool = True,
        planner_options: PlannerOptions | None = None,
        parallelism: int | None = None,
        backend: str | None = None,
        explain: bool | str | None = None,
        collect_metrics: bool = False,
        trace: bool = False,
        timeout: float | None = None,
        memory_budget: int | None = None,
        max_rows: int | None = None,
        governor: Governor | None = None,
        engine: str | None = None,
        params: Sequence[Any] | None = None,
        use_plan_cache: bool | None = None,
    ) -> QueryResult | Explanation:
        """Run SQL text end to end and materialize the result.

        ``parallelism``/``backend`` are shorthand for the GApply
        execution-phase knobs on :class:`PlannerOptions` (``backend`` in
        ``{"serial", "thread", "process"}``); explicit ``planner_options``
        fields are overridden only by the knobs actually passed.
        ``engine`` likewise shorthands ``PlannerOptions.engine``:
        ``"volcano"`` (default) or ``"vector"`` for the batch-at-a-time
        columnar engine (identical rows/counters/metrics; unsupported
        operators fall back to Volcano automatically).

        ``timeout`` (wall-clock seconds), ``memory_budget`` (buffered
        cells — the unit of ``Counters.buffered_cells``) and ``max_rows``
        (output rows) attach a :class:`~repro.execution.governor.Governor`
        to the run. Violations raise typed errors from :mod:`repro.errors`
        (``TimeoutExceeded``, ``MemoryBudgetExceeded``,
        ``RowBudgetExceeded``) carrying this SQL text; under a memory
        budget, GApply's partition phase spills to disk instead of
        failing. Alternatively pass a prebuilt ``governor`` — e.g. the
        query service's, whose clock already started ticking at
        submission — which the budget knobs must not accompany.

        ``EXPLAIN [ANALYZE] <query>`` statements — or the equivalent
        ``explain=True`` / ``explain="analyze"`` keyword — return an
        :class:`Explanation` instead of a :class:`QueryResult`. Plain
        queries with ``collect_metrics``/``trace`` return a
        :class:`QueryResult` whose ``metrics``/``trace`` fields carry the
        per-operator registry and the span tracer.

        ``params`` binds the values for explicit ``$1``/``$2`` parameter
        markers in the text (positional, ``$1`` first). Optimized runs
        consult the per-database plan cache (see
        :mod:`repro.optimizer.plancache`) keyed by normalized query
        shape; ``use_plan_cache=False`` opts a single call out, and
        ``use_plan_cache=True`` demands the cache (an error when this
        database was built with ``plan_cache=None``).
        """
        statement = parse_statement(text)
        return self._run_statement(
            statement, text, params=params, use_plan_cache=use_plan_cache,
            optimize=optimize, planner_options=planner_options,
            parallelism=parallelism, backend=backend, explain=explain,
            collect_metrics=collect_metrics, trace=trace, timeout=timeout,
            memory_budget=memory_budget, max_rows=max_rows,
            governor=governor, engine=engine,
        )

    def _run_statement(
        self,
        statement: "AstQuery | AstExplain",
        text: str,
        *,
        params: Sequence[Any] | None,
        use_plan_cache: bool | None,
        optimize: bool,
        planner_options: PlannerOptions | None,
        parallelism: int | None,
        backend: str | None,
        explain: bool | str | None,
        collect_metrics: bool,
        trace: bool,
        timeout: float | None,
        memory_budget: int | None,
        max_rows: int | None,
        governor: Governor | None,
        engine: str | None,
    ) -> QueryResult | Explanation:
        """Shared execution path behind :meth:`sql` and :class:`Prepared`."""
        query = statement
        if isinstance(statement, AstExplain):
            query = statement.query
            explain = "analyze" if statement.analyze else (explain or True)
        try:
            marker_count = count_parameters(query)
        except ReproError as error:
            raise error.add_context(sql=text)
        values: tuple[Any, ...] = ()
        param_query: AstQuery | None = None
        if marker_count:
            if params is None:
                raise BindError(
                    f"query has {marker_count} parameter marker(s); pass "
                    "params=[...] or use Database.prepare()"
                ).add_context(sql=text)
            if len(params) != marker_count:
                raise BindError(
                    f"query has {marker_count} parameter marker(s) but "
                    f"{len(params)} value(s) were bound"
                ).add_context(sql=text)
            values = tuple(params)
            param_query = seed_parameters(query, values)
        elif params is not None:
            raise BindError(
                "params were given but the query has no $N parameter markers"
            ).add_context(sql=text)

        cache = self.plan_cache
        if use_plan_cache and cache is None:
            raise PlanError(
                "use_plan_cache=True but this Database was built with "
                "plan_cache=None"
            )
        cache_eligible = optimize and use_plan_cache is not False
        if cache is None or not cache_eligible:
            if cache is not None:
                cache.record_bypass()
            if marker_count:
                query = bind_ast_parameters(query, values)
            try:
                logical = Binder(self.catalog).bind(query)
            except ReproError as error:
                raise error.add_context(sql=text)
            return self.execute(
                logical, optimize, planner_options, parallelism, backend,
                explain, collect_metrics, trace, sql_text=text,
                timeout=timeout, memory_budget=memory_budget,
                max_rows=max_rows, governor=governor, engine=engine,
            )

        if param_query is None:
            param_query, values = parameterize(query)
        resolved = _with_engine_knob(
            _with_parallel_knobs(planner_options, parallelism, backend),
            engine,
        )
        key = PlanKey(
            digest=text_digest(print_statement(param_query)),
            type_tags=type_signature(values),
            catalog_version=self.catalog.version,
            options_tag=options_tag(resolved),
        )
        entry = cache.lookup(key)
        source = "hit"
        if entry is None:
            source = "miss"
            entry = cache.store(
                self._build_cache_entry(key, param_query, values, resolved, text)
            )
        info: dict[str, Any] = {
            "source": source,
            "params": len(values),
            "key": key.digest[:12],
        }
        logical = substitute_parameters(entry.template, values)
        # The report the caller sees describes *this* execution: same
        # provenance (costs, rule trace — identical by seed-parity), but
        # ``best`` is the substituted plan, not the marker template.
        report = replace(entry.report, best=logical)
        result = self.execute(
            logical, False, planner_options, parallelism, backend,
            explain, collect_metrics, trace, sql_text=text,
            timeout=timeout, memory_budget=memory_budget, max_rows=max_rows,
            governor=governor, engine=engine,
            _cached_report=report, _plan_cache_info=info,
        )
        rows = result.rows if isinstance(result, QueryResult) else (
            result.rows if result.analyze else None
        )
        if rows is not None and cache.record_execution(entry, len(rows)):
            if self._replan_entry(cache, entry, values, resolved, text):
                info["replanned"] = True
        return result

    def _build_cache_entry(
        self,
        key: PlanKey,
        param_query: AstQuery,
        values: tuple[Any, ...],
        resolved: PlannerOptions | None,
        text: str,
    ) -> CachedPlan:
        try:
            bound = Binder(self.catalog).bind(param_query)
            report = self._optimizer(resolved).optimize(bound)
        except ReproError as error:
            raise error.add_context(sql=text)
        return CachedPlan(
            key=key,
            statement=param_query,
            template=report.best,
            report=report,
            param_count=len(values),
            est_rows=report.best_estimate.rows,
            # Seed from the shape's remembered backoff (if it ever
            # re-planned), not the default: catalog mutations rebuild
            # entries under a new version, and resetting the threshold
            # would re-pay the re-plan probe after every write.
            qerror_threshold=self.plan_cache.seed_threshold(key),
        )

    def _replan_entry(
        self,
        cache: PlanCache,
        entry: CachedPlan,
        values: tuple[Any, ...],
        resolved: PlannerOptions | None,
        text: str,
    ) -> bool:
        """Re-optimize a drifted entry with current params as seeds.

        Best-effort: the query that triggered the drift already returned
        correct rows, so a failing re-plan is recorded and swallowed
        rather than surfaced.
        """
        reseeded = seed_parameters(entry.statement, values)
        try:
            bound = Binder(self.catalog).bind(reseeded)
            report = self._optimizer(resolved).optimize(bound)
        except ReproError:
            cache.counters.inc("replan_failures")
            return False
        cache.replace(
            entry,
            CachedPlan(
                key=entry.key,
                statement=reseeded,
                template=report.best,
                report=report,
                param_count=entry.param_count,
                est_rows=report.best_estimate.rows,
                qerror_threshold=cache.qerror_threshold,
            ),
        )
        return True

    def execute(
        self,
        logical: LogicalOperator,
        optimize: bool = True,
        planner_options: PlannerOptions | None = None,
        parallelism: int | None = None,
        backend: str | None = None,
        explain: bool | str | None = None,
        collect_metrics: bool = False,
        trace: bool = False,
        sql_text: str | None = None,
        timeout: float | None = None,
        memory_budget: int | None = None,
        max_rows: int | None = None,
        governor: Governor | None = None,
        engine: str | None = None,
        _cached_report: OptimizationReport | None = None,
        _plan_cache_info: dict[str, Any] | None = None,
    ) -> QueryResult | Explanation:
        """Optimize (optionally), lower, and run a logical plan.

        ``explain``: falsy = run normally; ``True``/``"plan"`` = plan only,
        return an :class:`Explanation`; ``"analyze"`` = run with metrics +
        tracing and return an :class:`Explanation` carrying the results.

        ``timeout``/``memory_budget``/``max_rows`` build a
        :class:`Governor` for the run (see :meth:`sql`); alternatively
        pass a prebuilt ``governor`` — e.g. to hold a cancellation handle
        across threads — which the budget knobs must not accompany.
        """
        if explain not in (None, False, True, "plan", "analyze"):
            raise PlanError(
                f"explain must be True, 'plan' or 'analyze', got {explain!r}"
            )
        governor = _resolve_governor(
            governor, timeout, memory_budget, max_rows, sql_text
        )
        planner_options = _with_engine_knob(
            _with_parallel_knobs(planner_options, parallelism, backend),
            engine,
        )
        chosen_engine = (
            VOLCANO_ENGINE if planner_options is None else planner_options.engine
        )
        if chosen_engine not in ENGINES:
            raise PlanError(
                f"unknown execution engine {chosen_engine!r}; "
                f"use one of {ENGINES}"
            )
        if explain:
            # Estimated cardinalities are the point of EXPLAIN output.
            planner_options = replace(
                planner_options or PlannerOptions(), collect_estimates=True
            )
        report: OptimizationReport | None = _cached_report
        chosen = logical
        try:
            if optimize:
                report = self._optimizer(planner_options).optimize(logical)
                chosen = report.best
            physical = Planner(self.catalog, planner_options).plan(chosen)
        except ReproError as error:
            raise error.add_context(sql=sql_text)
        if explain in (True, "plan"):
            return Explanation(
                sql=sql_text, analyze=False, physical_plan=physical,
                report=report, plan_cache=_plan_cache_info,
            )
        analyze = explain == "analyze"
        registry = tracer = None
        if analyze or collect_metrics:
            registry = MetricsRegistry()
            registry.register_plan(physical)
        if analyze or trace:
            tracer = Tracer()
        ctx = ExecutionContext(
            metrics=registry, tracer=tracer, governor=governor
        )
        span = None if tracer is None else tracer.begin("plan", physical.label())
        try:
            if chosen_engine == VECTOR_ENGINE:
                vector_plan = compile_plan(
                    physical, batch_size=planner_options.vector_batch_size
                )
                row_source = vector_plan.rows(ctx)
            else:
                row_source = physical.execute(ctx)
            if governor is None:
                rows = list(row_source)
            else:
                # Enforce max_rows at the root: typed error the moment the
                # budget is crossed, not after materializing everything.
                rows = []
                for row in row_source:
                    governor.tick_output(1)
                    rows.append(row)
        except ReproError as error:
            # Every engine error leaves carrying the SQL it happened in
            # (first writer wins, so deeper context is preserved).
            raise error.add_context(sql=sql_text)
        if span is not None:
            tracer.end(span, rows_out=len(rows))
        if analyze:
            return Explanation(
                sql=sql_text, analyze=True, physical_plan=physical,
                report=report, registry=registry, tracer=tracer,
                rows=rows, schema=physical.schema, counters=ctx.counters,
                plan_cache=_plan_cache_info,
            )
        return QueryResult(
            schema=physical.schema,
            rows=rows,
            counters=ctx.counters,
            logical_plan=chosen,
            physical_plan=physical,
            optimization=report,
            metrics=registry,
            trace=tracer,
            engine=chosen_engine,
            plan_cache=_plan_cache_info,
        )

    def execute_stream(
        self,
        logical: LogicalOperator,
        optimize: bool = True,
        planner_options: PlannerOptions | None = None,
        parallelism: int | None = None,
        backend: str | None = None,
        sql_text: str | None = None,
        timeout: float | None = None,
        memory_budget: int | None = None,
        max_rows: int | None = None,
        governor: Governor | None = None,
        engine: str | None = None,
    ) -> RowStream:
        """Optimize, lower, and run a logical plan *lazily*.

        The streaming sibling of :meth:`execute`: identical knobs and
        identical rows (both engines), but returns a :class:`RowStream`
        that pulls rows from the operator tree on demand instead of
        materializing a list. Planning is eager — plan-shape errors raise
        here — while execution errors (budget violations, cancellation)
        surface from the iterator, carrying the SQL text as context.

        The ``max_rows`` budget is enforced at the root as rows flow, same
        as :meth:`execute`.
        """
        governor = _resolve_governor(
            governor, timeout, memory_budget, max_rows, sql_text
        )
        planner_options = _with_engine_knob(
            _with_parallel_knobs(planner_options, parallelism, backend),
            engine,
        )
        chosen_engine = (
            VOLCANO_ENGINE if planner_options is None else planner_options.engine
        )
        if chosen_engine not in ENGINES:
            raise PlanError(
                f"unknown execution engine {chosen_engine!r}; "
                f"use one of {ENGINES}"
            )
        report: OptimizationReport | None = None
        chosen = logical
        try:
            if optimize:
                report = self._optimizer(planner_options).optimize(logical)
                chosen = report.best
            physical = Planner(self.catalog, planner_options).plan(chosen)
        except ReproError as error:
            raise error.add_context(sql=sql_text)
        ctx = ExecutionContext(governor=governor)
        try:
            if chosen_engine == VECTOR_ENGINE:
                vector_plan = compile_plan(
                    physical, batch_size=planner_options.vector_batch_size
                )
                row_source = vector_plan.rows(ctx)
            else:
                row_source = physical.execute(ctx)
        except ReproError as error:
            raise error.add_context(sql=sql_text)
        return RowStream(
            _governed_rows(row_source, governor, sql_text),
            schema=physical.schema,
            logical_plan=chosen,
            physical_plan=physical,
            counters=ctx.counters,
            engine=chosen_engine,
            governor=governor,
        )

    def publish(
        self,
        view: XmlView,
        query: str,
        formulation: str = "gapply",
        *,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        encoding: str = "utf-8",
        optimize: bool = True,
        planner_options: PlannerOptions | None = None,
        parallelism: int | None = None,
        backend: str | None = None,
        engine: str | None = None,
        timeout: float | None = None,
        memory_budget: int | None = None,
        max_rows: int | None = None,
        governor: Governor | None = None,
    ) -> XmlChunkStream:
        """Publish an XQuery over an XML view as a streamed document.

        The paper's full pipeline, constant-memory end to end: translate
        the FLWR ``query`` against ``view``
        (:class:`~repro.xmlpub.translate.Translator`), execute the chosen
        SQL ``formulation`` (``"gapply"``, the default, or ``"union"`` for
        the sorted outer union) through :meth:`execute_stream`, and feed
        the clustered rows to the constant-space tagger, yielding encoded
        XML chunks of roughly ``chunk_bytes`` each.

        One governor covers the whole publish: query execution *and* the
        XML chunk buffer draw on the same ``memory_budget``, emitted bytes
        are tallied on ``governor.emitted_bytes``, and cancelling it stops
        the stream within one chunk. Note the constant-memory guarantee
        under a tight budget holds for the ``"gapply"`` formulation (its
        partition phase spills to disk); the ``"union"`` formulation's
        ORDER BY buffers the full result and raises
        :class:`~repro.errors.MemoryBudgetExceeded` when it does not fit.

        Returns an :class:`~repro.xmlpub.stream.XmlChunkStream` — iterate
        it, ``read_all()`` it, or ``close()`` it early; abandoning it
        mid-document releases operator state and spill files.
        """
        translated = Translator(view, self.catalog).translate(query)
        sql_text = translated.sql_for(formulation)
        governor = _resolve_governor(
            governor, timeout, memory_budget, max_rows, sql_text
        )
        try:
            logical = Binder(self.catalog).bind(parse(sql_text))
        except ReproError as error:
            raise error.add_context(sql=sql_text)
        rows = self.execute_stream(
            logical,
            optimize=optimize,
            planner_options=planner_options,
            parallelism=parallelism,
            backend=backend,
            sql_text=sql_text,
            governor=governor,
            engine=engine,
        )
        return XmlChunkStream(
            rows,
            translated.spec,
            chunk_bytes=chunk_bytes,
            encoding=encoding,
            governor=governor,
            sql=sql_text,
        )

    def _optimizer(self, planner_options: PlannerOptions | None) -> Optimizer:
        """Build the optimizer honoring the rule knobs on planner options.

        ``disabled_rules`` / ``optimizer_max_alternatives`` live on
        :class:`PlannerOptions` so one object configures the whole plan
        space; unknown rule names raise :class:`PlanError` here, before any
        partial execution happens.
        """
        if planner_options is None:
            return Optimizer(self.catalog)
        try:
            rules = planner_options.active_rules()
        except KeyError as error:
            raise PlanError(str(error)) from error
        kwargs: dict[str, Any] = {}
        if planner_options.optimizer_max_alternatives is not None:
            kwargs["max_alternatives"] = planner_options.optimizer_max_alternatives
        return Optimizer(self.catalog, rules, **kwargs)

    def explain(self, sql: str, optimize: bool = True) -> str:
        """The logical plan (optimized by default) as indented text."""
        logical = self.plan(sql)
        if optimize:
            report = Optimizer(self.catalog).optimize(logical)
            header = (
                f"-- cost: {report.best_estimate.cost:.0f} "
                f"(unoptimized {report.original_estimate.cost:.0f}); "
                f"rules: {', '.join(report.fired) or 'none'}\n"
            )
            return header + report.best.pretty()
        return logical.pretty()


class Prepared:
    """A statement parsed and normalized once, executable many times.

    Built by :meth:`Database.prepare`. Two parameterization modes:

    * The text contains explicit ``$N`` markers: every ``execute`` call
      must bind a full ``params`` vector (``$1`` is ``params[0]``).
    * The text is a plain literal query: the normalizer extracts its
      literals into parameters in left-to-right order; ``execute()``
      re-runs the original literal values, ``execute(params)`` rebinds
      them positionally.

    Executions share the database's plan cache, so after the first run
    the per-call cost is parse-free *and* optimize-free: substitute the
    parameter vector into the cached optimized plan, lower, run.
    """

    def __init__(self, database: Database, text: str):
        self.database = database
        self.text = text
        statement = parse_statement(text)
        query = statement.query if isinstance(statement, AstExplain) else statement
        try:
            explicit = count_parameters(query)
        except ReproError as error:
            raise error.add_context(sql=text)
        if explicit:
            self._statement = statement
            self._defaults: tuple[Any, ...] | None = None
            self.parameter_count = explicit
        else:
            self._statement, values = parameterize(statement)
            self._defaults = values
            self.parameter_count = len(values)

    def execute(
        self, params: Sequence[Any] | None = None, **kwargs: Any
    ) -> QueryResult | Explanation:
        """Run with ``params`` bound to the slots (see class docstring).

        ``**kwargs`` pass through to :meth:`Database.sql` (``explain``,
        ``engine``, budgets, ...).
        """
        if params is None:
            if self._defaults is None and self.parameter_count:
                raise BindError(
                    f"prepared statement has {self.parameter_count} "
                    "parameter marker(s); execute() requires params"
                ).add_context(sql=self.text)
            values = self._defaults or ()
        else:
            if len(params) != self.parameter_count:
                raise BindError(
                    f"prepared statement takes {self.parameter_count} "
                    f"parameter(s), got {len(params)}"
                ).add_context(sql=self.text)
            values = tuple(params)
        return self.database._run_statement(
            self._statement,
            self.text,
            params=values if self.parameter_count else None,
            use_plan_cache=kwargs.pop("use_plan_cache", None),
            optimize=kwargs.pop("optimize", True),
            planner_options=kwargs.pop("planner_options", None),
            parallelism=kwargs.pop("parallelism", None),
            backend=kwargs.pop("backend", None),
            explain=kwargs.pop("explain", None),
            collect_metrics=kwargs.pop("collect_metrics", False),
            trace=kwargs.pop("trace", False),
            timeout=kwargs.pop("timeout", None),
            memory_budget=kwargs.pop("memory_budget", None),
            max_rows=kwargs.pop("max_rows", None),
            governor=kwargs.pop("governor", None),
            engine=kwargs.pop("engine", None),
            **kwargs,
        )
