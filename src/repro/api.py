"""High-level public API: the :class:`Database` facade.

Ties the whole stack together: catalog + SQL front end + optimizer +
executor. This is what the examples and benchmarks use::

    db = Database()
    db.create_table("part", [("p_partkey", DataType.INTEGER), ...],
                    rows, primary_key=["p_partkey"])
    result = db.sql("select gapply(select avg(p_retailprice) from g) "
                    "from part group by p_brand : g")
    print(result.pretty())
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Iterable, Sequence

from repro.algebra.operators import LogicalOperator
from repro.errors import PlanError, ReproError
from repro.execution.base import PhysicalOperator
from repro.execution.governor import Budget, Governor
from repro.execution.parallel import BACKENDS
from repro.execution.context import Counters, ExecutionContext
from repro.observe.explain import Explanation
from repro.observe.metrics import MetricsRegistry
from repro.observe.trace import Tracer
from repro.execution.vector.compiler import compile_plan
from repro.optimizer.engine import OptimizationReport, Optimizer
from repro.optimizer.planner import (
    ENGINES,
    VECTOR_ENGINE,
    VOLCANO_ENGINE,
    Planner,
    PlannerOptions,
)
from repro.sql.ast import AstExplain
from repro.sql.binder import Binder
from repro.sql.parser import parse, parse_statement
from repro.storage.catalog import Catalog
from repro.storage.schema import Schema
from repro.storage.table import Table, table_from_rows
from repro.storage.types import DataType


@dataclass
class QueryResult:
    """Materialized result of one query execution."""

    schema: Schema
    rows: list[tuple]
    counters: Counters
    logical_plan: LogicalOperator
    physical_plan: PhysicalOperator
    optimization: OptimizationReport | None = None
    metrics: MetricsRegistry | None = None
    trace: Tracer | None = None
    #: Which execution engine produced the rows ("volcano" or "vector").
    engine: str = VOLCANO_ENGINE

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_table(self, name: str = "result") -> Table:
        table = Table(name, self.schema)
        table.rows = list(self.rows)
        return table

    def to_dicts(self) -> list[dict[str, Any]]:
        names = self.schema.qualified_names()
        return [dict(zip(names, row)) for row in self.rows]

    def pretty(self, limit: int = 20) -> str:
        return self.to_table().pretty(limit)


def _with_parallel_knobs(
    options: PlannerOptions | None,
    parallelism: int | None,
    backend: str | None,
) -> PlannerOptions | None:
    """Fold the convenience parallel knobs into planner options.

    A bare ``parallelism=N`` (N > 1) implies the process backend — the
    only one that scales CPU-bound per-group plans on CPython.
    """
    if parallelism is None and backend is None:
        return options
    # Validate here, not only in PGApply: a plan whose GApply the optimizer
    # rewrites away (e.g. to groupby) never builds the operator, and bad
    # knob values should not ride along silently in that case.
    if parallelism is not None and parallelism < 1:
        raise PlanError(f"parallelism must be >= 1, got {parallelism}")
    if backend is not None and backend not in BACKENDS:
        raise PlanError(
            f"unknown GApply backend {backend!r}; use one of {BACKENDS}"
        )
    base = options or PlannerOptions()
    updates: dict[str, Any] = {}
    if parallelism is not None:
        updates["gapply_parallelism"] = parallelism
    if backend is not None:
        updates["gapply_backend"] = backend
    elif parallelism is not None and parallelism > 1:
        updates["gapply_backend"] = "process"
    return replace(base, **updates)


def _with_engine_knob(
    options: PlannerOptions | None, engine: str | None
) -> PlannerOptions | None:
    """Fold the convenience ``engine`` knob into planner options."""
    if engine is None:
        return options
    if engine not in ENGINES:
        raise PlanError(
            f"unknown execution engine {engine!r}; use one of {ENGINES}"
        )
    return replace(options or PlannerOptions(), engine=engine)


class Database:
    """An in-memory database with GApply support end to end.

    Thread-safety contract: reads (``sql``/``execute``/``plan``) are safe
    to issue from any number of threads — per-query state (contexts,
    counters, metrics registries, tracers, governors) is built fresh per
    call. Concurrent *writes* racing reads on the same catalog need
    snapshot isolation: route them through :class:`repro.serve.Service`,
    or take :meth:`snapshot` yourself before reading while another thread
    mutates.
    """

    def __init__(self, catalog: Catalog | None = None):
        self.catalog = catalog or Catalog()

    def snapshot(self) -> "Database":
        """A read-only Database pinned to the catalog's current version.

        Queries against the snapshot see a frozen, immutable state no
        matter what concurrent writers do to this database afterwards
        (copy-on-write versioning; see
        :meth:`repro.storage.catalog.Catalog.snapshot`). DDL and inserts
        on the snapshot raise :class:`~repro.errors.CatalogError`.
        """
        return Database(self.catalog.snapshot())

    # ------------------------------------------------------------------
    # DDL-ish
    # ------------------------------------------------------------------

    def create_table(
        self,
        name: str,
        columns: Sequence[tuple[str, DataType]],
        rows: Iterable[Sequence[Any]] = (),
        primary_key: Sequence[str] | None = None,
    ) -> Table:
        table = table_from_rows(name, columns, rows, primary_key)
        return self.catalog.register(table)

    def add_foreign_key(
        self,
        child_table: str,
        child_columns: Sequence[str],
        parent_table: str,
        parent_columns: Sequence[str],
    ) -> None:
        self.catalog.add_foreign_key(
            child_table, child_columns, parent_table, parent_columns
        )

    def table(self, name: str) -> Table:
        return self.catalog.table(name)

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------

    def plan(self, sql: str) -> LogicalOperator:
        """Parse + bind only: the initial logical plan for SQL text."""
        return Binder(self.catalog).bind(parse(sql))

    def sql(
        self,
        text: str,
        optimize: bool = True,
        planner_options: PlannerOptions | None = None,
        parallelism: int | None = None,
        backend: str | None = None,
        explain: bool | str | None = None,
        collect_metrics: bool = False,
        trace: bool = False,
        timeout: float | None = None,
        memory_budget: int | None = None,
        max_rows: int | None = None,
        governor: Governor | None = None,
        engine: str | None = None,
    ) -> QueryResult | Explanation:
        """Run SQL text end to end and materialize the result.

        ``parallelism``/``backend`` are shorthand for the GApply
        execution-phase knobs on :class:`PlannerOptions` (``backend`` in
        ``{"serial", "thread", "process"}``); explicit ``planner_options``
        fields are overridden only by the knobs actually passed.
        ``engine`` likewise shorthands ``PlannerOptions.engine``:
        ``"volcano"`` (default) or ``"vector"`` for the batch-at-a-time
        columnar engine (identical rows/counters/metrics; unsupported
        operators fall back to Volcano automatically).

        ``timeout`` (wall-clock seconds), ``memory_budget`` (buffered
        cells — the unit of ``Counters.buffered_cells``) and ``max_rows``
        (output rows) attach a :class:`~repro.execution.governor.Governor`
        to the run. Violations raise typed errors from :mod:`repro.errors`
        (``TimeoutExceeded``, ``MemoryBudgetExceeded``,
        ``RowBudgetExceeded``) carrying this SQL text; under a memory
        budget, GApply's partition phase spills to disk instead of
        failing. Alternatively pass a prebuilt ``governor`` — e.g. the
        query service's, whose clock already started ticking at
        submission — which the budget knobs must not accompany.

        ``EXPLAIN [ANALYZE] <query>`` statements — or the equivalent
        ``explain=True`` / ``explain="analyze"`` keyword — return an
        :class:`Explanation` instead of a :class:`QueryResult`. Plain
        queries with ``collect_metrics``/``trace`` return a
        :class:`QueryResult` whose ``metrics``/``trace`` fields carry the
        per-operator registry and the span tracer.
        """
        statement = parse_statement(text)
        query = statement
        if isinstance(statement, AstExplain):
            query = statement.query
            explain = "analyze" if statement.analyze else (explain or True)
        try:
            logical = Binder(self.catalog).bind(query)
        except ReproError as error:
            raise error.add_context(sql=text)
        return self.execute(
            logical, optimize, planner_options, parallelism, backend,
            explain, collect_metrics, trace, sql_text=text,
            timeout=timeout, memory_budget=memory_budget, max_rows=max_rows,
            governor=governor, engine=engine,
        )

    def execute(
        self,
        logical: LogicalOperator,
        optimize: bool = True,
        planner_options: PlannerOptions | None = None,
        parallelism: int | None = None,
        backend: str | None = None,
        explain: bool | str | None = None,
        collect_metrics: bool = False,
        trace: bool = False,
        sql_text: str | None = None,
        timeout: float | None = None,
        memory_budget: int | None = None,
        max_rows: int | None = None,
        governor: Governor | None = None,
        engine: str | None = None,
    ) -> QueryResult | Explanation:
        """Optimize (optionally), lower, and run a logical plan.

        ``explain``: falsy = run normally; ``True``/``"plan"`` = plan only,
        return an :class:`Explanation`; ``"analyze"`` = run with metrics +
        tracing and return an :class:`Explanation` carrying the results.

        ``timeout``/``memory_budget``/``max_rows`` build a
        :class:`Governor` for the run (see :meth:`sql`); alternatively
        pass a prebuilt ``governor`` — e.g. to hold a cancellation handle
        across threads — which the budget knobs must not accompany.
        """
        if explain not in (None, False, True, "plan", "analyze"):
            raise PlanError(
                f"explain must be True, 'plan' or 'analyze', got {explain!r}"
            )
        if governor is not None and (
            timeout is not None
            or memory_budget is not None
            or max_rows is not None
        ):
            raise PlanError(
                "pass either a prebuilt governor or budget knobs, not both"
            )
        if governor is None and (
            timeout is not None
            or memory_budget is not None
            or max_rows is not None
        ):
            governor = Governor(
                Budget(
                    timeout=timeout,
                    memory_cells=memory_budget,
                    max_rows=max_rows,
                ),
                sql=sql_text,
            )
        planner_options = _with_engine_knob(
            _with_parallel_knobs(planner_options, parallelism, backend),
            engine,
        )
        chosen_engine = (
            VOLCANO_ENGINE if planner_options is None else planner_options.engine
        )
        if chosen_engine not in ENGINES:
            raise PlanError(
                f"unknown execution engine {chosen_engine!r}; "
                f"use one of {ENGINES}"
            )
        if explain:
            # Estimated cardinalities are the point of EXPLAIN output.
            planner_options = replace(
                planner_options or PlannerOptions(), collect_estimates=True
            )
        report: OptimizationReport | None = None
        chosen = logical
        try:
            if optimize:
                report = self._optimizer(planner_options).optimize(logical)
                chosen = report.best
            physical = Planner(self.catalog, planner_options).plan(chosen)
        except ReproError as error:
            raise error.add_context(sql=sql_text)
        if explain in (True, "plan"):
            return Explanation(
                sql=sql_text, analyze=False, physical_plan=physical,
                report=report,
            )
        analyze = explain == "analyze"
        registry = tracer = None
        if analyze or collect_metrics:
            registry = MetricsRegistry()
            registry.register_plan(physical)
        if analyze or trace:
            tracer = Tracer()
        ctx = ExecutionContext(
            metrics=registry, tracer=tracer, governor=governor
        )
        span = None if tracer is None else tracer.begin("plan", physical.label())
        try:
            if chosen_engine == VECTOR_ENGINE:
                vector_plan = compile_plan(
                    physical, batch_size=planner_options.vector_batch_size
                )
                row_source = vector_plan.rows(ctx)
            else:
                row_source = physical.execute(ctx)
            if governor is None:
                rows = list(row_source)
            else:
                # Enforce max_rows at the root: typed error the moment the
                # budget is crossed, not after materializing everything.
                rows = []
                for row in row_source:
                    governor.tick_output(1)
                    rows.append(row)
        except ReproError as error:
            # Every engine error leaves carrying the SQL it happened in
            # (first writer wins, so deeper context is preserved).
            raise error.add_context(sql=sql_text)
        if span is not None:
            tracer.end(span, rows_out=len(rows))
        if analyze:
            return Explanation(
                sql=sql_text, analyze=True, physical_plan=physical,
                report=report, registry=registry, tracer=tracer,
                rows=rows, schema=physical.schema, counters=ctx.counters,
            )
        return QueryResult(
            schema=physical.schema,
            rows=rows,
            counters=ctx.counters,
            logical_plan=chosen,
            physical_plan=physical,
            optimization=report,
            metrics=registry,
            trace=tracer,
            engine=chosen_engine,
        )

    def _optimizer(self, planner_options: PlannerOptions | None) -> Optimizer:
        """Build the optimizer honoring the rule knobs on planner options.

        ``disabled_rules`` / ``optimizer_max_alternatives`` live on
        :class:`PlannerOptions` so one object configures the whole plan
        space; unknown rule names raise :class:`PlanError` here, before any
        partial execution happens.
        """
        if planner_options is None:
            return Optimizer(self.catalog)
        try:
            rules = planner_options.active_rules()
        except KeyError as error:
            raise PlanError(str(error)) from error
        kwargs: dict[str, Any] = {}
        if planner_options.optimizer_max_alternatives is not None:
            kwargs["max_alternatives"] = planner_options.optimizer_max_alternatives
        return Optimizer(self.catalog, rules, **kwargs)

    def explain(self, sql: str, optimize: bool = True) -> str:
        """The logical plan (optimized by default) as indented text."""
        logical = self.plan(sql)
        if optimize:
            report = Optimizer(self.catalog).optimize(logical)
            header = (
                f"-- cost: {report.best_estimate.cost:.0f} "
                f"(unoptimized {report.original_estimate.cost:.0f}); "
                f"rules: {', '.join(report.fired) or 'none'}\n"
            )
            return header + report.best.pretty()
        return logical.pretty()
