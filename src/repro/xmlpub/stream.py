"""Constant-memory streaming XML publishing.

The tagger (:mod:`repro.xmlpub.tagger`) is already an O(depth) consumer of
clustered rows — but every caller so far materialized the query result
first, so the serve layer could not ship documents larger than memory.
This module closes that gap: it couples the tagger to a *lazy* row source
(:meth:`Database.execute_stream <repro.api.Database.execute_stream>`
pulls rows straight out of the Volcano iterators or the vector engine's
batch stream) and re-chunks the tagger's small text fragments into
bounded byte buffers, so the whole pipeline holds:

* the executor's working state (one group at a time for GApply, whose
  partition phase spills to disk under a memory budget);
* at most ``chunk_bytes`` (+ one text fragment) of pending XML;

and nothing proportional to the document.

Governor integration (:mod:`repro.execution.governor`): the pending
buffer is charged against the query's **memory budget** at
:data:`STREAM_CELL_BYTES` bytes per cell and released at every flush, so
a misconfigured ``chunk_bytes`` larger than the budget fails with the
same typed :class:`~repro.errors.MemoryBudgetExceeded` any buffering
operator raises; every flushed chunk runs a wall-clock/cancel check via
:meth:`~repro.execution.governor.Governor.charge_emitted`, so a
cancelled publish stops within one chunk even if the row stride has not
tripped. Emitted bytes themselves are *not* held against the memory
budget — they have left the system.

:class:`XmlChunkStream` is the client-facing handle: an
``Iterator[bytes]`` with deterministic lifecycle (``close()`` is
idempotent, tears down the row source, and fires close hooks exactly
once), which is what lets :meth:`Service.submit_publish
<repro.serve.Service.submit_publish>` hold an admission slot for exactly
the life of the stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator

from repro.errors import XmlPublishError
from repro.execution.governor import Governor
from repro.storage.table import Row
from repro.xmlpub.tagger import ConstantSpaceTagger, TaggerSpec

#: Default flush threshold: accumulate roughly this many bytes of XML
#: text before emitting a chunk. Small enough that a slow consumer sees
#: steady progress, large enough that per-chunk overhead disappears.
DEFAULT_CHUNK_BYTES = 64 * 1024

#: Governor cell granularity for buffered XML text: one memory-budget
#: cell per this many pending bytes. Cells are the unit of
#: ``Counters.buffered_cells`` (roughly one row-value slot), so 64 bytes
#: of text per cell keeps XML buffering commensurate with row buffering.
STREAM_CELL_BYTES = 64


@dataclass
class PublishStats:
    """Per-stream accounting, readable while the stream is live."""

    rows_in: int = 0
    chunks: int = 0            # chunks emitted (== buffer flushes)
    bytes_emitted: int = 0
    peak_buffer_bytes: int = 0  # high-water mark of pending (unflushed) text

    def snapshot(self) -> dict[str, int]:
        return {
            "rows_in": self.rows_in,
            "chunks": self.chunks,
            "bytes_emitted": self.bytes_emitted,
            "peak_buffer_bytes": self.peak_buffer_bytes,
        }


def stream_document(
    rows: Iterable[Row],
    spec: TaggerSpec,
    *,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    encoding: str = "utf-8",
    governor: Governor | None = None,
    stats: PublishStats | None = None,
) -> Iterator[bytes]:
    """Yield one XML document as encoded chunks with bounded buffering.

    ``rows`` may be any iterable of clustered tagger-layout rows — in
    production a lazy :meth:`Database.execute_stream` iterator; in tests
    a plain list. The concatenation of the yielded chunks is
    byte-identical to ``ConstantSpaceTagger(spec).tag_to_string(rows)``
    encoded, for every ``chunk_bytes`` — chunking never moves document
    bytes, only their framing.

    Cleanup is guaranteed: on ``close()`` (GeneratorExit), an error, or
    exhaustion, the row source is closed (releasing generator-held
    resources such as spill files) and any governor cells charged for
    the pending buffer are released.
    """
    if chunk_bytes < 1:
        raise XmlPublishError(
            f"chunk_bytes must be >= 1, got {chunk_bytes}"
        )
    tagger = ConstantSpaceTagger(spec)
    row_iter = iter(rows)
    counted = row_iter if stats is None else _counted(row_iter, stats)
    pieces: list[str] = []
    pending = 0        # approximate pending size (str length)
    charged_cells = 0  # governor cells currently held for the buffer

    def flush() -> bytes:
        nonlocal pending, charged_cells
        chunk = "".join(pieces).encode(encoding)
        pieces.clear()
        pending = 0
        if governor is not None:
            if charged_cells:
                governor.release_cells(charged_cells)
                charged_cells = 0
            governor.charge_emitted(len(chunk))
        if stats is not None:
            stats.chunks += 1
            stats.bytes_emitted += len(chunk)
        return chunk

    try:
        for piece in tagger.tag(counted):
            pieces.append(piece)
            pending += len(piece)
            if stats is not None and pending > stats.peak_buffer_bytes:
                stats.peak_buffer_bytes = pending
            if governor is not None:
                want = -(-pending // STREAM_CELL_BYTES)  # ceil division
                if want > charged_cells:
                    # Charge before bumping the tally: a rejected charge
                    # is rolled back by the governor, so the finally
                    # below must not release cells we never held.
                    governor.charge_cells(want - charged_cells)
                    charged_cells = want
            if pending >= chunk_bytes:
                yield flush()
        if pieces:
            yield flush()
    finally:
        if governor is not None and charged_cells:
            governor.release_cells(charged_cells)
            charged_cells = 0
        close = getattr(row_iter, "close", None)
        if close is not None:
            close()


def _counted(rows: Iterator[Row], stats: PublishStats) -> Iterator[Row]:
    for row in rows:
        stats.rows_in += 1
        yield row


class XmlChunkStream:
    """One in-flight published document: ``Iterator[bytes]`` + lifecycle.

    Iterate (or call :meth:`read_all`) to drain the document; call
    :meth:`close` — or use it as a context manager — to abandon it early.
    Either way the underlying row source is torn down exactly once and
    every registered close hook fires exactly once, with the terminal
    error (or ``None`` on a clean finish/abandon) as its argument. After
    close, further ``next()`` raises ``StopIteration``.
    """

    def __init__(
        self,
        rows: Iterable[Row],
        spec: TaggerSpec,
        *,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        encoding: str = "utf-8",
        governor: Governor | None = None,
        sql: str | None = None,
    ):
        self.spec = spec
        self.sql = sql
        self.governor = governor
        self.encoding = encoding
        self.stats = PublishStats()
        self.exhausted = False
        self._closed = False
        self._error: BaseException | None = None
        self._close_hooks: list[
            Callable[["XmlChunkStream", BaseException | None], None]
        ] = []
        self._gen = stream_document(
            rows,
            spec,
            chunk_bytes=chunk_bytes,
            encoding=encoding,
            governor=governor,
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------

    def __iter__(self) -> "XmlChunkStream":
        return self

    def __next__(self) -> bytes:
        if self._closed:
            raise StopIteration
        try:
            return next(self._gen)
        except StopIteration:
            self.exhausted = True
            self._finish(None)
            raise
        except BaseException as error:
            self._finish(error)
            raise

    def read_all(self) -> bytes:
        """Drain the rest of the document into one bytes object.

        Convenience for tests and small documents — it defeats the
        constant-memory property by definition.
        """
        return b"".join(self)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def error(self) -> BaseException | None:
        """The error that terminated the stream, if any."""
        return self._error

    def on_close(
        self,
        hook: Callable[["XmlChunkStream", BaseException | None], None],
    ) -> None:
        """Register a hook fired exactly once when the stream finishes.

        If the stream is already finished the hook fires immediately —
        registration can never be silently lost to a race with
        exhaustion.
        """
        if self._closed:
            hook(self, self._error)
        else:
            self._close_hooks.append(hook)

    def close(self) -> None:
        """Abandon the stream; idempotent, never raises on double close."""
        self._finish(None)

    def _finish(self, error: BaseException | None) -> None:
        if self._closed:
            return
        self._closed = True
        self._error = error
        try:
            # May raise ValueError if another thread is blocked inside
            # next() right now (generator already executing); the hooks
            # must still fire — the governor's cancel event is what stops
            # the racing consumer.
            self._gen.close()
        except ValueError:  # pragma: no cover - cross-thread race
            pass
        finally:
            hooks, self._close_hooks = self._close_hooks, []
            for hook in hooks:
                hook(self, error)

    def __enter__(self) -> "XmlChunkStream":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC backstop
        self._finish(None)
