"""XML publishing: views, XQuery subset, translation, constant-space
tagging."""

from repro.xmlpub.stream import (
    DEFAULT_CHUNK_BYTES,
    PublishStats,
    XmlChunkStream,
    stream_document,
)
from repro.xmlpub.tagger import (
    ConstantSpaceTagger,
    KeyItem,
    RowsBranch,
    ScalarBranch,
    TaggerSpec,
    escape_text,
    sanitize_parsed_text,
)
from repro.xmlpub.translate import (
    FORMULATIONS,
    TranslatedQuery,
    Translator,
    translate_xquery,
)
from repro.xmlpub.view import (
    XmlChildEdge,
    XmlField,
    XmlView,
    XmlViewNode,
    tpch_supplier_view,
)
from repro.xmlpub.xquery import (
    XqAggregate,
    XqArith,
    XqComparison,
    XqElement,
    XqFlwr,
    XqLiteral,
    XqPath,
    XqSome,
    parse_xquery,
)

__all__ = [
    "ConstantSpaceTagger",
    "DEFAULT_CHUNK_BYTES",
    "FORMULATIONS",
    "KeyItem",
    "PublishStats",
    "XmlChunkStream",
    "RowsBranch",
    "ScalarBranch",
    "TaggerSpec",
    "TranslatedQuery",
    "Translator",
    "XmlChildEdge",
    "XmlField",
    "XmlView",
    "XmlViewNode",
    "XqAggregate",
    "XqArith",
    "XqComparison",
    "XqElement",
    "XqFlwr",
    "XqLiteral",
    "XqPath",
    "XqSome",
    "escape_text",
    "parse_xquery",
    "sanitize_parsed_text",
    "stream_document",
    "tpch_supplier_view",
    "translate_xquery",
]
