"""XQuery-over-XML-view -> SQL translation, both ways the paper compares.

For one FLWR query over an :class:`~repro.xmlpub.view.XmlView` this module
produces:

* ``outer_union_sql`` — the classical *sorted outer union* formulation
  (Section 2): one UNION ALL branch per return item, each branch a
  standalone SQL query over the base tables (re-deriving the element's rows
  from the view node queries, with correlated subqueries for in-group
  aggregates), ordered by the group key so a constant-space tagger can
  consume it. This is "sorting and tagging".

* ``gapply_sql`` — the Section 3.1 formulation: one outer query deriving
  the element's rows *once*, ``group by key : g``, and a per-group query
  that unions the return items computed over the group variable.

Both produce the identical row layout ``[key, branch, payload...]`` and the
same :class:`~repro.xmlpub.tagger.TaggerSpec`, so the published documents
are byte-identical (up to group order, which the unordered XML model of
Section 2 leaves unspecified; the GApply output is clustered, the outer
union additionally sorted).

Supported query class (everything in the paper):

* ``for $s in /doc(...)/<root>/<top>`` over the view's top node;
* optional ``where some $p in $s/<child> satisfies <cmp>`` or
  ``where agg($s/<child>/<col>) <cmp> <literal>`` (group selection);
* ``return <tag> items </tag>`` with items among: ``$s/<key field>``,
  parent fields, nested FLWR over ``$s/<child>`` (optionally with a path
  predicate), aggregates over child columns (optionally with a path
  predicate whose right side may itself be an aggregate over the group);
* ``return $s`` — the whole subtree (group selection queries).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import XmlPublishError
from repro.sql.binder import Binder
from repro.sql.parser import parse
from repro.storage.catalog import Catalog
from repro.xmlpub.tagger import (
    Branch,
    KeyItem,
    RowsBranch,
    ScalarBranch,
    TaggerSpec,
)
from repro.xmlpub.view import XmlChildEdge, XmlView, XmlViewNode
from repro.xmlpub.xquery import (
    XqAggregate,
    XqArith,
    XqComparison,
    XqElement,
    XqFlwr,
    XqLiteral,
    XqNode,
    XqPath,
    XqSome,
    parse_xquery,
)


#: The two SQL formulations every translated query carries — the paper's
#: sorted outer union ("union") vs. the GApply rewrite ("gapply").
FORMULATIONS = ("union", "gapply")


@dataclass(frozen=True)
class TranslatedQuery:
    """The two SQL formulations plus the shared tagging specification."""

    gapply_sql: str
    outer_union_sql: str
    spec: TaggerSpec
    payload_width: int

    def sql_for(self, formulation: str) -> str:
        """The SQL text for one of :data:`FORMULATIONS`."""
        if formulation == "gapply":
            return self.gapply_sql
        if formulation == "union":
            return self.outer_union_sql
        raise XmlPublishError(
            f"unknown formulation {formulation!r}; use one of {FORMULATIONS}"
        )


def _sql_literal(value: object) -> str:
    if value is None:
        return "null"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


class Translator:
    """Translate FLWR queries over one view against one catalog."""

    def __init__(self, view: XmlView, catalog: Catalog):
        self.view = view
        self.catalog = catalog
        self._binder = Binder(catalog)

    # ------------------------------------------------------------------
    # View-node plumbing
    # ------------------------------------------------------------------

    def node_columns(self, node: XmlViewNode) -> list[str]:
        """Output column names of a view node's SQL query."""
        plan = self._binder.bind(parse(node.query))
        return [column.name for column in plan.schema]

    def _resolve_child(self, path: XqPath, flwr: XqFlwr) -> XmlChildEdge:
        if path.variable != flwr.variable:
            raise XmlPublishError(
                f"path ${path.variable} does not reference the bound "
                f"variable ${flwr.variable}"
            )
        if len(path.steps) < 1:
            raise XmlPublishError(f"path {path} does not name a child")
        return self.view.node.child(path.steps[0])

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def translate(self, query: str | XqFlwr) -> TranslatedQuery:
        flwr = parse_xquery(query) if isinstance(query, str) else query
        steps = flwr.document_steps
        expected = (self.view.root_tag, self.view.node.tag)
        if steps != expected:
            raise XmlPublishError(
                f"query path {steps} does not match the view "
                f"({'/'.join(expected)})"
            )
        if isinstance(flwr.body, XqPath) and not flwr.body.steps:
            return self._translate_whole_subtree(flwr)
        if not isinstance(flwr.body, XqElement):
            raise XmlPublishError(
                "return must be an element constructor or the bound variable"
            )
        return self._translate_constructor(flwr)

    # ------------------------------------------------------------------
    # Item analysis
    # ------------------------------------------------------------------

    def _analyze_items(
        self, flwr: XqFlwr
    ) -> tuple[list[KeyItem], list[dict]]:
        """Split return items into key items and branch descriptors."""
        top = self.view.node
        element = flwr.body
        assert isinstance(element, XqElement)
        key_items: list[KeyItem] = []
        branch_specs: list[dict] = []
        for item in element.items:
            if isinstance(item, XqPath):
                if item.variable != flwr.variable or len(item.steps) != 1:
                    raise XmlPublishError(f"unsupported path item {item}")
                column = item.steps[0]
                if column in top.key:
                    key_items.append(
                        KeyItem(column, top.key.index(column))
                    )
                elif top.has_field(column):
                    branch_specs.append(
                        {"kind": "parent_field", "column": column}
                    )
                else:
                    raise XmlPublishError(
                        f"{item} names neither a key nor a field of "
                        f"<{top.tag}>"
                    )
            elif isinstance(item, XqAggregate):
                branch_specs.append(
                    {"kind": "aggregate", "agg": item, "tag": None}
                )
            elif isinstance(item, XqElement):
                inner = self._classify_wrapped(item, flwr)
                branch_specs.append(inner)
            else:
                raise XmlPublishError(
                    f"unsupported return item {type(item).__name__}"
                )
        return key_items, branch_specs

    def _classify_wrapped(self, element: XqElement, flwr: XqFlwr) -> dict:
        """A wrapped item: <tag> nested-for </tag> or <tag> agg </tag>."""
        if len(element.items) != 1:
            raise XmlPublishError(
                f"wrapper <{element.tag}> must contain exactly one item"
            )
        inner = element.items[0]
        if isinstance(inner, XqAggregate):
            return {"kind": "aggregate", "agg": inner, "tag": element.tag}
        if isinstance(inner, XqFlwr):
            return {
                "kind": "nested",
                "flwr": inner,
                "container": element.tag,
            }
        raise XmlPublishError(
            f"wrapper <{element.tag}> must contain an aggregate or a "
            "nested for"
        )

    # ------------------------------------------------------------------
    # Expression rendering
    # ------------------------------------------------------------------

    def _render_value(
        self,
        node: XqNode,
        child: XmlViewNode,
        source: str,
        group_mode: bool,
        key_columns: tuple[str, str],
        alias: str,
    ) -> str:
        """Render a predicate-side value as SQL text.

        ``source`` is the relation the row context ranges over (the group
        variable in gapply mode, a derived-table alias otherwise);
        ``group_mode`` selects how inner aggregates are phrased:
        a subquery over the group variable, or a correlated subquery over a
        fresh derived copy of the child query (the paper's Section 2
        formulation). ``key_columns`` is (child key column, outer reference)
        for the correlation; ``alias`` generates fresh derived aliases.
        """
        if isinstance(node, XqLiteral):
            return _sql_literal(node.value)
        if isinstance(node, XqPath):
            step = node.steps[-1] if node.steps else None
            if step is None:
                raise XmlPublishError(f"cannot render bare {node} as value")
            return step
        if isinstance(node, XqArith):
            left = self._render_value(
                node.left, child, source, group_mode, key_columns, alias + "l"
            )
            right = self._render_value(
                node.right, child, source, group_mode, key_columns, alias + "r"
            )
            return f"({left} {node.op} {right})"
        if isinstance(node, XqAggregate):
            column = node.path.steps[-1]
            if group_mode:
                return f"(select {node.function}({column}) from {source})"
            child_columns = ", ".join(self.node_columns(child))
            child_key, outer_reference = key_columns
            return (
                f"(select {node.function}({column}) from ({child.query}) "
                f"as {alias}({child_columns}) "
                f"where {alias}.{child_key} = {outer_reference})"
            )
        raise XmlPublishError(
            f"unsupported value node {type(node).__name__}"
        )

    def _render_predicate(
        self,
        predicate: XqComparison,
        child: XmlViewNode,
        source: str,
        group_mode: bool,
        key_columns: tuple[str, str],
        alias: str,
    ) -> str:
        op = "<>" if predicate.op == "!=" else predicate.op
        left = self._render_value(
            predicate.left, child, source, group_mode, key_columns, alias + "a"
        )
        right = self._render_value(
            predicate.right, child, source, group_mode, key_columns, alias + "b"
        )
        return f"{left} {op} {right}"

    # ------------------------------------------------------------------
    # Constructor queries (Q1/Q2/Q3 shapes)
    # ------------------------------------------------------------------

    def _translate_constructor(self, flwr: XqFlwr) -> TranslatedQuery:
        top = self.view.node
        key_items, branch_specs = self._analyze_items(flwr)
        if flwr.where is not None:
            raise XmlPublishError(
                "WHERE with a constructor return is not supported; "
                "group-selection queries use `return $s`"
            )
        if len(top.children) != 1:
            raise XmlPublishError(
                "constructor translation expects a single-child view node"
            )
        edge = top.children[0]
        child = edge.node
        child_key = edge.child_columns[0]
        if len(edge.child_columns) != 1:
            raise XmlPublishError("composite correlation keys not supported")

        # --- payload layout ------------------------------------------------
        # A true *outer union*: every branch owns a disjoint slice of the
        # payload columns (nulls elsewhere), so positionally-unioned columns
        # always carry one branch's type — exactly the encoding of [17] and
        # the paper's Section 2 example queries.
        branch_widths: list[int] = []
        for spec in branch_specs:
            if spec["kind"] in ("parent_field", "aggregate"):
                branch_widths.append(1)
            else:
                fields = self._nested_fields(spec["flwr"], child)
                spec["fields"] = fields
                branch_widths.append(len(fields))
        offsets: list[int] = []
        payload_width = 0
        for width in branch_widths:
            offsets.append(payload_width)
            payload_width += width

        branches: list[Branch] = []
        gapply_branches: list[str] = []
        union_branches: list[str] = []
        child_columns = ", ".join(self.node_columns(child))

        def pad(values: list[str], offset: int) -> str:
            padded = (
                ["null"] * offset
                + values
                + ["null"] * (payload_width - offset - len(values))
            )
            return ", ".join(padded)

        for branch_id, spec in enumerate(branch_specs):
            alias = f"b{branch_id}"
            offset = offsets[branch_id]
            if spec["kind"] == "parent_field":
                column = spec["column"]
                branches.append(ScalarBranch(branch_id, column, offset))
                # one row per group carrying the (group-constant) field
                gapply_branches.append(
                    f"select distinct {branch_id} as branch, "
                    f"{pad([column], offset)} from g"
                )
                parent_columns = ", ".join(self.node_columns(top))
                union_branches.append(
                    f"select {top.key[0]} as gkey, {branch_id} as branch, "
                    f"{pad([column], offset)} from ({top.query}) as "
                    f"{alias}({parent_columns})"
                )
            elif spec["kind"] == "aggregate":
                aggregate: XqAggregate = spec["agg"]
                column = aggregate.path.steps[-1]
                function = aggregate.function
                tag = spec["tag"] or f"{function}_{column}"
                branches.append(ScalarBranch(branch_id, tag, offset))
                predicate_sql_g = ""
                predicate_sql_u = ""
                if aggregate.predicate is not None:
                    predicate_sql_g = " where " + self._render_predicate(
                        aggregate.predicate, child, "g", True,
                        (child_key, ""), alias,
                    )
                    predicate_sql_u = " and " + self._render_predicate(
                        aggregate.predicate, child, alias, False,
                        (child_key, f"{alias}.{child_key}"), alias + "s",
                    )
                if function == "count" and column == child.tag:
                    agg_expr = "count(*)"  # count($s/part): count elements
                else:
                    agg_expr = f"{function}({column})"
                gapply_branches.append(
                    f"select {branch_id} as branch, {pad([agg_expr], offset)} "
                    f"from g{predicate_sql_g}"
                )
                union_branches.append(
                    f"select {alias}.{child_key} as gkey, "
                    f"{branch_id} as branch, {pad([agg_expr], offset)} "
                    f"from ({child.query}) as {alias}({child_columns}) "
                    f"where 1 = 1{predicate_sql_u} "
                    f"group by {alias}.{child_key}"
                )
            else:  # nested
                nested: XqFlwr = spec["flwr"]
                fields = spec["fields"]
                branches.append(
                    RowsBranch(
                        branch_id,
                        spec["container"],
                        self._nested_row_tag(nested),
                        tuple(
                            (tag, offset + index)
                            for index, (tag, _) in enumerate(fields)
                        ),
                    )
                )
                columns = [column for _, column in fields]
                path = nested.path
                assert isinstance(path, XqPath)
                predicate_sql_g = ""
                predicate_sql_u = ""
                if path.predicate is not None:
                    predicate_sql_g = " where " + self._render_predicate(
                        path.predicate, child, "g", True,
                        (child_key, ""), alias,
                    )
                    predicate_sql_u = " where " + self._render_predicate(
                        path.predicate, child, alias, False,
                        (child_key, f"{alias}.{child_key}"), alias + "s",
                    )
                gapply_branches.append(
                    f"select {branch_id} as branch, {pad(columns, offset)} "
                    f"from g{predicate_sql_g}"
                )
                union_branches.append(
                    f"select {alias}.{child_key} as gkey, "
                    f"{branch_id} as branch, {pad(columns, offset)} "
                    f"from ({child.query}) as {alias}({child_columns})"
                    f"{predicate_sql_u}"
                )

        group_tag = flwr.body.tag if isinstance(flwr.body, XqElement) else top.tag
        spec = TaggerSpec(
            root_tag=self.view.root_tag + "_result",
            group_tag=group_tag,
            key_count=1,
            key_items=tuple(key_items),
            branches=tuple(branches),
        )

        per_group = " union all ".join(gapply_branches)
        has_parent_fields = any(
            spec_["kind"] == "parent_field" for spec_ in branch_specs
        )
        if has_parent_fields:
            # Parent fields live in the top node's query; widen the outer
            # query with the parent join so the group carries them.
            parent_columns = ", ".join(self.node_columns(top))
            parent_key = edge.parent_columns[0]
            gapply_sql = (
                f"select gapply({per_group}) "
                f"from ({top.query}) as psrc({parent_columns}), "
                f"({child.query}) as gsrc({child_columns}) "
                f"where psrc.{parent_key} = gsrc.{child_key} "
                f"group by {parent_key} : g"
            )
        else:
            gapply_sql = (
                f"select gapply({per_group}) "
                f"from ({child.query}) as gsrc({child_columns}) "
                f"group by {child_key} : g"
            )
        outer_union_sql = (
            " union all ".join(union_branches)
            + " order by gkey, branch"
        )
        return TranslatedQuery(
            gapply_sql, outer_union_sql, spec, payload_width
        )

    def _nested_fields(
        self, nested: XqFlwr, child: XmlViewNode
    ) -> list[tuple[str, str]]:
        """(xml tag, source column) pairs of a nested-for return element."""
        body = nested.body
        if not isinstance(body, XqElement):
            raise XmlPublishError("nested for must return an element")
        fields: list[tuple[str, str]] = []
        for item in body.items:
            if not (
                isinstance(item, XqPath)
                and item.variable == nested.variable
                and len(item.steps) == 1
            ):
                raise XmlPublishError(
                    "nested return supports only $var/column items"
                )
            column = item.steps[0]
            field = child.field(column)
            fields.append((field.tag, field.column))
        if not fields:
            raise XmlPublishError("nested return element is empty")
        return fields

    @staticmethod
    def _nested_row_tag(nested: XqFlwr) -> str:
        body = nested.body
        assert isinstance(body, XqElement)
        return body.tag

    # ------------------------------------------------------------------
    # Whole-subtree (group selection) queries
    # ------------------------------------------------------------------

    def _translate_whole_subtree(self, flwr: XqFlwr) -> TranslatedQuery:
        top = self.view.node
        if len(top.children) != 1:
            raise XmlPublishError(
                "whole-subtree translation expects a single-child view node"
            )
        edge = top.children[0]
        child = edge.node
        child_key = edge.child_columns[0]
        child_column_names = self.node_columns(child)
        child_columns = ", ".join(child_column_names)
        payload_columns = [
            column for column in child_column_names if column != child_key
        ]

        where = flwr.where
        if where is None:
            raise XmlPublishError(
                "whole-subtree return without WHERE is just the view; add a "
                "group-selection condition"
            )

        # ---- the test condition, in both phrasings ----------------------
        if isinstance(where, XqSome):
            condition_g = self._render_predicate(
                where.satisfies, child, "g", True, (child_key, ""), "w"
            )
            test_g = f"exists (select {child_key} from g where {condition_g})"
            condition_u = self._render_predicate(
                where.satisfies, child, "w0", False,
                (child_key, f"w0.{child_key}"), "ws",
            )
            test_u = (
                f"exists (select {child_key} from ({child.query}) as "
                f"w0({child_columns}) where w0.{child_key} = "
                f"b0.{child_key} and {condition_u})"
            )
        elif isinstance(where, XqComparison):
            if not isinstance(where.left, XqAggregate):
                raise XmlPublishError(
                    "group selection WHERE must be `some..satisfies` or an "
                    "aggregate comparison"
                )
            aggregate = where.left
            column = aggregate.path.steps[-1]
            right = self._render_value(
                where.right, child, "g", True, (child_key, ""), "w"
            )
            op = "<>" if where.op == "!=" else where.op
            test_g = (
                f"exists (select 1 from g having "
                f"{aggregate.function}({column}) {op} {right})"
            )
            test_u = (
                f"exists (select 1 from ({child.query}) as "
                f"w0({child_columns}) where w0.{child_key} = "
                f"b0.{child_key} having "
                f"{aggregate.function}(w0.{column}) {op} {right})"
            )
        else:
            raise XmlPublishError(
                f"unsupported WHERE {type(where).__name__}"
            )

        fields = tuple(
            (child.field(column).tag if child.has_field(column) else column, index)
            for index, column in enumerate(payload_columns)
        )
        spec = TaggerSpec(
            root_tag=self.view.root_tag + "_result",
            group_tag=top.tag,
            key_count=1,
            key_items=(KeyItem(top.key[0], 0),),
            branches=(RowsBranch(0, None, child.tag, fields),),
        )
        payload = ", ".join(payload_columns)
        gapply_sql = (
            f"select gapply(select 0 as branch, {payload} from g "
            f"where {test_g}) "
            f"from ({child.query}) as gsrc({child_columns}) "
            f"group by {child_key} : g"
        )
        outer_union_sql = (
            f"select b0.{child_key} as gkey, 0 as branch, {payload} "
            f"from ({child.query}) as b0({child_columns}) "
            f"where {test_u} "
            f"order by gkey"
        )
        return TranslatedQuery(gapply_sql, outer_union_sql, spec, len(fields))


def translate_xquery(
    query: str, view: XmlView, catalog: Catalog
) -> TranslatedQuery:
    """Convenience wrapper: parse + translate one FLWR query."""
    return Translator(view, catalog).translate(query)
