"""An XQuery FLWR subset: AST + parser.

Covers the query class the paper works with (Sections 2 and 4.2): a FOR
clause binding a variable to the elements of an XML-view path, an optional
WHERE with existential (``some ... satisfies``) or aggregate conditions over
the element's subtree, and a RETURN constructing an element from

* parent fields (``$s/s_suppkey``),
* nested FLWR expressions over child elements (``for $p in $s/part ...``),
* aggregates over child paths with optional predicates
  (``avg($s/part/p_retailprice)``,
  ``count($s/part[p_retailprice >= avg($s/part/p_retailprice)])``), and
* the whole bound subtree (``$s``) for group-selection queries.

Example (the paper's Q1)::

    for $s in /doc(tpch.xml)/suppliers/supplier
    return <ret>
        $s/s_suppkey,
        <parts>
            for $p in $s/part
            return <part> $p/p_name, $p/p_retailprice </part>
        </parts>,
        avg($s/part/p_retailprice)
    </ret>
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.errors import XmlPublishError

AGGREGATES = ("count", "sum", "avg", "min", "max")
COMPARISONS = (">=", "<=", "!=", "=", "<", ">")


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------


class XqNode:
    """Marker base class."""


@dataclass(frozen=True)
class XqPath(XqNode):
    """``$var/step1[predicate]/step2``; bare ``$var`` has no steps.

    At most one step may carry a predicate (XPath-style filter), recorded
    with the index of the step it applies to.
    """

    variable: str
    steps: tuple[str, ...] = ()
    predicate: "XqComparison | None" = None
    predicate_step: int = -1

    def __str__(self) -> str:
        return "$" + "/".join((self.variable, *self.steps))


@dataclass(frozen=True)
class XqLiteral(XqNode):
    value: Any


@dataclass(frozen=True)
class XqAggregate(XqNode):
    """``agg(path)``, e.g. ``avg($s/part/p_retailprice)`` or
    ``count($s/part[p_retailprice >= avg($s/part/p_retailprice)])``.

    A predicate on the path travels inside :class:`XqPath`.
    """

    function: str
    path: XqPath

    def __post_init__(self) -> None:
        if self.function not in AGGREGATES:
            raise XmlPublishError(f"unknown aggregate {self.function!r}")

    @property
    def predicate(self) -> "XqComparison | None":
        return self.path.predicate


@dataclass(frozen=True)
class XqArith(XqNode):
    """Binary arithmetic inside predicates (e.g. ``0.9 * max(...)``)."""

    op: str
    left: XqNode
    right: XqNode


@dataclass(frozen=True)
class XqComparison(XqNode):
    op: str
    left: XqNode
    right: XqNode

    def __post_init__(self) -> None:
        if self.op not in COMPARISONS:
            raise XmlPublishError(f"unknown comparison {self.op!r}")


@dataclass(frozen=True)
class XqSome(XqNode):
    """``some $p in $s/child satisfies <comparison>``."""

    variable: str
    path: XqPath
    satisfies: XqComparison


@dataclass(frozen=True)
class XqElement(XqNode):
    """``<tag> item, item, ... </tag>``."""

    tag: str
    items: tuple[XqNode, ...] = ()


@dataclass(frozen=True)
class XqFlwr(XqNode):
    """``for $v in <path> [where <cond>] return <body>``."""

    variable: str
    path: XqPath | str  # str for the document-rooted outer path
    where: XqNode | None
    body: XqNode

    @property
    def document_steps(self) -> tuple[str, ...]:
        """Steps of a document-rooted path like
        ``/doc(tpch.xml)/suppliers/supplier``."""
        if not isinstance(self.path, str):
            raise XmlPublishError("inner FLWR paths are variable-rooted")
        steps = [s for s in self.path.split("/") if s]
        if steps and steps[0].startswith("doc("):
            steps = steps[1:]
        return tuple(steps)


# ----------------------------------------------------------------------
# Lexer
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<close><\s*/\s*(?P<close_tag>[A-Za-z_][\w.-]*)\s*>)
  | (?P<open><(?P<open_tag>[A-Za-z_][\w.-]*)>)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<string>"[^"]*"|'[^']*')
  | (?P<var>\$[A-Za-z_]\w*)
  | (?P<word>[A-Za-z_][\w.-]*)
  | (?P<op>>=|<=|!=|=|<|>|\[|\]|\(|\)|,|/|\*|\+|-)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    value: str


def _lex(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise XmlPublishError(
                f"cannot tokenize XQuery at: {text[position:position + 20]!r}"
            )
        position = match.end()
        kind = match.lastgroup
        if kind == "ws":
            continue
        if kind == "close":
            tokens.append(_Token("close", match.group("close_tag")))
        elif kind == "open":
            tokens.append(_Token("open", match.group("open_tag")))
        elif kind == "string":
            tokens.append(_Token("string", match.group(0)[1:-1]))
        else:
            tokens.append(_Token(kind, match.group(0)))
    tokens.append(_Token("eof", ""))
    return tokens


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


class XQueryParser:
    """Recursive-descent parser for the FLWR subset."""

    def __init__(self, text: str):
        self.tokens = _lex(text)
        self.position = 0

    @property
    def current(self) -> _Token:
        return self.tokens[self.position]

    def advance(self) -> _Token:
        token = self.current
        if token.kind != "eof":
            self.position += 1
        return token

    def _expect_word(self, word: str) -> None:
        token = self.current
        if token.kind != "word" or token.value.lower() != word:
            raise XmlPublishError(
                f"expected {word!r}, found {token.value!r}"
            )
        self.advance()

    def _accept_word(self, word: str) -> bool:
        token = self.current
        if token.kind == "word" and token.value.lower() == word:
            self.advance()
            return True
        return False

    def parse(self) -> XqFlwr:
        flwr = self._flwr(top_level=True)
        if self.current.kind != "eof":
            raise XmlPublishError(
                f"trailing XQuery input at {self.current.value!r}"
            )
        return flwr

    # -- FLWR ----------------------------------------------------------

    def _flwr(self, top_level: bool) -> XqFlwr:
        self._expect_word("for")
        if self.current.kind != "var":
            raise XmlPublishError("expected variable after 'for'")
        variable = self.advance().value[1:]
        self._expect_word("in")
        path: XqPath | str
        if top_level:
            path = self._document_path()
        else:
            path = self._variable_path()
        where = None
        if self._accept_word("where"):
            where = self._condition()
        self._expect_word("return")
        body = self._return_body()
        return XqFlwr(variable, path, where, body)

    def _document_path(self) -> str:
        """A document-rooted path: /doc(file)/a/b (captured as raw text)."""
        parts: list[str] = []
        while True:
            token = self.current
            if token.kind == "op" and token.value in ("/", "(", ")"):
                parts.append(self.advance().value)
                continue
            if token.kind == "word":
                if token.value.lower() in ("where", "return"):
                    break
                parts.append(self.advance().value)
                continue
            break
        if not parts:
            raise XmlPublishError("expected document path after 'in'")
        return "".join(parts)

    def _variable_path(self) -> XqPath:
        token = self.current
        if token.kind != "var":
            raise XmlPublishError(
                f"expected $variable path, found {token.value!r}"
            )
        variable = self.advance().value[1:]
        steps: list[str] = []
        predicate: XqComparison | None = None
        predicate_step = -1
        while self.current.kind == "op" and self.current.value == "/":
            self.advance()
            step = self.current
            if step.kind != "word":
                raise XmlPublishError("expected path step after '/'")
            steps.append(self.advance().value)
            if self.current.kind == "op" and self.current.value == "[":
                if predicate is not None:
                    raise XmlPublishError(
                        "at most one path predicate is supported"
                    )
                self.advance()
                condition = self._comparison()
                if not isinstance(condition, XqComparison):
                    raise XmlPublishError(
                        "path predicate must be a comparison"
                    )
                predicate = condition
                predicate_step = len(steps) - 1
                self._expect_op("]")
        return XqPath(variable, tuple(steps), predicate, predicate_step)

    # -- WHERE conditions -----------------------------------------------

    def _condition(self) -> XqNode:
        if self._accept_word("some"):
            if self.current.kind != "var":
                raise XmlPublishError("expected variable after 'some'")
            variable = self.advance().value[1:]
            self._expect_word("in")
            path = self._variable_path()
            self._expect_word("satisfies")
            satisfies = self._comparison()
            if not isinstance(satisfies, XqComparison):
                raise XmlPublishError("'satisfies' requires a comparison")
            return XqSome(variable, path, satisfies)
        return self._comparison()

    def _comparison(self) -> XqNode:
        left = self._arith()
        token = self.current
        if token.kind == "op" and token.value in COMPARISONS:
            op = self.advance().value
            right = self._arith()
            return XqComparison(op, left, right)
        return left

    def _arith(self) -> XqNode:
        left = self._value()
        while self.current.kind == "op" and self.current.value in ("*", "+", "-"):
            op = self.advance().value
            right = self._value()
            left = XqArith(op, left, right)
        return left

    def _value(self) -> XqNode:
        token = self.current
        if token.kind == "number":
            self.advance()
            text = token.value
            return XqLiteral(float(text) if "." in text else int(text))
        if token.kind == "string":
            self.advance()
            return XqLiteral(token.value)
        if token.kind == "var":
            return self._variable_path()
        if token.kind == "word":
            word = token.value.lower()
            if word in AGGREGATES:
                return self._aggregate()
            # bare column name inside a [...] predicate
            self.advance()
            return XqPath("", (token.value,))
        if token.kind == "op" and token.value == "(":
            self.advance()
            inner = self._comparison()
            self._expect_op(")")
            return inner
        raise XmlPublishError(f"expected value, found {token.value!r}")

    def _expect_op(self, op: str) -> None:
        token = self.current
        if token.kind != "op" or token.value != op:
            raise XmlPublishError(f"expected {op!r}, found {token.value!r}")
        self.advance()

    def _aggregate(self) -> XqAggregate:
        function = self.advance().value.lower()
        self._expect_op("(")
        path = self._variable_path()
        self._expect_op(")")
        return XqAggregate(function, path)

    # -- RETURN bodies ---------------------------------------------------

    def _return_body(self) -> XqNode:
        token = self.current
        if token.kind == "open":
            return self._element()
        if token.kind == "var":
            return self._variable_path()
        if token.kind == "word" and token.value.lower() in AGGREGATES:
            return self._aggregate()
        raise XmlPublishError(
            f"expected element constructor, path or aggregate in return, "
            f"found {token.value!r}"
        )

    def _element(self) -> XqElement:
        tag = self.advance().value  # consumes the open token
        items: list[XqNode] = []
        while True:
            token = self.current
            if token.kind == "close":
                if token.value != tag:
                    raise XmlPublishError(
                        f"mismatched close tag: <{tag}> closed by "
                        f"</{token.value}>"
                    )
                self.advance()
                return XqElement(tag, tuple(items))
            if token.kind == "eof":
                raise XmlPublishError(f"unclosed element <{tag}>")
            if token.kind == "op" and token.value == ",":
                self.advance()
                continue
            items.append(self._element_item())

    def _element_item(self) -> XqNode:
        token = self.current
        if token.kind == "open":
            return self._element()
        if token.kind == "var":
            return self._variable_path()
        if token.kind == "word":
            word = token.value.lower()
            if word in AGGREGATES:
                return self._aggregate()
            if word == "for":
                return self._flwr(top_level=False)
        if token.kind in ("number", "string"):
            return self._value()
        raise XmlPublishError(
            f"unexpected token {token.value!r} inside element constructor"
        )


def parse_xquery(text: str) -> XqFlwr:
    """Parse an XQuery FLWR expression of the supported subset."""
    return XQueryParser(text).parse()
