"""XML view definitions over relational data.

The representation follows [1] (as used in the paper's Figure 1): a schema
tree whose nodes carry SQL queries, with child nodes *correlated* to their
parent through binding variables. Figure 1's view reads, in this API::

    supplier_view = XmlView(
        root_tag="suppliers",
        node=XmlViewNode(
            tag="supplier",
            query="select s_suppkey, s_name from supplier",
            key=("s_suppkey",),
            fields=(XmlField("s_suppkey"), XmlField("s_name")),
            children=(
                XmlChildEdge(
                    node=XmlViewNode(
                        tag="part",
                        query=(
                            "select ps_suppkey, p_partkey, p_name, "
                            "p_retailprice from partsupp, part "
                            "where ps_partkey = p_partkey"
                        ),
                        key=("p_partkey",),
                        fields=(XmlField("p_name"), XmlField("p_retailprice")),
                    ),
                    parent_columns=("s_suppkey",),
                    child_columns=("ps_suppkey",),
                ),
            ),
        ),
    )

The child's correlation to the parent binding variable ``$s`` is expressed
declaratively: ``child_columns`` of the child query equal
``parent_columns`` of the parent element's row.

The paper assumes an **unordered** XML model (Section 2); views therefore
carry no sibling-order annotations beyond key-based clustering.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import XmlPublishError


@dataclass(frozen=True)
class XmlField:
    """One mapped column: relational column -> XML sub-element (or
    attribute when ``attribute`` is True)."""

    column: str
    xml_name: str | None = None
    attribute: bool = False

    @property
    def tag(self) -> str:
        return self.xml_name or self.column


@dataclass(frozen=True)
class XmlChildEdge:
    """Nesting edge: how child elements attach under a parent element."""

    node: "XmlViewNode"
    parent_columns: tuple[str, ...]
    child_columns: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.parent_columns) != len(self.child_columns):
            raise XmlPublishError(
                "parent/child correlation column lists differ in length: "
                f"{self.parent_columns} vs {self.child_columns}"
            )


@dataclass(frozen=True)
class XmlViewNode:
    """One element type of the view: a tag, its SQL query, its identity
    key, its mapped fields, and its nested children."""

    tag: str
    query: str
    key: tuple[str, ...]
    fields: tuple[XmlField, ...] = ()
    children: tuple[XmlChildEdge, ...] = ()

    def __post_init__(self) -> None:
        if not self.key:
            raise XmlPublishError(f"view node {self.tag!r} needs a key")
        tags = [f.tag for f in self.fields] + [
            edge.node.tag for edge in self.children
        ]
        if len(set(tags)) != len(tags):
            raise XmlPublishError(
                f"duplicate field/child tags under {self.tag!r}: {tags}"
            )

    def child(self, tag: str) -> XmlChildEdge:
        for edge in self.children:
            if edge.node.tag == tag:
                return edge
        raise XmlPublishError(
            f"element {self.tag!r} has no child {tag!r}; children: "
            + ", ".join(e.node.tag for e in self.children)
        )

    def field(self, name: str) -> XmlField:
        for f in self.fields:
            if f.tag == name or f.column == name:
                return f
        raise XmlPublishError(
            f"element {self.tag!r} has no field {name!r}; fields: "
            + ", ".join(f.tag for f in self.fields)
        )

    def has_child(self, tag: str) -> bool:
        return any(edge.node.tag == tag for edge in self.children)

    def has_field(self, name: str) -> bool:
        return any(f.tag == name or f.column == name for f in self.fields)


@dataclass(frozen=True)
class XmlView:
    """A whole view: a document root tag wrapping one top element type."""

    root_tag: str
    node: XmlViewNode

    def resolve_path(self, steps: tuple[str, ...]) -> XmlViewNode:
        """Resolve a path of child tags starting below the top node."""
        current = self.node
        for step in steps:
            current = current.child(step).node
        return current


def tpch_supplier_view() -> XmlView:
    """The paper's Figure 1 view: suppliers with nested parts."""
    part_node = XmlViewNode(
        tag="part",
        query=(
            "select ps_suppkey, p_partkey, p_name, p_retailprice "
            "from partsupp, part where ps_partkey = p_partkey"
        ),
        key=("p_partkey",),
        fields=(
            XmlField("p_name"),
            XmlField("p_retailprice"),
        ),
    )
    supplier_node = XmlViewNode(
        tag="supplier",
        query="select s_suppkey, s_name from supplier",
        key=("s_suppkey",),
        fields=(
            XmlField("s_suppkey"),
            XmlField("s_name"),
        ),
        children=(
            XmlChildEdge(
                node=part_node,
                parent_columns=("s_suppkey",),
                child_columns=("ps_suppkey",),
            ),
        ),
    )
    return XmlView(root_tag="suppliers", node=supplier_node)
