"""The constant-space tagger.

Consumes the row stream of a *sorted outer union* (or of a GApply plan,
whose output is clustered per group by construction) and emits XML text.
Memory is O(document depth): the tagger keeps only the current group key,
the currently open container tag, and the output buffer the caller drains —
exactly the middleware component the paper assumes ("the result tuples must
be clustered by the element to which they correspond", Section 2).

Row layout (produced by :mod:`repro.xmlpub.translate`):

    [key column(s) ...] [branch id] [payload column(s) ...]

Rows must arrive clustered by key; within a group, clustered by branch in
ascending order (the translator assigns branch ids in return-item order and
adds the matching ORDER BY / union order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import XmlPublishError
from repro.storage.table import Row
from repro.storage.types import format_value, grouping_key


# Control characters in the XML 1.0 text domain. Carriage return is legal
# but parsers normalize a literal "\r" to "\n" (XML 1.0 §2.11), so it must
# leave as a character reference to survive a parse round-trip. The other
# C0 controls (everything below 0x20 except tab/LF/CR) are *illegal in the
# document entirely*, even as character references — the only lossless
# option is refusing the value, so we substitute U+FFFD REPLACEMENT
# CHARACTER, the convention XML-generating databases use for untypeable
# bytes. DEL (0x7F) and the C1 range are legal XML; they pass through.
_CONTROL_TRANSLATION = {
    0x0D: "&#13;",
    **{
        point: "�"
        for point in range(0x20)
        if point not in (0x09, 0x0A, 0x0D)
    },
}


def escape_text(value: object) -> str:
    """XML-escape a SQL value for text content.

    Handles every value :func:`~repro.storage.types.format_value` can
    render — NULL, booleans, dates, floats, strings — and produces text
    that any conforming XML parser accepts and round-trips: markup
    characters become entity references (``&amp;``/``&lt;``/``&gt;``, so
    ``]]>`` can never appear literally), ``\\r`` becomes ``&#13;`` to
    survive parser line-ending normalization, and XML-illegal control
    characters are replaced with U+FFFD (they cannot be represented in
    XML 1.0 at all).
    """
    text = format_value(value)
    text = (
        text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
    return text.translate(_CONTROL_TRANSLATION)


def sanitize_parsed_text(value: object) -> str:
    """What a conforming parser hands back for :func:`escape_text` output.

    The reference for conformance tests and the fuzzer's round-trip
    oracle: entity references decode to their characters, ``&#13;``
    decodes to ``\\r``, and XML-illegal control characters were replaced
    by U+FFFD before the document was written.
    """
    text = format_value(value)
    return text.translate(
        {
            point: "�"
            for point in range(0x20)
            if point not in (0x09, 0x0A, 0x0D)
        }
    )


@dataclass(frozen=True)
class KeyItem:
    """A group-level field rendered from a key column (``$s/s_suppkey``)."""

    tag: str
    key_index: int


@dataclass(frozen=True)
class ScalarBranch:
    """A branch carrying one value per group (an aggregate item)."""

    branch: int
    tag: str
    payload_index: int


@dataclass(frozen=True)
class RowsBranch:
    """A branch carrying repeated elements (a nested FLWR item).

    ``container_tag`` (optional) wraps all rows of the branch within the
    group (``<parts> <part>..</part> ... </parts>``).
    """

    branch: int
    container_tag: str | None
    row_tag: str
    fields: tuple[tuple[str, int], ...]  # (tag, payload index)


Branch = ScalarBranch | RowsBranch


@dataclass(frozen=True)
class TaggerSpec:
    """Everything the tagger needs to interpret the row stream."""

    root_tag: str
    group_tag: str
    key_count: int
    key_items: tuple[KeyItem, ...]
    branches: tuple[Branch, ...]

    def __post_init__(self) -> None:
        ids = [b.branch for b in self.branches]
        if len(set(ids)) != len(ids):
            raise XmlPublishError(f"duplicate branch ids: {ids}")

    @property
    def branch_column(self) -> int:
        return self.key_count

    def branch_by_id(self, branch_id: int) -> Branch:
        for branch in self.branches:
            if branch.branch == branch_id:
                return branch
        raise XmlPublishError(f"row carries unknown branch id {branch_id!r}")


class ConstantSpaceTagger:
    """Streaming tagger; O(depth) state, rows in, XML text chunks out."""

    def __init__(self, spec: TaggerSpec, indent: bool = False):
        self.spec = spec
        self.indent = indent

    # ------------------------------------------------------------------

    def tag(self, rows: Iterable[Row]) -> Iterator[str]:
        """Yield XML text chunks for a clustered row stream."""
        spec = self.spec
        yield f"<{spec.root_tag}>"
        current_key: tuple | None = None
        open_container: str | None = None

        def close_group() -> Iterator[str]:
            nonlocal open_container
            if open_container is not None:
                yield f"</{open_container}>"
                open_container = None
            yield f"</{spec.group_tag}>"

        for row in rows:
            key_values = row[: spec.key_count]
            key = grouping_key(key_values)
            if key != current_key:
                if current_key is not None:
                    yield from close_group()
                current_key = key
                yield f"<{spec.group_tag}>"
                for item in spec.key_items:
                    value = escape_text(key_values[item.key_index])
                    yield f"<{item.tag}>{value}</{item.tag}>"
            branch = spec.branch_by_id(row[spec.branch_column])
            if isinstance(branch, ScalarBranch):
                if open_container is not None:
                    yield f"</{open_container}>"
                    open_container = None
                value = escape_text(row[spec.branch_column + 1 + branch.payload_index])
                yield f"<{branch.tag}>{value}</{branch.tag}>"
                continue
            if branch.container_tag != open_container:
                if open_container is not None:
                    yield f"</{open_container}>"
                open_container = branch.container_tag
                if open_container is not None:
                    yield f"<{open_container}>"
            chunks = [f"<{branch.row_tag}>"]
            for tag, payload_index in branch.fields:
                value = escape_text(row[spec.branch_column + 1 + payload_index])
                chunks.append(f"<{tag}>{value}</{tag}>")
            chunks.append(f"</{branch.row_tag}>")
            yield "".join(chunks)
        if current_key is not None:
            yield from close_group()
        yield f"</{spec.root_tag}>"

    def tag_to_string(self, rows: Iterable[Row]) -> str:
        """Materialize the whole document (tests and small examples)."""
        if not self.indent:
            return "".join(self.tag(rows))
        return self._pretty("".join(self.tag(rows)))

    @staticmethod
    def _pretty(document: str) -> str:
        """Cheap re-indenting for human consumption in examples."""
        out: list[str] = []
        depth = 0
        index = 0
        while index < len(document):
            close = document.find(">", index)
            if close == -1:
                break
            chunk = document[index : close + 1]
            text_start = close + 1
            next_open = document.find("<", text_start)
            text = document[text_start : next_open if next_open != -1 else None]
            if chunk.startswith("</"):
                depth -= 1
                out.append("  " * depth + chunk)
            elif text.strip() or (
                next_open != -1 and document.startswith("</", next_open)
            ):
                # leaf element: render <tag>text</tag> inline
                end = document.find(">", next_open)
                out.append("  " * depth + chunk + text + document[next_open : end + 1])
                index = end + 1
                continue
            else:
                out.append("  " * depth + chunk)
                depth += 1
            index = close + 1
        return "\n".join(out)
