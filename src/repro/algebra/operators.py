"""Logical algebra operators, including GApply.

The operator set is exactly the paper's (Section 3): scan, select, project,
distinct, join, groupby/aggregate, orderby, union(all), apply, exists — plus
**GApply** itself and **GroupScan**, the leaf that reads the temporary
relation bound to GApply's relation-valued ``$group`` parameter.

Design notes:

* Nodes are frozen dataclasses; rewrites build new trees. Structural
  equality is therefore free, which the optimizer's rule tests rely on.
* Every node derives and caches its output :class:`Schema` at construction,
  so rewritten trees are schema-checked immediately and no catalog is needed
  after the initial TableScan leaves are built.
* ``GroupBy`` with an empty key list is the paper's scalar *aggregate*
  operator: it emits exactly one row even for empty input (``count(*) = 0``),
  which is the whole reason the emptyOnEmpty analysis exists.
* The per-group query of :class:`GApply` is an operator tree whose leaf is a
  :class:`GroupScan` naming the group variable. Correlated subqueries inside
  it are modelled with :class:`Apply`, whose inner tree references
  :class:`~repro.algebra.expressions.Parameter` values bound per outer row.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Iterator, Sequence

from repro.errors import PlanError, SchemaError
from repro.algebra.expressions import (
    AggregateCall,
    Expression,
)
from repro.storage.schema import Column, Schema
from repro.storage.table import Table
from repro.storage.types import common_type


@dataclass(frozen=True)
class LogicalOperator:
    """Base class for logical plan nodes."""

    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    def children(self) -> tuple["LogicalOperator", ...]:
        return ()

    def with_children(
        self, children: Sequence["LogicalOperator"]
    ) -> "LogicalOperator":
        """Rebuild this node over new children (same arity)."""
        if children:
            raise PlanError(f"{type(self).__name__} takes no children")
        return self

    # ------------------------------------------------------------------
    # Tree utilities
    # ------------------------------------------------------------------

    def walk(self) -> Iterator["LogicalOperator"]:
        """Pre-order traversal of this subtree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def contains(self, kind: type) -> bool:
        return any(isinstance(node, kind) for node in self.walk())

    def transform_up(
        self, fn: Callable[["LogicalOperator"], "LogicalOperator"]
    ) -> "LogicalOperator":
        """Bottom-up rewrite: children first, then ``fn`` on the rebuilt node."""
        children = self.children()
        if children:
            new_children = tuple(child.transform_up(fn) for child in children)
            if new_children != children:
                node = self.with_children(new_children)
            else:
                node = self
        else:
            node = self
        return fn(node)

    def pretty(self, indent: int = 0) -> str:
        """Indented multi-line rendering of the plan tree."""
        pad = "  " * indent
        lines = [pad + self.label()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def label(self) -> str:
        return type(self).__name__

    def node_count(self) -> int:
        return sum(1 for _ in self.walk())


@dataclass(frozen=True)
class TableScan(LogicalOperator):
    """Scan of a base table; ``alias`` re-qualifies the output columns."""

    table_name: str
    table_schema: Schema
    alias: str | None = None

    @staticmethod
    def of(table: Table, alias: str | None = None) -> "TableScan":
        return TableScan(table.name, table.schema, alias)

    @cached_property
    def schema(self) -> Schema:
        qualifier = self.alias or self.table_name
        return self.table_schema.qualify(qualifier)

    @property
    def binding_name(self) -> str:
        return self.alias or self.table_name

    def label(self) -> str:
        if self.alias and self.alias != self.table_name:
            return f"TableScan({self.table_name} AS {self.alias})"
        return f"TableScan({self.table_name})"


@dataclass(frozen=True)
class GroupScan(LogicalOperator):
    """Leaf of a per-group query: reads the relation bound to ``variable``.

    The schema is fixed when the GApply is built (it equals the GApply outer
    child's schema) and is *updated by optimizer rules* that shrink the
    outer query's projection.
    """

    variable: str
    group_schema: Schema

    @cached_property
    def schema(self) -> Schema:
        return self.group_schema

    def label(self) -> str:
        return f"GroupScan(${self.variable})"


@dataclass(frozen=True)
class Select(LogicalOperator):
    """Filter: keep rows where ``predicate`` evaluates to TRUE."""

    child: LogicalOperator
    predicate: Expression

    @cached_property
    def schema(self) -> Schema:
        # Validate the predicate's column references eagerly.
        for reference in self.predicate.columns():
            self.child.schema.index_of(reference)
        return self.child.schema

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOperator]) -> "Select":
        (child,) = children
        return Select(child, self.predicate)

    def label(self) -> str:
        return f"Select[{self.predicate}]"


@dataclass(frozen=True)
class Project(LogicalOperator):
    """Projection (no duplicate elimination — multiset semantics).

    ``items`` is a sequence of ``(expression, output_name)`` pairs.
    """

    child: LogicalOperator
    items: tuple[tuple[Expression, str], ...]

    @cached_property
    def schema(self) -> Schema:
        columns = []
        child_schema = self.child.schema
        for expression, name in self.items:
            for reference in expression.columns():
                child_schema.index_of(reference)
            columns.append(Column(name, expression.infer(child_schema)))
        return Schema(columns)

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOperator]) -> "Project":
        (child,) = children
        return Project(child, self.items)

    def output_names(self) -> list[str]:
        return [name for _, name in self.items]

    def label(self) -> str:
        inner = ", ".join(
            f"{expr} AS {name}" if str(expr) != name else name
            for expr, name in self.items
        )
        return f"Project[{inner}]"


def project_columns(
    child: LogicalOperator, references: Sequence[str]
) -> Project:
    """Projection that passes named columns through under their bare names."""
    from repro.algebra.expressions import ColumnRef

    items = []
    for reference in references:
        column = child.schema.column(reference)
        items.append((ColumnRef(reference), column.name))
    return Project(child, tuple(items))


@dataclass(frozen=True)
class Prune(LogicalOperator):
    """Column pruning that *preserves qualifiers*.

    A plain :class:`Project` names its outputs with bare names, which would
    break qualified references (``part.p_retailprice``) in a per-group query
    after the projection-before-GApply rule narrows the outer query. Prune
    keeps the original :class:`Column` objects, so every reference that
    resolved before still resolves afterwards.
    """

    child: LogicalOperator
    references: tuple[str, ...]

    @cached_property
    def schema(self) -> Schema:
        return self.child.schema.project(self.references)

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOperator]) -> "Prune":
        (child,) = children
        return Prune(child, self.references)

    def label(self) -> str:
        return f"Prune[{', '.join(self.references)}]"


class JoinKind:
    """Join kinds; the paper's rules only concern INNER (and CROSS) joins."""

    INNER = "inner"
    CROSS = "cross"
    LEFT_OUTER = "left_outer"
    SEMI = "semi"
    ANTI = "anti"


@dataclass(frozen=True)
class Join(LogicalOperator):
    """Annotated join node: kind + optional predicate over both inputs."""

    left: LogicalOperator
    right: LogicalOperator
    predicate: Expression | None = None
    kind: str = JoinKind.INNER

    @cached_property
    def schema(self) -> Schema:
        combined = self.left.schema.concat(self.right.schema)
        if self.predicate is not None:
            for reference in self.predicate.columns():
                combined.index_of(reference)
        if self.kind in (JoinKind.SEMI, JoinKind.ANTI):
            return self.left.schema
        return combined

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.left, self.right)

    def with_children(self, children: Sequence[LogicalOperator]) -> "Join":
        left, right = children
        return Join(left, right, self.predicate, self.kind)

    def equijoin_pairs(self) -> list[tuple[str, str]]:
        """Column pairs (left_ref, right_ref) from top-level equality
        conjuncts; used for hash-join planning and FK-join detection."""
        from repro.algebra.expressions import (
            ColumnRef,
            Comparison,
            ComparisonOp,
            conjuncts,
        )

        pairs: list[tuple[str, str]] = []
        left_schema = self.left.schema
        right_schema = self.right.schema
        for conjunct in conjuncts(self.predicate):
            if not (
                isinstance(conjunct, Comparison)
                and conjunct.op is ComparisonOp.EQ
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
            ):
                continue
            a, b = conjunct.left.name, conjunct.right.name
            if left_schema.has(a) and right_schema.has(b):
                pairs.append((a, b))
            elif left_schema.has(b) and right_schema.has(a):
                pairs.append((b, a))
        return pairs

    def label(self) -> str:
        predicate = "" if self.predicate is None else f"[{self.predicate}]"
        return f"Join:{self.kind}{predicate}"


@dataclass(frozen=True)
class GroupBy(LogicalOperator):
    """Grouping + aggregation.

    ``keys`` are column references; the output is one row per distinct key
    combination carrying the keys followed by the aggregate results. With no
    keys this is the scalar aggregate operator: exactly one output row, even
    on empty input.
    """

    child: LogicalOperator
    keys: tuple[str, ...]
    aggregates: tuple[AggregateCall, ...]

    @cached_property
    def schema(self) -> Schema:
        child_schema = self.child.schema
        columns = [child_schema.column(key) for key in self.keys]
        for aggregate in self.aggregates:
            for reference in aggregate.columns():
                child_schema.index_of(reference)
            columns.append(
                Column(aggregate.output_name(), aggregate.result_type(child_schema))
            )
        return Schema(columns)

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOperator]) -> "GroupBy":
        (child,) = children
        return GroupBy(child, self.keys, self.aggregates)

    @property
    def is_scalar_aggregate(self) -> bool:
        return not self.keys

    def label(self) -> str:
        keys = ", ".join(self.keys)
        aggs = ", ".join(str(a) for a in self.aggregates)
        if not keys:
            return f"Aggregate[{aggs}]"
        return f"GroupBy[{keys}][{aggs}]"


@dataclass(frozen=True)
class Distinct(LogicalOperator):
    """Duplicate elimination over whole rows (the paper's explicit distinct)."""

    child: LogicalOperator

    @cached_property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOperator]) -> "Distinct":
        (child,) = children
        return Distinct(child)


@dataclass(frozen=True)
class OrderBy(LogicalOperator):
    """Sort; ``items`` are (column reference, ascending) pairs.

    Under the paper's unordered XML model this mainly provides the
    *clustering* that the constant-space tagger needs.
    """

    child: LogicalOperator
    items: tuple[tuple[str, bool], ...]

    @cached_property
    def schema(self) -> Schema:
        for reference, _ in self.items:
            self.child.schema.index_of(reference)
        return self.child.schema

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOperator]) -> "OrderBy":
        (child,) = children
        return OrderBy(child, self.items)

    def label(self) -> str:
        inner = ", ".join(
            f"{ref}{'' if asc else ' DESC'}" for ref, asc in self.items
        )
        return f"OrderBy[{inner}]"


def _union_schema(children: Sequence[LogicalOperator]) -> Schema:
    if not children:
        raise PlanError("union requires at least one child")
    first = children[0].schema
    widths = {len(child.schema) for child in children}
    if len(widths) != 1:
        raise SchemaError(f"union children have differing widths: {widths}")
    columns = []
    for position, column in enumerate(first):
        dtype = column.dtype
        for child in children[1:]:
            dtype = common_type(dtype, child.schema[position].dtype)
        columns.append(Column(column.name, dtype))
    return Schema(columns)


@dataclass(frozen=True)
class UnionAll(LogicalOperator):
    """Bag union: concatenation of the children's outputs."""

    inputs: tuple[LogicalOperator, ...]

    @cached_property
    def schema(self) -> Schema:
        return _union_schema(self.inputs)

    def children(self) -> tuple[LogicalOperator, ...]:
        return self.inputs

    def with_children(self, children: Sequence[LogicalOperator]) -> "UnionAll":
        return UnionAll(tuple(children))


@dataclass(frozen=True)
class Union(LogicalOperator):
    """Set union: bag union followed by duplicate elimination."""

    inputs: tuple[LogicalOperator, ...]

    @cached_property
    def schema(self) -> Schema:
        return _union_schema(self.inputs)

    def children(self) -> tuple[LogicalOperator, ...]:
        return self.inputs

    def with_children(self, children: Sequence[LogicalOperator]) -> "Union":
        return Union(tuple(children))


@dataclass(frozen=True)
class Exists(LogicalOperator):
    """The paper's exists operator: {phi} if the input is non-empty, else phi.

    Appears only as the inner child of :class:`Apply` (the paper assumes the
    same). ``negated`` gives NOT EXISTS. The output schema is the null schema.
    """

    child: LogicalOperator
    negated: bool = False

    @cached_property
    def schema(self) -> Schema:
        return Schema(())

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOperator]) -> "Exists":
        (child,) = children
        return Exists(child, self.negated)

    def label(self) -> str:
        return "NotExists" if self.negated else "Exists"


@dataclass(frozen=True)
class Apply(LogicalOperator):
    """Correlated apply: R A E = union over r in R of {r} x E(r).

    ``bindings`` maps parameter names used inside ``inner`` to column
    references in ``outer``'s schema. For every outer row the executor binds
    the parameters and re-evaluates the inner plan.
    """

    outer: LogicalOperator
    inner: LogicalOperator
    bindings: tuple[tuple[str, str], ...] = ()

    @cached_property
    def schema(self) -> Schema:
        for _, reference in self.bindings:
            self.outer.schema.index_of(reference)
        inner_schema = self.inner.schema
        if len(inner_schema) == 0:
            return self.outer.schema
        # Inner columns are appended as-is; the binder gives subquery plans
        # fresh output names, so collisions indicate a malformed plan and
        # surface as a SchemaError here.
        return self.outer.schema.concat(inner_schema)

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.outer, self.inner)

    def with_children(self, children: Sequence[LogicalOperator]) -> "Apply":
        outer, inner = children
        return Apply(outer, inner, self.bindings)

    def label(self) -> str:
        if not self.bindings:
            return "Apply"
        inner = ", ".join(f"${p}:={c}" for p, c in self.bindings)
        return f"Apply[{inner}]"


def gapply_output_schema(
    outer_schema: Schema,
    grouping_columns: Sequence[str],
    pgq_schema: Schema,
    group_variable: str,
) -> Schema:
    """Output schema of GApply: grouping columns crossed with PGQ output.

    The grouping-key copies keep their original column identity unless that
    would collide with a per-group output column (which happens whenever the
    per-group query returns the whole group, e.g. group-selection queries);
    colliding keys are re-qualified by the group variable, so the key copy
    of ``ps_suppkey`` becomes ``tmpSupp.ps_suppkey``.
    """
    pgq_names = {column.qualified_name for column in pgq_schema}
    key_columns = []
    for reference in grouping_columns:
        column = outer_schema.column(reference)
        if column.qualified_name in pgq_names:
            column = column.with_qualifier(group_variable)
        key_columns.append(column)
    return Schema(tuple(key_columns) + pgq_schema.columns)


@dataclass(frozen=True)
class GApply(LogicalOperator):
    """The paper's GApply(GCols, PGQ) operator.

    * ``outer`` produces the tuple stream to partition.
    * ``grouping_columns`` are resolved against ``outer``'s schema.
    * ``per_group`` is the PGQ operator tree; its leaves are
      :class:`GroupScan` nodes for ``group_variable`` whose schema must match
      ``outer``'s output (rules that prune outer columns must rewrite the
      GroupScan schema in the same step — see the projection rule).

    Output: grouping columns crossed with the per-group query result, unioned
    (UNION ALL) over all groups.
    """

    outer: LogicalOperator
    grouping_columns: tuple[str, ...]
    per_group: LogicalOperator
    group_variable: str = "group"

    @cached_property
    def schema(self) -> Schema:
        outer_schema = self.outer.schema
        for node in self.per_group.walk():
            if isinstance(node, GroupScan):
                if node.variable != self.group_variable:
                    raise PlanError(
                        f"per-group query reads ${node.variable}, expected "
                        f"${self.group_variable}"
                    )
                if node.group_schema != outer_schema:
                    raise PlanError(
                        "GroupScan schema does not match GApply outer schema:\n"
                        f"  group: {node.group_schema!r}\n"
                        f"  outer: {outer_schema!r}"
                    )
        return gapply_output_schema(
            outer_schema,
            self.grouping_columns,
            self.per_group.schema,
            self.group_variable,
        )

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.outer, self.per_group)

    def with_children(self, children: Sequence[LogicalOperator]) -> "GApply":
        outer, per_group = children
        return GApply(outer, self.grouping_columns, per_group, self.group_variable)

    def label(self) -> str:
        keys = ", ".join(self.grouping_columns)
        return f"GApply[{keys}; ${self.group_variable}]"

    def group_scans(self) -> list[GroupScan]:
        return [
            node for node in self.per_group.walk() if isinstance(node, GroupScan)
        ]


@dataclass(frozen=True)
class Limit(LogicalOperator):
    """Emit at most ``count`` rows (order-dependent only under OrderBy)."""

    child: LogicalOperator
    count: int

    @cached_property
    def schema(self) -> Schema:
        return self.child.schema

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOperator]) -> "Limit":
        (child,) = children
        return Limit(child, self.count)

    def label(self) -> str:
        return f"Limit[{self.count}]"


@dataclass(frozen=True)
class Remap(LogicalOperator):
    """Column passthrough with full control of the output column identity.

    ``items`` pairs an input reference with the exact output
    :class:`Column` (name *and* qualifier). Used by rewrites that must
    reproduce a replaced subtree's output schema byte-for-byte — e.g. the
    invariant-grouping rule, which re-attaches columns dropped from the
    adapted per-group query via the joins above the relocated GApply.
    """

    child: LogicalOperator
    items: tuple[tuple[str, Column], ...]

    @cached_property
    def schema(self) -> Schema:
        child_schema = self.child.schema
        columns = []
        for reference, column in self.items:
            source = child_schema.column(reference)
            # Nullability may only be weakened (claiming NOT NULL for a
            # nullable source would be unsound; the reverse is fine).
            columns.append(
                Column(
                    column.name,
                    source.dtype,
                    column.qualifier,
                    column.nullable or source.nullable,
                )
            )
        return Schema(columns)

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOperator]) -> "Remap":
        (child,) = children
        return Remap(child, self.items)

    def label(self) -> str:
        inner = ", ".join(
            f"{ref}->{column.qualified_name}" for ref, column in self.items
        )
        return f"Remap[{inner}]"


@dataclass(frozen=True)
class Alias(LogicalOperator):
    """Re-qualify a subtree's output columns (a derived-table alias).

    ``SELECT ... FROM (subquery) AS t`` binds the subquery's columns under
    qualifier ``t``; the group-selection rewrite also uses Alias to give the
    extracted group-id columns the group-variable qualifier so the rewrite's
    output schema matches the original GApply's exactly.
    """

    child: LogicalOperator
    name: str

    @cached_property
    def schema(self) -> Schema:
        return self.child.schema.qualify(self.name)

    def children(self) -> tuple[LogicalOperator, ...]:
        return (self.child,)

    def with_children(self, children: Sequence[LogicalOperator]) -> "Alias":
        (child,) = children
        return Alias(child, self.name)

    def label(self) -> str:
        return f"Alias({self.name})"


def replace_group_scans(
    plan: LogicalOperator, new_schema: Schema
) -> LogicalOperator:
    """Rewrite every GroupScan in ``plan`` to read ``new_schema``.

    Helper for rules that change the GApply outer query's output shape.
    """

    def rewrite(node: LogicalOperator) -> LogicalOperator:
        if isinstance(node, GroupScan):
            return GroupScan(node.variable, new_schema)
        return node

    return plan.transform_up(rewrite)
