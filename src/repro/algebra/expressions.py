"""Scalar expression language.

Expressions are immutable trees evaluated over single rows. The contract:

* ``compile(schema)`` returns a closure ``(row, ctx) -> value`` with all
  column lookups resolved to tuple positions up front — plans are compiled
  once and the closures run per row, which is what makes the Python engine
  fast enough for the paper's benchmarks.
* Values follow the SQL domain of :mod:`repro.storage.types`: ``None`` is
  NULL, boolean-valued expressions return ``True``/``False``/``None``
  (a nullable boolean — the value-level image of three-valued logic).
* ``ctx`` is the :class:`~repro.execution.context.ExecutionContext`; the only
  expression that reads it is :class:`Parameter`, the correlated-scalar
  reference created when the binder turns a subquery into an Apply.

Aggregate *functions* are not general expressions — SQL only allows them in
aggregation operators — so they live in :class:`AggregateCall`, consumed by
the GroupBy/Aggregate logical operators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.errors import ExecutionError, TypeCheckError
from repro.storage.schema import Schema
from repro.storage.types import DataType, compare_values, format_value, infer_type

Evaluator = Callable[[tuple, Any], Any]


class Expression:
    """Base class for scalar expressions. Immutable; subclasses are
    dataclasses so structural equality works for optimizer rule matching."""

    def compile(self, schema: Schema) -> Evaluator:
        raise NotImplementedError

    def columns(self) -> frozenset[str]:
        """Column references (as written, possibly qualified) in this tree."""
        raise NotImplementedError

    def parameters(self) -> frozenset[str]:
        """Names of correlated parameters referenced in this tree."""
        result: set[str] = set()
        for child in self.children():
            result |= child.parameters()
        return frozenset(result)

    def children(self) -> tuple["Expression", ...]:
        return ()

    def substitute(self, mapping: Mapping[str, "Expression"]) -> "Expression":
        """Replace column references per ``mapping`` (used by rewrites)."""
        raise NotImplementedError

    def infer(self, schema: Schema) -> DataType:
        """Static result type against ``schema`` (ANY when unknown)."""
        return DataType.ANY

    def __str__(self) -> str:  # pragma: no cover - subclasses override
        return repr(self)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a column by (possibly qualified) name."""

    name: str

    def compile(self, schema: Schema) -> Evaluator:
        position = schema.index_of(self.name)
        return lambda row, ctx: row[position]

    def columns(self) -> frozenset[str]:
        return frozenset((self.name,))

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return mapping.get(self.name, self)

    def infer(self, schema: Schema) -> DataType:
        if schema.has(self.name):
            return schema.column(self.name).dtype
        return DataType.ANY

    @property
    def bare_name(self) -> str:
        return self.name.rsplit(".", 1)[-1]

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expression):
    """A constant SQL value (``None`` is the NULL literal)."""

    value: Any

    def compile(self, schema: Schema) -> Evaluator:
        value = self.value
        return lambda row, ctx: value

    def columns(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return self

    def infer(self, schema: Schema) -> DataType:
        return infer_type(self.value)

    def __str__(self) -> str:
        if isinstance(self.value, str):
            escaped = self.value.replace("'", "''")
            return f"'{escaped}'"
        return format_value(self.value)


@dataclass(frozen=True)
class BindParameter(Literal):
    """A prepared-statement parameter slot carrying its seed value.

    Subclassing :class:`Literal` is the load-bearing design choice of the
    plan cache: every consumer that special-cases literals — the cost
    model's value-dependent selectivity, rewrite-rule matching, type
    inference — sees the seed ``value`` and behaves exactly as if the
    original literal were still in place, so a plan optimized from a
    parameterized tree is the same plan the literal query would get. The
    extra ``index`` ties the slot to a position in the parameter vector;
    execution never sees a BindParameter (the cache substitutes plain
    Literals before lowering).

    Distinct from :class:`Parameter`, the *correlated* scalar bound by an
    enclosing Apply: rules treat ``parameters()`` as correlation markers,
    so reusing it here would make every parameterized predicate look
    correlated and block pushdown. BindParameter inherits Literal's empty
    ``parameters()``.
    """

    index: int = 0

    def __str__(self) -> str:
        return f"${self.index + 1}"


@dataclass(frozen=True)
class Parameter(Expression):
    """A correlated scalar parameter bound by an enclosing Apply.

    The executor stores parameter values in the execution context under the
    parameter's name; compiling a Parameter closes over that name.
    """

    name: str

    def compile(self, schema: Schema) -> Evaluator:
        name = self.name
        def evaluate(row: tuple, ctx: Any) -> Any:
            if ctx is None:
                raise ExecutionError(
                    f"parameter {name!r} referenced outside an Apply"
                )
            return ctx.scalar(name)
        return evaluate

    def columns(self) -> frozenset[str]:
        return frozenset()

    def parameters(self) -> frozenset[str]:
        return frozenset((self.name,))

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return self

    def __str__(self) -> str:
        return f"${self.name}"


class ComparisonOp(enum.Enum):
    EQ = "="
    NE = "<>"
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def flip(self) -> "ComparisonOp":
        """The operator with sides exchanged (a < b  <=>  b > a)."""
        return {
            ComparisonOp.EQ: ComparisonOp.EQ,
            ComparisonOp.NE: ComparisonOp.NE,
            ComparisonOp.LT: ComparisonOp.GT,
            ComparisonOp.LE: ComparisonOp.GE,
            ComparisonOp.GT: ComparisonOp.LT,
            ComparisonOp.GE: ComparisonOp.LE,
        }[self]

    def negate(self) -> "ComparisonOp":
        return {
            ComparisonOp.EQ: ComparisonOp.NE,
            ComparisonOp.NE: ComparisonOp.EQ,
            ComparisonOp.LT: ComparisonOp.GE,
            ComparisonOp.LE: ComparisonOp.GT,
            ComparisonOp.GT: ComparisonOp.LE,
            ComparisonOp.GE: ComparisonOp.LT,
        }[self]


_COMPARISON_TESTS: dict[ComparisonOp, Callable[[int], bool]] = {
    ComparisonOp.EQ: lambda c: c == 0,
    ComparisonOp.NE: lambda c: c != 0,
    ComparisonOp.LT: lambda c: c < 0,
    ComparisonOp.LE: lambda c: c <= 0,
    ComparisonOp.GT: lambda c: c > 0,
    ComparisonOp.GE: lambda c: c >= 0,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """``left op right`` under SQL comparison semantics (NULL -> NULL)."""

    op: ComparisonOp
    left: Expression
    right: Expression

    def compile(self, schema: Schema) -> Evaluator:
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        test = _COMPARISON_TESTS[self.op]
        def evaluate(row: tuple, ctx: Any) -> Any:
            cmp = compare_values(left(row, ctx), right(row, ctx))
            return None if cmp is None else test(cmp)
        return evaluate

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return Comparison(
            self.op, self.left.substitute(mapping), self.right.substitute(mapping)
        )

    def infer(self, schema: Schema) -> DataType:
        return DataType.BOOLEAN

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class And(Expression):
    """N-ary conjunction under Kleene logic."""

    operands: tuple[Expression, ...]

    def __init__(self, *operands: Expression | Sequence[Expression]):
        flat: list[Expression] = []
        for operand in operands:
            if isinstance(operand, Expression):
                flat.append(operand)
            else:
                flat.extend(operand)
        object.__setattr__(self, "operands", tuple(flat))

    def compile(self, schema: Schema) -> Evaluator:
        compiled = [op.compile(schema) for op in self.operands]
        def evaluate(row: tuple, ctx: Any) -> Any:
            saw_null = False
            for fn in compiled:
                value = fn(row, ctx)
                if value is False:
                    return False
                if value is None:
                    saw_null = True
            return None if saw_null else True
        return evaluate

    def columns(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for op in self.operands:
            result |= op.columns()
        return result

    def children(self) -> tuple[Expression, ...]:
        return self.operands

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return And(*(op.substitute(mapping) for op in self.operands))

    def infer(self, schema: Schema) -> DataType:
        return DataType.BOOLEAN

    def __str__(self) -> str:
        return "(" + " AND ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Expression):
    """N-ary disjunction under Kleene logic."""

    operands: tuple[Expression, ...]

    def __init__(self, *operands: Expression | Sequence[Expression]):
        flat: list[Expression] = []
        for operand in operands:
            if isinstance(operand, Expression):
                flat.append(operand)
            else:
                flat.extend(operand)
        object.__setattr__(self, "operands", tuple(flat))

    def compile(self, schema: Schema) -> Evaluator:
        compiled = [op.compile(schema) for op in self.operands]
        def evaluate(row: tuple, ctx: Any) -> Any:
            saw_null = False
            for fn in compiled:
                value = fn(row, ctx)
                if value is True:
                    return True
                if value is None:
                    saw_null = True
            return None if saw_null else False
        return evaluate

    def columns(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for op in self.operands:
            result |= op.columns()
        return result

    def children(self) -> tuple[Expression, ...]:
        return self.operands

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return Or(*(op.substitute(mapping) for op in self.operands))

    def infer(self, schema: Schema) -> DataType:
        return DataType.BOOLEAN

    def __str__(self) -> str:
        return "(" + " OR ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Not(Expression):
    operand: Expression

    def compile(self, schema: Schema) -> Evaluator:
        inner = self.operand.compile(schema)
        def evaluate(row: tuple, ctx: Any) -> Any:
            value = inner(row, ctx)
            return None if value is None else not value
        return evaluate

    def columns(self) -> frozenset[str]:
        return self.operand.columns()

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return Not(self.operand.substitute(mapping))

    def infer(self, schema: Schema) -> DataType:
        return DataType.BOOLEAN

    def __str__(self) -> str:
        return f"(NOT {self.operand})"


@dataclass(frozen=True)
class IsNull(Expression):
    """``operand IS [NOT] NULL`` — never returns NULL itself."""

    operand: Expression
    negated: bool = False

    def compile(self, schema: Schema) -> Evaluator:
        inner = self.operand.compile(schema)
        negated = self.negated
        def evaluate(row: tuple, ctx: Any) -> Any:
            is_null = inner(row, ctx) is None
            return not is_null if negated else is_null
        return evaluate

    def columns(self) -> frozenset[str]:
        return self.operand.columns()

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return IsNull(self.operand.substitute(mapping), self.negated)

    def infer(self, schema: Schema) -> DataType:
        return DataType.BOOLEAN

    def __str__(self) -> str:
        word = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand} {word})"


class ArithmeticOp(enum.Enum):
    ADD = "+"
    SUB = "-"
    MUL = "*"
    DIV = "/"
    MOD = "%"


@dataclass(frozen=True)
class Arithmetic(Expression):
    """Numeric arithmetic with NULL propagation; division by zero raises."""

    op: ArithmeticOp
    left: Expression
    right: Expression

    def compile(self, schema: Schema) -> Evaluator:
        left = self.left.compile(schema)
        right = self.right.compile(schema)
        op = self.op
        def evaluate(row: tuple, ctx: Any) -> Any:
            lv = left(row, ctx)
            rv = right(row, ctx)
            if lv is None or rv is None:
                return None
            if not isinstance(lv, (int, float)) or isinstance(lv, bool):
                raise TypeCheckError(f"non-numeric operand {lv!r} for {op.value}")
            if not isinstance(rv, (int, float)) or isinstance(rv, bool):
                raise TypeCheckError(f"non-numeric operand {rv!r} for {op.value}")
            if op is ArithmeticOp.ADD:
                return lv + rv
            if op is ArithmeticOp.SUB:
                return lv - rv
            if op is ArithmeticOp.MUL:
                return lv * rv
            if rv == 0:
                raise ExecutionError(f"division by zero: {lv} {op.value} {rv}")
            if op is ArithmeticOp.DIV:
                if isinstance(lv, int) and isinstance(rv, int):
                    # SQL integer division truncates toward zero.
                    quotient = abs(lv) // abs(rv)
                    return quotient if (lv >= 0) == (rv >= 0) else -quotient
                return lv / rv
            return lv % rv
        return evaluate

    def columns(self) -> frozenset[str]:
        return self.left.columns() | self.right.columns()

    def children(self) -> tuple[Expression, ...]:
        return (self.left, self.right)

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return Arithmetic(
            self.op, self.left.substitute(mapping), self.right.substitute(mapping)
        )

    def infer(self, schema: Schema) -> DataType:
        lt = self.left.infer(schema)
        rt = self.right.infer(schema)
        if DataType.FLOAT in (lt, rt) or self.op is ArithmeticOp.DIV:
            return DataType.FLOAT
        if lt is DataType.INTEGER and rt is DataType.INTEGER:
            return DataType.INTEGER
        return DataType.ANY

    def __str__(self) -> str:
        return f"({self.left} {self.op.value} {self.right})"


@dataclass(frozen=True)
class Negate(Expression):
    operand: Expression

    def compile(self, schema: Schema) -> Evaluator:
        inner = self.operand.compile(schema)
        def evaluate(row: tuple, ctx: Any) -> Any:
            value = inner(row, ctx)
            return None if value is None else -value
        return evaluate

    def columns(self) -> frozenset[str]:
        return self.operand.columns()

    def children(self) -> tuple[Expression, ...]:
        return (self.operand,)

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return Negate(self.operand.substitute(mapping))

    def infer(self, schema: Schema) -> DataType:
        return self.operand.infer(schema)

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class InList(Expression):
    """``operand IN (v1, v2, ...)`` with SQL NULL semantics."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False

    def compile(self, schema: Schema) -> Evaluator:
        inner = self.operand.compile(schema)
        compiled_items = [item.compile(schema) for item in self.items]
        negated = self.negated
        def evaluate(row: tuple, ctx: Any) -> Any:
            value = inner(row, ctx)
            if value is None:
                return None
            saw_null = False
            for fn in compiled_items:
                candidate = fn(row, ctx)
                if candidate is None:
                    saw_null = True
                    continue
                if compare_values(value, candidate) == 0:
                    return not negated
            if saw_null:
                return None
            return negated
        return evaluate

    def columns(self) -> frozenset[str]:
        result = self.operand.columns()
        for item in self.items:
            result |= item.columns()
        return result

    def children(self) -> tuple[Expression, ...]:
        return (self.operand, *self.items)

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return InList(
            self.operand.substitute(mapping),
            tuple(item.substitute(mapping) for item in self.items),
            self.negated,
        )

    def infer(self, schema: Schema) -> DataType:
        return DataType.BOOLEAN

    def __str__(self) -> str:
        word = "NOT IN" if self.negated else "IN"
        inner = ", ".join(str(item) for item in self.items)
        return f"({self.operand} {word} ({inner}))"


@dataclass(frozen=True)
class CaseWhen(Expression):
    """``CASE WHEN cond THEN value ... ELSE default END``."""

    whens: tuple[tuple[Expression, Expression], ...]
    default: Expression = field(default_factory=lambda: Literal(None))

    def compile(self, schema: Schema) -> Evaluator:
        compiled = [
            (cond.compile(schema), value.compile(schema))
            for cond, value in self.whens
        ]
        default = self.default.compile(schema)
        def evaluate(row: tuple, ctx: Any) -> Any:
            for cond, value in compiled:
                if cond(row, ctx) is True:
                    return value(row, ctx)
            return default(row, ctx)
        return evaluate

    def columns(self) -> frozenset[str]:
        result = self.default.columns()
        for cond, value in self.whens:
            result |= cond.columns() | value.columns()
        return result

    def children(self) -> tuple[Expression, ...]:
        flat: list[Expression] = []
        for cond, value in self.whens:
            flat += [cond, value]
        flat.append(self.default)
        return tuple(flat)

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return CaseWhen(
            tuple(
                (cond.substitute(mapping), value.substitute(mapping))
                for cond, value in self.whens
            ),
            self.default.substitute(mapping),
        )

    def __str__(self) -> str:
        parts = [f"WHEN {cond} THEN {value}" for cond, value in self.whens]
        return "CASE " + " ".join(parts) + f" ELSE {self.default} END"


def _fn_concat(*args: Any) -> Any:
    if any(a is None for a in args):
        return None
    return "".join(str(a) for a in args)


def _fn_abs(value: Any) -> Any:
    return None if value is None else abs(value)


def _fn_round(value: Any, digits: Any = 0) -> Any:
    if value is None or digits is None:
        return None
    return round(value, int(digits))


def _fn_length(value: Any) -> Any:
    return None if value is None else len(str(value))


def _fn_substring(value: Any, start: Any, length: Any = None) -> Any:
    """1-based SQL SUBSTRING."""
    if value is None or start is None:
        return None
    text = str(value)
    begin = max(0, int(start) - 1)
    if length is None:
        return text[begin:]
    return text[begin : begin + int(length)]


def _fn_upper(value: Any) -> Any:
    return None if value is None else str(value).upper()


def _fn_lower(value: Any) -> Any:
    return None if value is None else str(value).lower()


def _fn_coalesce(*args: Any) -> Any:
    for arg in args:
        if arg is not None:
            return arg
    return None


def _fn_bitxor(left: Any, right: Any) -> Any:
    """Bitwise xor on integers; used by the client-side GApply simulation
    (the paper xors miscCols with a counter to force distinct values)."""
    if left is None or right is None:
        return None
    return int(left) ^ int(right)


SCALAR_FUNCTIONS: dict[str, Callable[..., Any]] = {
    "concat": _fn_concat,
    "abs": _fn_abs,
    "round": _fn_round,
    "length": _fn_length,
    "substring": _fn_substring,
    "upper": _fn_upper,
    "lower": _fn_lower,
    "coalesce": _fn_coalesce,
    "bitxor": _fn_bitxor,
}


@dataclass(frozen=True)
class FunctionCall(Expression):
    """Call of a registered scalar function by (case-insensitive) name."""

    name: str
    args: tuple[Expression, ...]

    def __post_init__(self) -> None:
        if self.name.lower() not in SCALAR_FUNCTIONS:
            raise TypeCheckError(
                f"unknown scalar function {self.name!r}; known: "
                + ", ".join(sorted(SCALAR_FUNCTIONS))
            )

    def compile(self, schema: Schema) -> Evaluator:
        fn = SCALAR_FUNCTIONS[self.name.lower()]
        compiled = [arg.compile(schema) for arg in self.args]
        def evaluate(row: tuple, ctx: Any) -> Any:
            return fn(*(c(row, ctx) for c in compiled))
        return evaluate

    def columns(self) -> frozenset[str]:
        result: frozenset[str] = frozenset()
        for arg in self.args:
            result |= arg.columns()
        return result

    def children(self) -> tuple[Expression, ...]:
        return self.args

    def substitute(self, mapping: Mapping[str, Expression]) -> Expression:
        return FunctionCall(
            self.name, tuple(arg.substitute(mapping) for arg in self.args)
        )

    def __str__(self) -> str:
        inner = ", ".join(str(arg) for arg in self.args)
        return f"{self.name}({inner})"


# ----------------------------------------------------------------------
# Aggregates
# ----------------------------------------------------------------------


class AggregateFunction(enum.Enum):
    COUNT = "count"          # count(expr): non-null inputs
    COUNT_STAR = "count(*)"  # count(*): all rows
    SUM = "sum"
    AVG = "avg"
    MIN = "min"
    MAX = "max"

    @property
    def empty_result(self) -> Any:
        """Result over an empty (or all-NULL for COUNT) input.

        COUNT variants return 0; all others return NULL. This is exactly the
        distinction the paper's emptyOnEmpty analysis cares about: an
        aggregate node is never empty-on-empty because of these values.
        """
        if self in (AggregateFunction.COUNT, AggregateFunction.COUNT_STAR):
            return 0
        return None


@dataclass(frozen=True)
class AggregateCall:
    """One aggregate in a GroupBy/Aggregate operator's output list.

    ``argument`` is ignored (may be None) for COUNT_STAR. ``distinct``
    requests duplicate elimination of the argument before aggregation.
    """

    function: AggregateFunction
    argument: Expression | None = None
    distinct: bool = False
    alias: str | None = None

    def __post_init__(self) -> None:
        if self.function is not AggregateFunction.COUNT_STAR and self.argument is None:
            raise TypeCheckError(f"{self.function.value} requires an argument")
        if self.function is AggregateFunction.COUNT_STAR and self.distinct:
            raise TypeCheckError("COUNT(DISTINCT *) is not valid SQL")

    def columns(self) -> frozenset[str]:
        if self.argument is None:
            return frozenset()
        return self.argument.columns()

    def output_name(self) -> str:
        if self.alias:
            return self.alias
        if self.function is AggregateFunction.COUNT_STAR:
            return "count_star"
        base = str(self.argument).strip("()").replace(".", "_")
        return f"{self.function.value}_{base}"

    def substitute(self, mapping: Mapping[str, Expression]) -> "AggregateCall":
        argument = (
            None if self.argument is None else self.argument.substitute(mapping)
        )
        return AggregateCall(self.function, argument, self.distinct, self.alias)

    def result_type(self, schema: Schema) -> DataType:
        if self.function in (AggregateFunction.COUNT, AggregateFunction.COUNT_STAR):
            return DataType.INTEGER
        if self.function is AggregateFunction.AVG:
            return DataType.FLOAT
        if self.argument is not None:
            return self.argument.infer(schema)
        return DataType.ANY

    def __str__(self) -> str:
        if self.function is AggregateFunction.COUNT_STAR:
            body = "count(*)"
        else:
            prefix = "distinct " if self.distinct else ""
            body = f"{self.function.value}({prefix}{self.argument})"
        if self.alias:
            body += f" AS {self.alias}"
        return body


class AggregateAccumulator:
    """Streaming accumulator for one :class:`AggregateCall`.

    Separated from the expression layer so both the hash aggregate and
    GApply's per-group evaluation reuse it.
    """

    __slots__ = ("call", "_count", "_sum", "_min", "_max", "_distinct")

    def __init__(self, call: AggregateCall):
        self.call = call
        self._count = 0
        self._sum: Any = None
        self._min: Any = None
        self._max: Any = None
        self._distinct: set | None = set() if call.distinct else None

    def add(self, value: Any) -> None:
        """Feed one argument value (for COUNT_STAR feed anything)."""
        function = self.call.function
        if function is AggregateFunction.COUNT_STAR:
            self._count += 1
            return
        if value is None:
            return
        if self._distinct is not None:
            from repro.storage.types import grouping_key

            key = grouping_key((value,))
            if key in self._distinct:
                return
            self._distinct.add(key)
        self._count += 1
        if function in (AggregateFunction.SUM, AggregateFunction.AVG):
            self._sum = value if self._sum is None else self._sum + value
        elif function is AggregateFunction.MIN:
            if self._min is None or compare_values(value, self._min) < 0:
                self._min = value
        elif function is AggregateFunction.MAX:
            if self._max is None or compare_values(value, self._max) > 0:
                self._max = value

    def result(self) -> Any:
        function = self.call.function
        if function in (AggregateFunction.COUNT, AggregateFunction.COUNT_STAR):
            return self._count
        if function is AggregateFunction.SUM:
            return self._sum
        if function is AggregateFunction.AVG:
            if self._count == 0:
                return None
            return self._sum / self._count
        if function is AggregateFunction.MIN:
            return self._min
        return self._max


# ----------------------------------------------------------------------
# Convenience constructors (keep query-building code readable)
# ----------------------------------------------------------------------


def col(name: str) -> ColumnRef:
    return ColumnRef(name)


def lit(value: Any) -> Literal:
    return Literal(value)


def eq(left: Expression, right: Expression) -> Comparison:
    return Comparison(ComparisonOp.EQ, left, right)


def ne(left: Expression, right: Expression) -> Comparison:
    return Comparison(ComparisonOp.NE, left, right)


def lt(left: Expression, right: Expression) -> Comparison:
    return Comparison(ComparisonOp.LT, left, right)


def le(left: Expression, right: Expression) -> Comparison:
    return Comparison(ComparisonOp.LE, left, right)


def gt(left: Expression, right: Expression) -> Comparison:
    return Comparison(ComparisonOp.GT, left, right)


def ge(left: Expression, right: Expression) -> Comparison:
    return Comparison(ComparisonOp.GE, left, right)


def count_star(alias: str | None = None) -> AggregateCall:
    return AggregateCall(AggregateFunction.COUNT_STAR, None, alias=alias)


def count(expr: Expression, alias: str | None = None, distinct: bool = False) -> AggregateCall:
    return AggregateCall(AggregateFunction.COUNT, expr, distinct, alias)


def sum_(expr: Expression, alias: str | None = None) -> AggregateCall:
    return AggregateCall(AggregateFunction.SUM, expr, alias=alias)


def avg(expr: Expression, alias: str | None = None) -> AggregateCall:
    return AggregateCall(AggregateFunction.AVG, expr, alias=alias)


def min_(expr: Expression, alias: str | None = None) -> AggregateCall:
    return AggregateCall(AggregateFunction.MIN, expr, alias=alias)


def max_(expr: Expression, alias: str | None = None) -> AggregateCall:
    return AggregateCall(AggregateFunction.MAX, expr, alias=alias)


def conjuncts(expression: Expression | None) -> list[Expression]:
    """Split a predicate into top-level AND conjuncts ([] for None)."""
    if expression is None:
        return []
    if isinstance(expression, And):
        result: list[Expression] = []
        for operand in expression.operands:
            result.extend(conjuncts(operand))
        return result
    return [expression]


def conjoin(predicates: Sequence[Expression]) -> Expression | None:
    """Inverse of :func:`conjuncts`: AND a list back together.

    Structurally duplicate conjuncts are dropped (sound: ``p AND p = p``),
    which keeps optimizer rewrites from stacking the same filter twice.
    """
    flat: list[Expression] = []
    seen: set[Expression] = set()
    for predicate in predicates:
        if predicate is None:
            continue
        for conjunct in conjuncts(predicate):
            if conjunct in seen:
                continue
            seen.add(conjunct)
            flat.append(conjunct)
    if not flat:
        return None
    if len(flat) == 1:
        return flat[0]
    return And(*flat)
