"""CLI driver: ``python -m repro.serve --stress``.

``--stress`` runs the seeded multi-client concurrent chaos workload
(:func:`repro.fuzz.chaos.run_concurrent_chaos`): per seed, a fresh
service over a ledger table is hammered by ``--threads`` client threads
mixing snapshot reads, atomic write batches, DDL, fault plans, load
shedding and mid-run shutdowns. Exit status 0 means every seed upheld
the invariant (snapshot-consistent rows or a typed error — never a wrong
answer, torn read, hang, or leaked spill file); 1 means at least one
failure (written as JSON to ``--artifacts-dir`` when given, which is how
CI surfaces them).

``faulthandler`` is armed with a watchdog timeout so a genuine deadlock
dumps every thread's stack instead of hanging the CI job silently.

Without ``--stress`` the module runs a tiny demo: it builds a scratch
service, issues a few queries through a session, and prints the service
stats and health snapshots — the quickest way to see the API shape.
"""

from __future__ import annotations

import argparse
import faulthandler
import json
import sys
import time
from pathlib import Path


def _stress_main(args: argparse.Namespace) -> int:
    from repro.fuzz.chaos import run_concurrent_chaos

    # A hung run dumps all thread stacks and aborts rather than eating
    # the whole CI job timeout in silence.
    faulthandler.enable()
    if args.watchdog > 0:
        faulthandler.dump_traceback_later(args.watchdog, exit=True)
    start = time.perf_counter()
    report = run_concurrent_chaos(
        seed=args.seed,
        n=args.seeds,
        threads=args.threads,
        ops_per_thread=args.ops,
        stop_after=args.stop_after,
        progress=lambda message: print(message, flush=True),
    )
    elapsed = time.perf_counter() - start
    if args.watchdog > 0:
        faulthandler.cancel_dump_traceback_later()
    if report.failures and args.artifacts_dir:
        directory = Path(args.artifacts_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / "serve-stress-failures.json"
        path.write_text(
            json.dumps(
                [failure.describe() for failure in report.failures],
                indent=2,
            )
        )
        print(f"failing cases written to {path}")
    print(report.summary().replace("chaos:", "serve-stress:"))
    print(f"elapsed: {elapsed:.1f}s")
    return 0 if report.ok else 1


def _demo_main() -> int:
    from repro.api import Database
    from repro.serve import Service
    from repro.storage.types import DataType

    db = Database()
    db.create_table(
        "part",
        [("p_partkey", DataType.INTEGER), ("p_size", DataType.INTEGER)],
        [(i, i % 5) for i in range(50)],
    )
    with Service(db) as service:
        with service.session(client="demo") as session:
            print("count:", session.sql("select count(*) from part").rows)
            session.insert("part", [(50, 0), (51, 1)])
            print(
                "after insert:",
                session.sql("select count(*) from part").rows,
            )
        print("stats:", service.stats())
        print("health:", service.health())
    print("shut down cleanly")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Concurrent query service: demo and stress harness.",
    )
    parser.add_argument(
        "--stress",
        action="store_true",
        help="run the seeded multi-client concurrent chaos workload",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="first seed (default 0)"
    )
    parser.add_argument(
        "--seeds", type=int, default=20, help="number of seeds (default 20)"
    )
    parser.add_argument(
        "--threads",
        type=int,
        default=8,
        help="client threads per seed (default 8)",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=4,
        help="operations per client thread (default 4)",
    )
    parser.add_argument(
        "--stop-after",
        type=int,
        default=5,
        help="stop after this many failing seeds (default 5)",
    )
    parser.add_argument(
        "--watchdog",
        type=float,
        default=600.0,
        help="faulthandler deadlock watchdog seconds, 0 disables "
        "(default 600)",
    )
    parser.add_argument(
        "--artifacts-dir",
        default=None,
        help="write failing cases (JSON) into this directory",
    )
    args = parser.parse_args(argv)
    if args.stress:
        return _stress_main(args)
    return _demo_main()


if __name__ == "__main__":
    sys.exit(main())
