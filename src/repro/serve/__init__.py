"""The concurrent query service: admission control, snapshot reads, load
shedding, and graceful shutdown in front of a :class:`~repro.api.Database`.

The engine below this module executes one query at a time correctly and —
since the governor/fault-tolerance work — survives budget violations and
worker crashes. This module makes the *system* robust when many clients
hit one database at once, following the admission-control discipline of
production federated engines (BigDAWG's shedding queues, Myria's service
layering):

* **Sessions** (:class:`Session`) — a client handle carrying its query
  class, priority, and per-session accounting; all reads and writes flow
  through its owning :class:`Service`.
* **Admission control** (:class:`AdmissionController`) — a fixed number
  of concurrency *slots* plus a bounded **priority wait-queue**. A query
  that cannot get a slot waits in the queue (smaller priority value =
  admitted sooner, FIFO within a priority); when the queue is full the
  service **sheds load** with the typed, retryable
  :class:`~repro.errors.ServiceOverloaded` carrying the queue depth and a
  suggested backoff. Queue wait counts against the query's deadline: the
  governor's clock starts at submission, so a query admitted late can
  time out with a :class:`~repro.errors.TimeoutExceeded` whose context
  says how long it queued vs. executed.
* **Snapshot-isolated reads** — every admitted query pins an immutable
  :meth:`catalog snapshot <repro.storage.catalog.Catalog.snapshot>`
  before executing. Concurrent INSERT/DDL land atomically via
  copy-on-write table versions under the catalog's mutation lock;
  readers never block on writers and can never observe a torn row list
  or a half-applied batch.
* **Graceful lifecycle** — :meth:`Service.shutdown` stops admission
  (queued queries are rejected with :class:`~repro.errors.
  ServiceStopped`), drains in-flight queries for ``drain_timeout``
  seconds, then cancels stragglers through their governors' cancel
  events, and always returns a :class:`ShutdownReport`. Health and
  stats snapshots ride on :class:`~repro.observe.metrics.LockedCounters`.

Writes (``insert``/``create_table``/``drop_table``) intentionally bypass
the admission queue: they serialize on the catalog mutation lock, are
short (copy-on-write swap), and must stay live even when readers saturate
the slots — starving writers behind a full read queue would turn overload
into livelock.

Quickstart::

    from repro.serve import Service

    service = Service(db)                      # wraps an existing Database
    with service.session(client="web") as s:
        rows = s.sql("select count(*) from part").rows
        s.insert("part", [(99, "new part", "B", 1, 9.5)])
    report = service.shutdown(drain_timeout=5.0)

``python -m repro.serve --stress`` runs the seeded multi-client chaos
workload against a scratch service (see :mod:`repro.fuzz.chaos`).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence

from repro.api import Database, QueryResult, Transaction
from repro.errors import (
    QueryCancelled,
    ReproError,
    ServiceError,
    ServiceOverloaded,
    ServiceStopped,
    WalError,
)
from repro.execution.governor import Budget, Governor
from repro.observe.metrics import LockedCounters
from repro.xmlpub.stream import DEFAULT_CHUNK_BYTES, XmlChunkStream
from repro.xmlpub.view import XmlView

#: How long a queued waiter sleeps between checks of its own deadline and
#: cancellation state. Admission handoffs set the waiter's event directly,
#: so this only bounds how late a *cancelled* waiter notices.
WAIT_QUANTUM = 0.05


@dataclass(frozen=True)
class QueryClass:
    """One admission class: its queue priority and default budgets.

    ``priority`` orders the wait-queue (smaller = sooner); ``budget``
    supplies the default governor limits for queries of this class that
    do not pass explicit ``timeout=``/``memory_budget=``/``max_rows=``.
    """

    name: str
    priority: int = 0
    budget: Budget = field(default_factory=Budget)


def default_query_classes() -> dict[str, QueryClass]:
    """The stock two-tier policy: interactive beats batch in the queue,
    batch gets the longer leash."""
    return {
        "interactive": QueryClass(
            "interactive", priority=0, budget=Budget(timeout=30.0)
        ),
        "batch": QueryClass(
            "batch", priority=10, budget=Budget(timeout=300.0)
        ),
    }


@dataclass
class ServiceConfig:
    """Service-wide admission and shedding policy."""

    #: Queries executing at once; everything else queues or sheds.
    max_concurrency: int = 4
    #: Bounded wait-queue depth; a submission past this is shed with
    #: :class:`~repro.errors.ServiceOverloaded`.
    max_queue_depth: int = 16
    #: Base of the suggested backoff carried by shed errors; scaled by
    #: queue pressure (deterministic, so clients and tests can rely on it).
    backoff_base: float = 0.05
    default_class: str = "interactive"
    classes: dict[str, QueryClass] = field(
        default_factory=default_query_classes
    )
    #: Open (or recover) a WAL-backed store at ``data_dir`` instead of a
    #: fresh in-memory database; see :mod:`repro.storage.wal`.
    durable: bool = False
    data_dir: str | None = None
    #: WAL fsync policy when durable: ``always`` / ``batch`` / ``group``
    #: / ``never``. ``group`` is the concurrent-writer policy: commits
    #: from different sessions batch into one fsync.
    fsync: str = "always"
    #: How long a group-commit leader waits for followers to pile on
    #: before paying for the fsync (``fsync="group"`` only).
    group_commit_delay: float = 0.002
    #: WAL segment rotation threshold; None = the WAL default.
    wal_segment_bytes: int | None = None
    #: Appends between fsyncs under the ``batch`` policy.
    wal_batch_every: int = 8
    #: Move superseded segments/checkpoints to ``data_dir/archive/``
    #: instead of deleting them — retains full history for
    #: point-in-time recovery (``Database.open(recover_to=...)``).
    wal_archive: bool = False
    #: Write a checkpoint (and truncate the log) during clean shutdown.
    checkpoint_on_shutdown: bool = True

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ServiceError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.durable and not self.data_dir:
            raise ServiceError("durable=True requires data_dir")
        if self.max_queue_depth < 0:
            raise ServiceError(
                f"max_queue_depth must be >= 0, got {self.max_queue_depth}"
            )
        if self.default_class not in self.classes:
            raise ServiceError(
                f"default_class {self.default_class!r} is not a configured "
                f"class; have {sorted(self.classes)}"
            )

    def query_class(self, name: str | None) -> QueryClass:
        key = name or self.default_class
        try:
            return self.classes[key]
        except KeyError:
            raise ServiceError(
                f"unknown query class {key!r}; configured: "
                f"{sorted(self.classes)}"
            ) from None


class _Waiter:
    """One queued admission request; all fields mutate under the
    controller lock, and the event is the cross-thread wakeup."""

    __slots__ = ("event", "admitted", "abandoned")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.admitted = False
        self.abandoned = False


class AdmissionController:
    """Bounded concurrency slots with a bounded priority wait-queue.

    The invariant: at all times ``slots_in_use + slots_free ==
    max_concurrency``, and a slot freed by :meth:`release` is handed
    *directly* to the best queued waiter (priority, then FIFO) under the
    lock — there is no thundering herd and no window where a freed slot
    is visible to a fresh arrival while earlier waiters starve.
    """

    def __init__(
        self,
        slots: int,
        max_queue_depth: int,
        backoff_base: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.slots = slots
        self.max_queue_depth = max_queue_depth
        self.backoff_base = backoff_base
        self.clock = clock
        self._lock = threading.Lock()
        self._slots_free = slots
        self._queue: list[tuple[int, int, _Waiter]] = []
        self._seq = itertools.count()
        self._stopping = False
        self.peak_queue_depth = 0
        self.sheds = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def stopping(self) -> bool:
        return self._stopping

    def queue_depth(self) -> int:
        with self._lock:
            return sum(1 for _, _, w in self._queue if not w.abandoned)

    def slots_free(self) -> int:
        with self._lock:
            return self._slots_free

    # ------------------------------------------------------------------
    # The protocol
    # ------------------------------------------------------------------

    def acquire(
        self, priority: int, governor: Governor, sql: str | None = None
    ) -> None:
        """Block until a slot is owned; raise instead of waiting forever.

        Raises :class:`ServiceStopped` when the service is draining,
        :class:`ServiceOverloaded` when the wait-queue is full, and the
        governor's typed errors (``TimeoutExceeded`` with queued-time
        context, ``QueryCancelled``) when its deadline or cancel event
        trips while still queued.
        """
        with self._lock:
            if self._stopping:
                raise ServiceStopped(
                    "service is shutting down; not accepting queries"
                ).add_context(sql=sql)
            if self._slots_free > 0 and not self._pending_locked():
                self._slots_free -= 1
                return
            depth = self._pending_locked()
            if depth >= self.max_queue_depth:
                self.sheds += 1
                backoff = self.backoff_base * (
                    1.0 + depth / max(1, self.max_queue_depth)
                )
                raise ServiceOverloaded(
                    f"admission queue is full ({depth} queries waiting, "
                    f"all {self.slots} slots busy); retry in "
                    f"~{backoff:.3f}s",
                    queue_depth=depth,
                    suggested_backoff=backoff,
                ).add_context(sql=sql)
            waiter = _Waiter()
            heapq.heappush(self._queue, (priority, next(self._seq), waiter))
            depth += 1
            if depth > self.peak_queue_depth:
                self.peak_queue_depth = depth
        while True:
            remaining = governor.remaining_seconds()
            quantum = WAIT_QUANTUM
            if remaining is not None:
                quantum = min(quantum, max(0.0, remaining))
            waiter.event.wait(quantum)
            with self._lock:
                if waiter.admitted:
                    return  # the releaser handed us its slot
                if self._stopping:
                    waiter.abandoned = True
                    raise ServiceStopped(
                        "service began shutting down while this query was "
                        "queued for admission"
                    ).add_context(sql=sql)
                if governor.cancelled:
                    waiter.abandoned = True
            if governor.cancelled:
                governor.check()  # raises QueryCancelled with context
            remaining = governor.remaining_seconds()
            if remaining is not None and remaining <= 0:
                with self._lock:
                    if waiter.admitted:
                        # Handed a slot in the same instant the deadline
                        # expired: give it back, then report the timeout.
                        self._release_locked()
                    waiter.abandoned = True
                raise governor.timeout_error(while_queued=True)

    def release(self) -> None:
        """Return a slot; hands it straight to the best live waiter."""
        with self._lock:
            self._release_locked()

    def _release_locked(self) -> None:
        while self._queue:
            _, _, waiter = heapq.heappop(self._queue)
            if waiter.abandoned:
                continue
            waiter.admitted = True
            waiter.event.set()
            return
        self._slots_free += 1
        if self._slots_free > self.slots:  # pragma: no cover - invariant
            raise ServiceError(
                "admission slot over-release: more releases than acquires"
            )

    def _pending_locked(self) -> int:
        return sum(1 for _, _, w in self._queue if not w.abandoned)

    def stop(self) -> None:
        """Refuse new work and wake every queued waiter to reject it."""
        with self._lock:
            self._stopping = True
            for _, _, waiter in self._queue:
                waiter.event.set()


@dataclass
class ShutdownReport:
    """What :meth:`Service.shutdown` found and did."""

    #: Queries still executing when shutdown began.
    in_flight: int
    #: How many drained to completion inside ``drain_timeout``.
    drained: int
    #: How many had to be cancelled through their governors.
    cancelled: int
    #: Queries that still had not released their slot when the
    #: post-cancel grace expired (0 in every healthy run).
    leaked: int
    #: Wall-clock seconds shutdown took end to end.
    elapsed: float

    @property
    def clean(self) -> bool:
        return self.leaked == 0


class Session:
    """A client's handle on the service: defaults plus accounting.

    Sessions are cheap and thread-compatible (each carries no mutable
    query state beyond locked counters); closing one only refuses further
    use of *this handle* — the service keeps running.
    """

    def __init__(
        self,
        service: "Service",
        client: str = "anonymous",
        query_class: str | None = None,
        priority: int | None = None,
    ):
        self.service = service
        self.client = client
        self.query_class = query_class
        self.priority = priority
        self.queries = LockedCounters()
        self._closed = False

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError(
                f"session for client {self.client!r} is closed"
            )

    def sql(self, text: str, **kwargs: Any) -> Any:
        self._check_open()
        kwargs.setdefault("query_class", self.query_class)
        kwargs.setdefault("priority", self.priority)
        try:
            result = self.service.sql(text, client=self.client, **kwargs)
        except ReproError:
            self.queries.inc("errors")
            raise
        self.queries.inc("queries")
        return result

    def publish(
        self, view: "XmlView", query: str, formulation: str = "gapply",
        **kwargs: Any,
    ) -> "XmlChunkStream":
        self._check_open()
        kwargs.setdefault("query_class", self.query_class)
        kwargs.setdefault("priority", self.priority)
        try:
            stream = self.service.submit_publish(
                view, query, formulation, client=self.client, **kwargs
            )
        except ReproError:
            self.queries.inc("errors")
            raise
        self.queries.inc("publishes")
        return stream

    def insert(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        self._check_open()
        count = self.service.insert(table_name, rows)
        self.queries.inc("writes")
        return count

    def create_table(self, *args: Any, **kwargs: Any):
        self._check_open()
        table = self.service.create_table(*args, **kwargs)
        self.queries.inc("ddl")
        return table

    def drop_table(self, name: str) -> None:
        self._check_open()
        self.service.drop_table(name)
        self.queries.inc("ddl")

    def begin(self) -> Transaction:
        """Open a multi-statement transaction (see :meth:`Service.begin`)."""
        self._check_open()
        txn = self.service.begin()
        self.queries.inc("transactions")
        return txn

    def close(self) -> None:
        self._closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Service:
    """Thread-safe concurrent query service over one database.

    Any number of client threads may call :meth:`sql` and the write
    methods simultaneously; see the module docstring for the guarantees.
    """

    def __init__(
        self,
        database: Database | None = None,
        config: ServiceConfig | None = None,
    ):
        self.config = config or ServiceConfig()
        if database is None and self.config.durable:
            open_kwargs: dict[str, Any] = {
                "fsync": self.config.fsync,
                "batch_every": self.config.wal_batch_every,
                "group_commit_delay": self.config.group_commit_delay,
                "archive": self.config.wal_archive,
            }
            if self.config.wal_segment_bytes is not None:
                open_kwargs["segment_bytes"] = self.config.wal_segment_bytes
            database = Database.open(self.config.data_dir, **open_kwargs)
        self.database = database or Database()
        self.admission = AdmissionController(
            self.config.max_concurrency,
            self.config.max_queue_depth,
            self.config.backoff_base,
        )
        self.stats_counters = LockedCounters()
        self._state_lock = threading.Lock()
        self._drained = threading.Condition(self._state_lock)
        self._active: dict[int, Governor] = {}
        #: In-flight publish streams, keyed like :attr:`_active`; shutdown
        #: force-closes these after the cancel grace, because a stream
        #: whose client simply stopped iterating never runs governor code.
        self._active_streams: dict[int, XmlChunkStream] = {}
        self._query_ids = itertools.count()
        self._stopping = False
        self._shutdown_report: ShutdownReport | None = None

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------

    def session(
        self,
        client: str = "anonymous",
        query_class: str | None = None,
        priority: int | None = None,
    ) -> Session:
        self.config.query_class(query_class)  # validate early
        return Session(self, client, query_class, priority)

    # ------------------------------------------------------------------
    # Reads (admitted, snapshot-isolated)
    # ------------------------------------------------------------------

    def sql(
        self,
        text: str,
        *,
        query_class: str | None = None,
        priority: int | None = None,
        timeout: float | None = None,
        memory_budget: int | None = None,
        max_rows: int | None = None,
        client: str = "anonymous",
        **kwargs: Any,
    ) -> QueryResult | Any:
        """Admit, snapshot, and execute one query.

        The governor's clock starts *now*: time spent queued for
        admission counts against ``timeout`` (explicit, or the query
        class default). Extra keyword arguments pass through to
        :meth:`Database.sql <repro.api.Database.sql>` (``parallelism=``,
        ``backend=``, ``explain=``, ``planner_options=``, ...).
        """
        qclass = self.config.query_class(query_class)
        budget = Budget(
            timeout=timeout if timeout is not None else qclass.budget.timeout,
            memory_cells=(
                memory_budget
                if memory_budget is not None
                else qclass.budget.memory_cells
            ),
            max_rows=(
                max_rows if max_rows is not None else qclass.budget.max_rows
            ),
        )
        governor = Governor(budget, sql=text)
        effective_priority = (
            priority if priority is not None else qclass.priority
        )
        self.stats_counters.inc("submitted")
        try:
            self.admission.acquire(effective_priority, governor, sql=text)
        except ServiceOverloaded:
            self.stats_counters.inc("shed")
            raise
        except ServiceStopped:
            self.stats_counters.inc("rejected_stopped")
            raise
        except ReproError:  # deadline/cancel tripped while queued
            self.stats_counters.inc("expired_queued")
            raise
        governor.mark_admitted()
        # The snapshot is pinned after admission: the query sees the
        # newest committed state at the moment it starts executing.
        reader = self.database.snapshot()
        query_id = next(self._query_ids)
        with self._state_lock:
            self._active[query_id] = governor
        try:
            result = reader.sql(text, governor=governor, **kwargs)
            self.stats_counters.inc("completed")
            return result
        except ReproError:
            self.stats_counters.inc("failed")
            raise
        finally:
            with self._drained:
                del self._active[query_id]
                self._drained.notify_all()
            self.admission.release()

    def submit_publish(
        self,
        view: XmlView,
        query: str,
        formulation: str = "gapply",
        *,
        query_class: str | None = None,
        priority: int | None = None,
        timeout: float | None = None,
        memory_budget: int | None = None,
        max_rows: int | None = None,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        client: str = "anonymous",
        **kwargs: Any,
    ) -> XmlChunkStream:
        """Admit, snapshot, and start streaming one published XML document.

        The streaming sibling of :meth:`sql`: same admission (query class,
        priority, shedding) and the same snapshot isolation, but the
        concurrency slot is held for the *lifetime of the returned
        stream*, not just this call — a client slowly iterating a
        multi-GB document occupies one slot the whole time, which is
        exactly the backpressure admission control exists to provide.
        The slot is returned when the stream is exhausted, closed, or
        killed by shutdown; abandoning the stream object entirely still
        releases on garbage collection, and :meth:`shutdown` force-closes
        whatever remains in flight.

        Budgets come from the query class unless overridden, and the
        governor's clock starts now — queue wait counts against
        ``timeout``, and mid-stream :meth:`Governor.cancel
        <repro.execution.governor.Governor.cancel>` (or shutdown) stops
        the stream within one chunk with :class:`~repro.errors.
        QueryCancelled`. Extra keyword arguments pass through to
        :meth:`Database.publish <repro.api.Database.publish>`
        (``engine=``, ``parallelism=``, ``encoding=``, ...).
        """
        qclass = self.config.query_class(query_class)
        budget = Budget(
            timeout=timeout if timeout is not None else qclass.budget.timeout,
            memory_cells=(
                memory_budget
                if memory_budget is not None
                else qclass.budget.memory_cells
            ),
            max_rows=(
                max_rows if max_rows is not None else qclass.budget.max_rows
            ),
        )
        governor = Governor(budget, sql=query)
        effective_priority = (
            priority if priority is not None else qclass.priority
        )
        self.stats_counters.inc("publish_submitted")
        try:
            self.admission.acquire(effective_priority, governor, sql=query)
        except ServiceOverloaded:
            self.stats_counters.inc("shed")
            raise
        except ServiceStopped:
            self.stats_counters.inc("rejected_stopped")
            raise
        except ReproError:  # deadline/cancel tripped while queued
            self.stats_counters.inc("expired_queued")
            raise
        governor.mark_admitted()
        reader = self.database.snapshot()
        query_id = next(self._query_ids)
        with self._state_lock:
            self._active[query_id] = governor
        try:
            stream = reader.publish(
                view,
                query,
                formulation,
                chunk_bytes=chunk_bytes,
                governor=governor,
                **kwargs,
            )
        except ReproError:
            # Translation/bind/plan failed before any stream existed.
            self.stats_counters.inc("publish_failed")
            with self._drained:
                del self._active[query_id]
                self._drained.notify_all()
            self.admission.release()
            raise
        with self._state_lock:
            self._active_streams[query_id] = stream
        stream.on_close(self._publish_closed(query_id))
        return stream

    def _publish_closed(
        self, query_id: int
    ) -> Callable[[XmlChunkStream, BaseException | None], None]:
        """The close hook that gives a publish stream's slot back."""

        def hook(stream: XmlChunkStream, error: BaseException | None) -> None:
            with self._drained:
                self._active.pop(query_id, None)
                self._active_streams.pop(query_id, None)
                self._drained.notify_all()
            self.admission.release()
            stats = stream.stats
            self.stats_counters.add_many(
                published_bytes=stats.bytes_emitted,
                publish_chunks=stats.chunks,
            )
            self.stats_counters.max_of(
                "publish_peak_buffer_bytes", stats.peak_buffer_bytes
            )
            if error is None and stream.exhausted:
                self.stats_counters.inc("published_docs")
            elif error is None:
                # Closed (by the client or shutdown) before the document
                # finished — a deliberate abandon, not a failure.
                self.stats_counters.inc("publish_abandoned")
            elif isinstance(error, QueryCancelled):
                self.stats_counters.inc("publish_cancelled")
            else:
                self.stats_counters.inc("publish_failed")

        return hook

    # ------------------------------------------------------------------
    # Writes (serialized on the catalog mutation lock, copy-on-write)
    # ------------------------------------------------------------------

    def _check_accepting_writes(self, action: str) -> None:
        if self._stopping:
            raise ServiceStopped(
                f"service is shutting down; refusing {action}"
            )

    def insert(self, table_name: str, rows: Iterable[Sequence[Any]]) -> int:
        """Atomically insert a batch; admitted snapshots never see part
        of it."""
        self._check_accepting_writes(f"insert into {table_name!r}")
        count = self.database.catalog.insert_rows(table_name, rows)
        self.stats_counters.inc("writes")
        return count

    def create_table(self, *args: Any, **kwargs: Any):
        self._check_accepting_writes("create_table")
        table = self.database.create_table(*args, **kwargs)
        self.stats_counters.inc("ddl")
        return table

    def drop_table(self, name: str) -> None:
        self._check_accepting_writes(f"drop of {name!r}")
        self.database.catalog.drop(name)
        self.stats_counters.inc("ddl")

    def add_foreign_key(self, *args: Any, **kwargs: Any) -> None:
        self._check_accepting_writes("add_foreign_key")
        self.database.add_foreign_key(*args, **kwargs)
        self.stats_counters.inc("ddl")

    def begin(self) -> Transaction:
        """Open a multi-statement transaction on the shared database.

        Only one transaction is open at a time (the catalog's
        transaction gate serializes writers); the returned handle is a
        context manager that commits on clean exit and rolls back on
        exception. Under ``fsync="group"`` concurrent committers batch
        into shared fsyncs — see :class:`repro.api.Transaction`.
        """
        self._check_accepting_writes("begin transaction")
        txn = self.database.begin()
        self.stats_counters.inc("transactions")
        return txn

    # ------------------------------------------------------------------
    # Health and stats
    # ------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Point-in-time service counters plus derived gauges."""
        with self._state_lock:
            active = len(self._active)
            active_streams = len(self._active_streams)
        data = self.stats_counters.snapshot()
        data.update(
            active=active,
            active_streams=active_streams,
            queue_depth=self.admission.queue_depth(),
            peak_queue_depth=self.admission.peak_queue_depth,
            slots=self.admission.slots,
            slots_free=self.admission.slots_free(),
            catalog_version=self.database.catalog.version,
        )
        # The cache is shared between the live database and every pinned
        # snapshot (entries are keyed by catalog version), so one stats
        # block covers all reader snapshots.
        if self.database.plan_cache is not None:
            data["plan_cache"] = self.database.plan_cache.stats()
        # Durable stores surface their WAL counters alongside the
        # admission gauges: wal_appends, wal_bytes, fsyncs, checkpoints,
        # recoveries.
        if self.database.wal is not None:
            data.update(self.database.wal.stats())
        return data

    def health(self) -> dict[str, Any]:
        if self._shutdown_report is not None:
            status = "stopped"
        elif self._stopping:
            status = "draining"
        else:
            status = "ok"
        stats = self.stats()
        return {
            "status": status,
            "active": stats["active"],
            "queue_depth": stats["queue_depth"],
            "slots_free": stats["slots_free"],
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(
        self,
        drain_timeout: float | None = None,
        cancel_grace: float = 10.0,
    ) -> ShutdownReport:
        """Drain and stop; always returns, idempotently.

        Admission stops immediately (queued queries get
        :class:`ServiceStopped`). In-flight queries get ``drain_timeout``
        seconds to finish (``None`` = wait as long as they take); any
        stragglers are cancelled through their governors and given
        ``cancel_grace`` seconds to observe it at the next stride check.
        The report says how many drained, were cancelled, or — only if a
        query ignored cancellation beyond the grace — leaked.
        """
        with self._state_lock:
            if self._shutdown_report is not None:
                return self._shutdown_report
            self._stopping = True
            in_flight = len(self._active)
        started = time.monotonic()
        self.admission.stop()
        with self._drained:
            if drain_timeout is None:
                while self._active:
                    self._drained.wait()
            else:
                deadline = started + drain_timeout
                while self._active:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._drained.wait(remaining):
                        break
            stragglers = list(self._active.values())
        cancelled = len(stragglers)
        for governor in stragglers:
            governor.cancel("service shutting down")
            self.stats_counters.inc("cancelled_by_shutdown")
        with self._drained:
            grace_deadline = time.monotonic() + cancel_grace
            while self._active:
                remaining = grace_deadline - time.monotonic()
                if remaining <= 0 or not self._drained.wait(remaining):
                    break
            # Publish streams whose clients simply stopped iterating never
            # execute governor checks, so cancellation alone cannot drain
            # them; force-close outside the lock (close hooks reacquire it).
            streams = list(self._active_streams.values())
        for stream in streams:
            stream.close()
        with self._drained:
            leaked = len(self._active)
        report = ShutdownReport(
            in_flight=in_flight,
            drained=in_flight - cancelled,
            cancelled=cancelled,
            leaked=leaked,
            elapsed=time.monotonic() - started,
        )
        if self.database.wal is not None:
            # Compact the log so the next open replays from a checkpoint;
            # recovery never *needs* this — a failed checkpoint just
            # leaves the longer (still complete) log behind.
            if self.config.checkpoint_on_shutdown:
                try:
                    self.database.checkpoint()
                except WalError:
                    pass
            self.database.close()
        with self._state_lock:
            self._shutdown_report = report
        return report

    def __enter__(self) -> "Service":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


__all__ = [
    "AdmissionController",
    "Budget",
    "QueryClass",
    "Service",
    "ServiceConfig",
    "Session",
    "ShutdownReport",
    "Transaction",
    "default_query_classes",
]
