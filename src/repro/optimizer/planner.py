"""Lowering: logical operator trees -> executable physical plans.

The lowering is deliberately simple and deterministic; plan *quality* comes
from the logical-level transformation rules (the paper's focus), not from
physical enumeration:

* joins with at least one equality conjunct become hash joins (residual
  conjuncts are kept as a post-filter on the combined row);
* other joins become nested-loop joins;
* GROUP BY becomes a hash aggregate;
* GApply's partitioning strategy (hash or sort) is a planner option,
  mirroring the paper's two partition-phase implementations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    conjoin,
    conjuncts,
)
from repro.algebra.operators import (
    Alias,
    Apply,
    Distinct,
    Exists,
    GApply,
    GroupBy,
    GroupScan,
    Join,
    JoinKind,
    Limit,
    LogicalOperator,
    OrderBy,
    Project,
    Prune,
    Remap,
    Select,
    TableScan,
    Union,
    UnionAll,
)
from repro.errors import PlanError
from repro.execution.aggregates import PHashAggregate
from repro.execution.apply import PApply, PExists
from repro.execution.base import PhysicalOperator
from repro.execution.basic import (
    PAlias,
    PDistinct,
    PLimit,
    PFilter,
    PProject,
    PPrune,
    PRemap,
    PSort,
    PUnionAll,
)
from repro.execution.gapply import HASH_PARTITION, PGApply
from repro.execution.parallel import SERIAL_BACKEND
from repro.execution.indexscan import PIndexNestedLoopJoin, PIndexSeek
from repro.execution.joins import PHashJoin, PNestedLoopJoin
from repro.execution.scans import PGroupScan, PTableScan
from repro.execution.vector.batch import DEFAULT_BATCH_SIZE
from repro.optimizer.access_paths import choose_join_side, choose_seek
from repro.storage.catalog import Catalog

#: Execution engine names accepted by ``PlannerOptions.engine`` and the
#: ``Database.sql(engine=...)`` convenience knob.
VOLCANO_ENGINE = "volcano"
VECTOR_ENGINE = "vector"
ENGINES = (VOLCANO_ENGINE, VECTOR_ENGINE)


@dataclass(frozen=True)
class PlannerOptions:
    """Physical planning knobs.

    ``gapply_partitioning`` selects the paper's partition-phase strategy
    (``"hash"`` or ``"sort"``); benchmarks sweep it as an ablation.
    ``prefer_hash_join`` can be disabled to force nested-loop joins, which
    tests use to check plan-independence of results.

    ``gapply_backend`` / ``gapply_parallelism`` select GApply's
    execution-phase worker pool (``"serial"``, ``"thread"`` or
    ``"process"``; see :mod:`repro.execution.parallel`). The serial
    default is the paper's nested-loops phase and the reference the
    parallel backends must match row-for-row and counter-for-counter.
    ``gapply_batch_size`` overrides the groups-per-dispatch heuristic.

    ``disabled_rules`` names optimizer rules (by their ``Rule.name``) that
    :class:`~repro.api.Database` must leave out of the transformation
    engine, and ``optimizer_max_alternatives`` caps its exploration; both
    exist so the differential fuzzer (:mod:`repro.fuzz`) can walk the plan
    space — every rule disabled one at a time, all rules off — and assert
    that results never change. Unknown rule names raise at use time.

    ``engine`` selects how the lowered plan is *driven*: ``"volcano"``
    (the default row-at-a-time iterators) or ``"vector"`` (the
    batch-at-a-time columnar engine in :mod:`repro.execution.vector`,
    which compiles the same physical plan into fused per-batch pipelines
    and transparently falls back to Volcano for unsupported operators).
    Both engines produce identical rows, counters, and metrics for any
    plan — the fuzz driver's ``engine`` profile asserts exactly that.
    ``vector_batch_size`` sets the rows-per-batch granularity.

    ``collect_estimates`` stamps every lowered physical node with the cost
    model's row estimate for its logical source (``est_rows``), which
    EXPLAIN ANALYZE renders against actual cardinalities. Off by default:
    estimation walks the logical subtree per node, and plain execution
    should not pay for it.
    """

    gapply_partitioning: str = HASH_PARTITION
    prefer_hash_join: bool = True
    use_indexes: bool = True
    gapply_backend: str = SERIAL_BACKEND
    gapply_parallelism: int = 1
    gapply_batch_size: int | None = None
    #: Force the GApply partition phase to spill to disk once this many
    #: cells are resident (None = spill only under a governor's memory
    #: budget). ``gapply_spill_dir`` overrides where run files live —
    #: tests point it at a tmpdir to assert cleanup.
    gapply_spill_threshold: int | None = None
    gapply_spill_dir: str | None = None
    disabled_rules: tuple[str, ...] = ()
    optimizer_max_alternatives: int | None = None
    collect_estimates: bool = False
    engine: str = VOLCANO_ENGINE
    vector_batch_size: int = DEFAULT_BATCH_SIZE

    def active_rules(self):
        """The default optimizer rule set minus ``disabled_rules``.

        Returns ``None`` when nothing is disabled so callers can fall back
        to the optimizer's own default (keeping reports comparable).
        """
        if not self.disabled_rules:
            return None
        from repro.optimizer.rules import DEFAULT_RULES, rule_by_name

        for name in self.disabled_rules:
            rule_by_name(name)  # raises KeyError for unknown names
        disabled = set(self.disabled_rules)
        return [rule for rule in DEFAULT_RULES if rule.name not in disabled]


class Planner:
    """Stateless logical-to-physical compiler over a catalog."""

    def __init__(self, catalog: Catalog, options: PlannerOptions | None = None):
        self.catalog = catalog
        self.options = options or PlannerOptions()
        self._cost_model = None

    def plan(self, node: LogicalOperator) -> PhysicalOperator:
        method = getattr(self, f"_plan_{type(node).__name__.lower()}", None)
        if method is None:
            raise PlanError(f"no physical lowering for {type(node).__name__}")
        physical = method(node)
        if self.options.collect_estimates:
            physical.est_rows = self._estimate_rows(node)
        return physical

    def _estimate_rows(self, node: LogicalOperator) -> float | None:
        """Cost-model row estimate for ``node``, or None if inestimable
        (e.g. a GroupScan outside any GApply binding)."""
        if self._cost_model is None:
            from repro.optimizer.cost import CostModel

            self._cost_model = CostModel(self.catalog)
        try:
            return self._cost_model.estimate(node).rows
        except Exception:
            return None

    # ------------------------------------------------------------------
    # Leaves
    # ------------------------------------------------------------------

    def _plan_tablescan(self, node: TableScan) -> PhysicalOperator:
        table = self.catalog.table(node.table_name)
        return PTableScan(table, node.alias)

    def _plan_groupscan(self, node: GroupScan) -> PhysicalOperator:
        return PGroupScan(node.variable, node.group_schema)

    # ------------------------------------------------------------------
    # Unary operators
    # ------------------------------------------------------------------

    def _plan_select(self, node: Select) -> PhysicalOperator:
        if self.options.use_indexes:
            seek = choose_seek(node, self.catalog)
            if seek is not None:
                return PIndexSeek(
                    seek.table,
                    seek.index,
                    seek.alias,
                    seek.equal_values,
                    seek.low,
                    seek.high,
                    seek.low_inclusive,
                    seek.high_inclusive,
                    seek.residual,
                )
        return PFilter(self.plan(node.child), node.predicate)

    def _plan_project(self, node: Project) -> PhysicalOperator:
        return PProject(self.plan(node.child), node.items)

    def _plan_prune(self, node: Prune) -> PhysicalOperator:
        return PPrune(self.plan(node.child), node.references)

    def _plan_alias(self, node: Alias) -> PhysicalOperator:
        return PAlias(self.plan(node.child), node.name)

    def _plan_remap(self, node: Remap) -> PhysicalOperator:
        return PRemap(self.plan(node.child), node.items)

    def _plan_limit(self, node: Limit) -> PhysicalOperator:
        return PLimit(self.plan(node.child), node.count)

    def _plan_distinct(self, node: Distinct) -> PhysicalOperator:
        return PDistinct(self.plan(node.child))

    def _plan_orderby(self, node: OrderBy) -> PhysicalOperator:
        return PSort(self.plan(node.child), node.items)

    def _plan_groupby(self, node: GroupBy) -> PhysicalOperator:
        return PHashAggregate(self.plan(node.child), node.keys, node.aggregates)

    def _plan_exists(self, node: Exists) -> PhysicalOperator:
        return PExists(self.plan(node.child), node.negated)

    # ------------------------------------------------------------------
    # N-ary operators
    # ------------------------------------------------------------------

    def _plan_unionall(self, node: UnionAll) -> PhysicalOperator:
        return PUnionAll([self.plan(child) for child in node.inputs])

    def _plan_union(self, node: Union) -> PhysicalOperator:
        return PDistinct(PUnionAll([self.plan(child) for child in node.inputs]))

    def _plan_join(self, node: Join) -> PhysicalOperator:
        left = self.plan(node.left)
        right = self.plan(node.right)
        if node.kind == JoinKind.CROSS or node.predicate is None:
            return PNestedLoopJoin(left, right, node.predicate, JoinKind.INNER)
        pairs = node.equijoin_pairs() if self.options.prefer_hash_join else []
        if not pairs:
            return PNestedLoopJoin(left, right, node.predicate, node.kind)
        left_keys = [pair[0] for pair in pairs]
        right_keys = [pair[1] for pair in pairs]
        residual = self._residual_predicate(node, pairs)

        from repro.optimizer.cost import CostModel

        model = CostModel(self.catalog)
        try:
            left_rows = model.estimate(node.left).rows
            right_rows = model.estimate(node.right).rows
        except Exception:
            left_rows = right_rows = None

        if (
            self.options.use_indexes
            and node.kind == JoinKind.INNER
            and left_rows is not None
        ):
            indexed = self._try_index_join(
                node, left_keys, right_keys, residual, left_rows, right_rows
            )
            if indexed is not None:
                return indexed

        build_left = False
        if node.kind == JoinKind.INNER and left_rows is not None:
            # Build the hash table on the estimated-smaller input.
            build_left = left_rows < right_rows
        return PHashJoin(
            left, right, left_keys, right_keys, residual, node.kind, build_left
        )

    def _try_index_join(
        self, node, left_keys, right_keys, residual, left_rows, right_rows
    ):
        """Lower to an index nested-loop join when one side is an indexed
        base table and the driving side is substantially smaller."""
        from repro.algebra.expressions import conjoin

        # Drive from the left, look up into the right.
        right_side = choose_join_side(node.right, right_keys, self.catalog)
        if right_side is not None:
            matches = max(
                1.0, right_rows / max(1, right_side.index.distinct_key_count())
            )
            inlj_cost = left_rows * (1.0 + matches)
            hash_cost = 1.5 * right_rows + left_rows
            if inlj_cost < hash_cost:
                return PIndexNestedLoopJoin(
                    self.plan(node.left),
                    right_side.table,
                    right_side.index,
                    left_keys,
                    right_side.alias,
                    conjoin([residual, right_side.filter_predicate]),
                    outer_is_left=True,
                )
        # Drive from the right, look up into the left.
        left_side = choose_join_side(node.left, left_keys, self.catalog)
        if left_side is not None:
            matches = max(
                1.0, left_rows / max(1, left_side.index.distinct_key_count())
            )
            inlj_cost = right_rows * (1.0 + matches)
            hash_cost = 1.5 * left_rows + right_rows
            if inlj_cost < hash_cost:
                return PIndexNestedLoopJoin(
                    self.plan(node.right),
                    left_side.table,
                    left_side.index,
                    right_keys,
                    left_side.alias,
                    conjoin([residual, left_side.filter_predicate]),
                    outer_is_left=False,
                )
        return None

    @staticmethod
    def _residual_predicate(node: Join, pairs: list[tuple[str, str]]):
        """Conjuncts of the join predicate not covered by the hash keys."""
        used = set()
        for left_ref, right_ref in pairs:
            used.add((left_ref, right_ref))
            used.add((right_ref, left_ref))
        remaining = []
        for conjunct in conjuncts(node.predicate):
            if (
                isinstance(conjunct, Comparison)
                and conjunct.op is ComparisonOp.EQ
                and isinstance(conjunct.left, ColumnRef)
                and isinstance(conjunct.right, ColumnRef)
                and (conjunct.left.name, conjunct.right.name) in used
            ):
                continue
            remaining.append(conjunct)
        return conjoin(remaining)

    def _plan_apply(self, node: Apply) -> PhysicalOperator:
        return PApply(self.plan(node.outer), self.plan(node.inner), node.bindings)

    def _plan_gapply(self, node: GApply) -> PhysicalOperator:
        return PGApply(
            self.plan(node.outer),
            node.grouping_columns,
            self.plan(node.per_group),
            node.group_variable,
            self.options.gapply_partitioning,
            parallelism=self.options.gapply_parallelism,
            backend=self.options.gapply_backend,
            batch_size=self.options.gapply_batch_size,
            spill_threshold=self.options.gapply_spill_threshold,
            spill_dir=self.options.gapply_spill_dir,
        )


def plan_physical(
    node: LogicalOperator,
    catalog: Catalog,
    options: PlannerOptions | None = None,
) -> PhysicalOperator:
    """Convenience wrapper: lower ``node`` against ``catalog``."""
    return Planner(catalog, options).plan(node)
