"""Index access-path selection, shared by the planner and the cost model.

Given a ``Select(TableScan)`` (or a join side of that shape), decide
whether an index can serve it and describe how. Keeping the decision logic
in one module guarantees the cost model prices exactly the access paths the
planner will produce.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.algebra.expressions import (
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expression,
    Literal,
    conjoin,
    conjuncts,
)
from repro.algebra.operators import (
    LogicalOperator,
    Select,
    TableScan,
)
from repro.storage.catalog import Catalog
from repro.storage.index import TableIndex
from repro.storage.table import Table


@dataclass(frozen=True)
class SeekPlan:
    """A chosen index seek for Select(TableScan)."""

    table: Table
    alias: str | None
    index: TableIndex
    equal_values: tuple[Any, ...] | None
    low: Any
    high: Any
    low_inclusive: bool
    high_inclusive: bool
    residual: Expression | None

    def estimated_fraction(self) -> float:
        """Rough fraction of the table an equality seek returns."""
        keys = max(1, self.index.distinct_key_count())
        return 1.0 / keys


@dataclass(frozen=True)
class JoinSide:
    """A join input that can be served by index lookups."""

    table: Table
    alias: str | None
    index: TableIndex
    filter_predicate: Expression | None  # applied per fetched row


def _bare_column(scan: TableScan, reference: str) -> str | None:
    """Bare column name of a reference into the scan's (aliased) schema."""
    schema = scan.schema
    if not schema.has(reference):
        return None
    return schema.column(reference).name


def choose_seek(node: Select, catalog: Catalog) -> SeekPlan | None:
    """An index seek serving ``Select(TableScan)``, or None.

    Preference order: full-equality probe on some index, then a range probe
    on a single-column ordered index. Non-served conjuncts become the
    residual filter.
    """
    if not isinstance(node.child, TableScan):
        return None
    scan = node.child
    if not catalog.has_table(scan.table_name):
        return None
    table = catalog.table(scan.table_name)
    if not table.indexes:
        return None

    equals: dict[str, Any] = {}
    lower: dict[str, tuple[Any, bool]] = {}
    upper: dict[str, tuple[Any, bool]] = {}
    classified: dict[int, str | None] = {}
    all_conjuncts = conjuncts(node.predicate)
    for position, conjunct in enumerate(all_conjuncts):
        classified[position] = None
        if not isinstance(conjunct, Comparison):
            continue
        left, right, op = conjunct.left, conjunct.right, conjunct.op
        if isinstance(right, ColumnRef) and isinstance(left, Literal):
            left, right = right, left
            op = op.flip()
        if not (isinstance(left, ColumnRef) and isinstance(right, Literal)):
            continue
        column = _bare_column(scan, left.name)
        if column is None or right.value is None:
            continue
        if op is ComparisonOp.EQ and column not in equals:
            equals[column] = right.value
            classified[position] = f"eq:{column}"
        elif op in (ComparisonOp.LT, ComparisonOp.LE) and column not in upper:
            upper[column] = (right.value, op is ComparisonOp.LE)
            classified[position] = f"hi:{column}"
        elif op in (ComparisonOp.GT, ComparisonOp.GE) and column not in lower:
            lower[column] = (right.value, op is ComparisonOp.GE)
            classified[position] = f"lo:{column}"

    # Full-equality probe.
    for index in table.indexes.values():
        if all(column in equals for column in index.columns):
            served = {f"eq:{column}" for column in index.columns}
            residual = conjoin(
                [
                    conjunct
                    for position, conjunct in enumerate(all_conjuncts)
                    if classified[position] not in served
                ]
            )
            return SeekPlan(
                table,
                scan.alias,
                index,
                tuple(equals[column] for column in index.columns),
                None,
                None,
                True,
                True,
                residual,
            )

    # Range probe.
    for index in table.indexes.values():
        if not index.is_single_column:
            continue
        column = index.columns[0]
        if column not in lower and column not in upper:
            continue
        served = {f"lo:{column}", f"hi:{column}"}
        residual = conjoin(
            [
                conjunct
                for position, conjunct in enumerate(all_conjuncts)
                if classified[position] not in served
            ]
        )
        low, low_inclusive = lower.get(column, (None, True))
        high, high_inclusive = upper.get(column, (None, True))
        return SeekPlan(
            table,
            scan.alias,
            index,
            None,
            low,
            high,
            low_inclusive,
            high_inclusive,
            residual,
        )
    return None


def choose_join_side(
    side: LogicalOperator,
    key_references: list[str],
    catalog: Catalog,
) -> JoinSide | None:
    """Can this join input be served by index lookups on its join keys?

    The input must be a bare ``TableScan`` or ``Select(TableScan)`` and the
    table must have an index covering exactly the (bare) key columns.
    """
    filter_predicate: Expression | None = None
    scan = side
    if isinstance(scan, Select):
        filter_predicate = scan.predicate
        scan = scan.child
    if not isinstance(scan, TableScan):
        return None
    if not catalog.has_table(scan.table_name):
        return None
    table = catalog.table(scan.table_name)
    bare = []
    for reference in key_references:
        column = _bare_column(scan, reference)
        if column is None:
            return None
        bare.append(column)
    index = table.index_on(bare)
    if index is None:
        return None
    # The index lookup supplies values in index-column order; reorder keys
    # to match when necessary (caller probes with outer values in the same
    # order as key_references — require exact order match for simplicity).
    if tuple(index.columns) != tuple(bare):
        return None
    return JoinSide(table, scan.alias, index, filter_predicate)
