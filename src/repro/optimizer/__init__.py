"""Optimizer: property derivation, transformation rules, cost, planning."""

from repro.optimizer.cost import CostModel, Estimate
from repro.optimizer.engine import (
    OptimizationReport,
    Optimizer,
    apply_rule_once,
    optimize,
    rewrite_everywhere,
)
from repro.optimizer.planner import Planner, PlannerOptions, plan_physical
from repro.optimizer.properties import (
    covering_range,
    empty_on_empty,
    gp_eval_columns,
    invariant_grouping_node,
    referenced_columns,
)
from repro.optimizer.rules import DEFAULT_RULES, Rule, RuleContext, rule_by_name

__all__ = [
    "CostModel",
    "DEFAULT_RULES",
    "Estimate",
    "OptimizationReport",
    "Optimizer",
    "Planner",
    "PlannerOptions",
    "Rule",
    "RuleContext",
    "apply_rule_once",
    "covering_range",
    "empty_on_empty",
    "gp_eval_columns",
    "invariant_grouping_node",
    "optimize",
    "plan_physical",
    "referenced_columns",
    "rewrite_everywhere",
    "rule_by_name",
]
