"""Cost model for plans containing GApply (Section 4.4).

The paper's sketch, implemented directly:

* **uniform groups** — the cost of GApply is the cost of evaluating the
  per-group query on one *average* group multiplied by the number of
  groups; the number of groups is the number of distinct values of the
  grouping columns; the average group size is the outer result size divided
  by the number of groups.
* per-group statistics reduce to whole-relation statistics under the
  uniformity assumption ("the selectivity of a predicate is the same in all
  groups"), so selectivity estimation inside the per-group query reuses the
  base-table statistics.

Costs are abstract work units roughly proportional to tuples touched, which
is what the executor's :class:`~repro.execution.context.Counters` measure,
so estimated and observed work are directly comparable in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.algebra.expressions import (
    And,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expression,
    InList,
    IsNull,
    Literal,
    Not,
    Or,
)
from repro.algebra.operators import (
    Alias,
    Apply,
    Distinct,
    Exists,
    GApply,
    GroupBy,
    GroupScan,
    Join,
    JoinKind,
    Limit,
    LogicalOperator,
    OrderBy,
    Project,
    Prune,
    Remap,
    Select,
    TableScan,
    Union,
    UnionAll,
)
from repro.errors import OptimizerError
from repro.storage.catalog import Catalog
from repro.storage.statistics import ColumnStatistics

DEFAULT_EQ_SELECTIVITY = 0.1
DEFAULT_RANGE_SELECTIVITY = 1.0 / 3.0
DEFAULT_GROUP_ROWS = 16.0

#: Per-column surcharge for operations that buffer or copy whole rows
#: (GApply partitioning, sorts, distinct hashing). Width-proportional costs
#: are what make the projection-before-GApply rule pay off.
WIDTH_FACTOR = 0.25


def _width(node: LogicalOperator) -> float:
    return float(len(node.schema))


@dataclass(frozen=True)
class Estimate:
    """Estimated output cardinality and cumulative cost of a subtree."""

    rows: float
    cost: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "rows", max(0.0, self.rows))
        object.__setattr__(self, "cost", max(0.0, self.cost))


class CostModel:
    """Cardinality/cost estimation over logical plans."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog

    # ------------------------------------------------------------------
    # Statistics lookup
    # ------------------------------------------------------------------

    def _column_stats(self, reference: str) -> ColumnStatistics | None:
        """Find base-table statistics for a column reference.

        References may be qualified by an alias rather than the table name,
        so the lookup falls back to the bare column name, searching every
        table (TPC-H column names are globally unique, as the paper's
        queries assume).
        """
        bare = reference.rsplit(".", 1)[-1]
        for table in self.catalog:
            stats = self.catalog.statistics(table.name)
            found = stats.column(bare)
            if found is not None:
                return found
        return None

    def _distinct(self, reference: str, fallback_rows: float) -> float:
        stats = self._column_stats(reference)
        if stats is None or stats.distinct_count == 0:
            return max(1.0, math.sqrt(max(fallback_rows, 1.0)))
        return float(stats.distinct_count)

    # ------------------------------------------------------------------
    # Selectivity
    # ------------------------------------------------------------------

    def selectivity(self, predicate: Expression | None) -> float:
        if predicate is None:
            return 1.0
        if isinstance(predicate, And):
            result = 1.0
            for operand in predicate.operands:
                result *= self.selectivity(operand)
            return result
        if isinstance(predicate, Or):
            keep = 1.0
            for operand in predicate.operands:
                keep *= 1.0 - self.selectivity(operand)
            return 1.0 - keep
        if isinstance(predicate, Not):
            return 1.0 - self.selectivity(predicate.operand)
        if isinstance(predicate, Comparison):
            return self._comparison_selectivity(predicate)
        if isinstance(predicate, InList):
            base = self.selectivity(
                Comparison(
                    ComparisonOp.EQ, predicate.operand, Literal(None)
                )
            )
            estimate = min(1.0, base * max(1, len(predicate.items)))
            return 1.0 - estimate if predicate.negated else estimate
        if isinstance(predicate, IsNull):
            return 0.05 if not predicate.negated else 0.95
        return DEFAULT_RANGE_SELECTIVITY

    def _comparison_selectivity(self, predicate: Comparison) -> float:
        left, right = predicate.left, predicate.right
        # Normalize to column-op-value when possible.
        if isinstance(right, ColumnRef) and not isinstance(left, ColumnRef):
            left, right = right, left
            predicate = Comparison(predicate.op.flip(), left, right)
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            if predicate.op is ComparisonOp.EQ:
                d1 = self._distinct(left.name, 1000.0)
                d2 = self._distinct(right.name, 1000.0)
                return 1.0 / max(d1, d2, 1.0)
            return DEFAULT_RANGE_SELECTIVITY
        if isinstance(left, ColumnRef):
            stats = self._column_stats(left.name)
            value = right.value if isinstance(right, Literal) else None
            if predicate.op is ComparisonOp.EQ:
                if stats is not None:
                    return stats.selectivity_eq(value) if value is not None else (
                        1.0 / max(1, stats.distinct_count)
                    )
                return DEFAULT_EQ_SELECTIVITY
            if predicate.op is ComparisonOp.NE:
                return 1.0 - self._comparison_selectivity(
                    Comparison(ComparisonOp.EQ, left, right)
                )
            if stats is not None and isinstance(value, (int, float)):
                if predicate.op in (ComparisonOp.LT, ComparisonOp.LE):
                    return stats.selectivity_range(None, float(value))
                return stats.selectivity_range(float(value), None)
            return DEFAULT_RANGE_SELECTIVITY
        return DEFAULT_RANGE_SELECTIVITY

    # ------------------------------------------------------------------
    # Plan estimation
    # ------------------------------------------------------------------

    def estimate(
        self, node: LogicalOperator, group_rows: float = DEFAULT_GROUP_ROWS
    ) -> Estimate:
        """Estimate ``node``; ``group_rows`` is the expected size of the
        group relation for GroupScan leaves (set by enclosing GApply)."""
        if isinstance(node, TableScan):
            rows = float(len(self.catalog.table(node.table_name).rows))
            return Estimate(rows, rows)
        if isinstance(node, GroupScan):
            scan_cost = group_rows * (1.0 + WIDTH_FACTOR * _width(node))
            return Estimate(group_rows, scan_cost)
        if isinstance(node, Select):
            child = self.estimate(node.child, group_rows)
            sel = self.selectivity(node.predicate)
            if isinstance(node.child, TableScan):
                from repro.optimizer.access_paths import choose_seek

                seek = choose_seek(node, self.catalog)
                if seek is not None:
                    # Index seek: pay for the rows fetched, not the scan.
                    rows = child.rows * sel
                    fetched = rows
                    if seek.residual is not None:
                        fetched = max(
                            rows, child.rows * self.selectivity(node.predicate)
                        )
                        if seek.equal_values is not None:
                            fetched = child.rows * seek.estimated_fraction()
                    seek_cost = math.log2(child.rows + 2.0) + fetched + rows
                    return Estimate(rows, seek_cost)
            return Estimate(child.rows * sel, child.cost + child.rows)
        if isinstance(node, (Project, Prune, Remap, Alias)):
            child = self.estimate(node.children()[0], group_rows)
            # Output-width-dependent: constructing narrower rows is cheaper,
            # which is what lets narrowing/pruning rewrites win.
            per_row = 0.2 + 0.1 * _width(node)
            return Estimate(child.rows, child.cost + per_row * child.rows)
        if isinstance(node, Limit):
            child = self.estimate(node.child, group_rows)
            return Estimate(min(child.rows, float(node.count)), child.cost)
        if isinstance(node, Distinct):
            child = self.estimate(node.child, group_rows)
            distinct = self._distinct_rows(node.schema.qualified_names(), child.rows)
            hash_cost = child.rows * (1.0 + WIDTH_FACTOR * _width(node))
            return Estimate(distinct, child.cost + hash_cost)
        if isinstance(node, OrderBy):
            child = self.estimate(node.child, group_rows)
            sort_cost = child.rows * (
                math.log2(child.rows + 2.0) + WIDTH_FACTOR * _width(node)
            )
            return Estimate(child.rows, child.cost + sort_cost)
        if isinstance(node, GroupBy):
            return self._estimate_groupby(node, group_rows)
        if isinstance(node, (Union, UnionAll)):
            rows = 0.0
            cost = 0.0
            for child in node.children():
                estimate = self.estimate(child, group_rows)
                rows += estimate.rows
                cost += estimate.cost
            if isinstance(node, Union):
                cost += rows
                rows = self._distinct_rows(node.schema.qualified_names(), rows)
            return Estimate(rows, cost)
        if isinstance(node, Exists):
            child = self.estimate(node.child, group_rows)
            # Early exit on the first row: charge half the child's cost.
            return Estimate(1.0, 0.5 * child.cost)
        if isinstance(node, Apply):
            outer = self.estimate(node.outer, group_rows)
            inner = self.estimate(node.inner, group_rows)
            rows = outer.rows * max(inner.rows, 0.0)
            if len(node.inner.schema) == 0:
                rows = outer.rows * min(inner.rows, 1.0)
            if node.bindings:
                cost = outer.cost + outer.rows * (inner.cost + 1.0)
            else:
                # Uncorrelated inner is evaluated once (executor caches it).
                cost = outer.cost + inner.cost + outer.rows
            return Estimate(rows, cost)
        if isinstance(node, Join):
            return self._estimate_join(node, group_rows)
        if isinstance(node, GApply):
            return self._estimate_gapply(node, group_rows)
        raise OptimizerError(f"no cost estimate for {type(node).__name__}")

    def _distinct_rows(self, references: list[str], input_rows: float) -> float:
        product = 1.0
        for reference in references:
            product *= self._distinct(reference, input_rows)
            if product >= input_rows:
                return max(1.0, input_rows)
        return max(1.0, min(product, input_rows))

    def _estimate_groupby(self, node: GroupBy, group_rows: float) -> Estimate:
        child = self.estimate(node.child, group_rows)
        if node.is_scalar_aggregate:
            return Estimate(1.0, child.cost + child.rows)
        groups = self._distinct_rows(list(node.keys), child.rows)
        return Estimate(groups, child.cost + child.rows)

    def _estimate_join(self, node: Join, group_rows: float) -> Estimate:
        left = self.estimate(node.left, group_rows)
        right = self.estimate(node.right, group_rows)
        pairs = node.equijoin_pairs()
        if pairs:
            sel = 1.0
            for left_ref, right_ref in pairs:
                d1 = self._distinct(left_ref, left.rows)
                d2 = self._distinct(right_ref, right.rows)
                sel /= max(d1, d2, 1.0)
            rows = left.rows * right.rows * sel
            cost = left.cost + right.cost + left.rows + right.rows + rows
            index_cost = self._index_join_cost(node, pairs, left, right, rows)
            if index_cost is not None:
                cost = min(cost, index_cost)
        else:
            sel = self.selectivity(node.predicate)
            rows = left.rows * right.rows * sel
            cost = left.cost + right.cost + left.rows * max(right.rows, 1.0)
        if node.kind in (JoinKind.SEMI, JoinKind.ANTI):
            rows = min(rows, left.rows)
        return Estimate(rows, cost)

    def _index_join_cost(self, node, pairs, left, right, rows):
        """Cost of serving this join as an index nested loop, if possible
        (mirrors the planner's access-path choice)."""
        from repro.optimizer.access_paths import choose_join_side

        left_keys = [pair[0] for pair in pairs]
        right_keys = [pair[1] for pair in pairs]
        best = None
        right_side = choose_join_side(node.right, right_keys, self.catalog)
        if right_side is not None:
            matches = max(
                1.0, right.rows / max(1, right_side.index.distinct_key_count())
            )
            best = left.cost + left.rows * (1.0 + matches) + rows
        left_side = choose_join_side(node.left, left_keys, self.catalog)
        if left_side is not None:
            matches = max(
                1.0, left.rows / max(1, left_side.index.distinct_key_count())
            )
            candidate = right.cost + right.rows * (1.0 + matches) + rows
            if best is None or candidate < best:
                best = candidate
        return best

    def _estimate_gapply(self, node: GApply, group_rows: float) -> Estimate:
        outer = self.estimate(node.outer, group_rows)
        groups = self._distinct_rows(list(node.grouping_columns), outer.rows)
        groups = min(groups, max(outer.rows, 1.0))
        avg_group = outer.rows / max(groups, 1.0)
        per_group = self.estimate(node.per_group, max(avg_group, 1.0))
        # Partition phase buffers every outer row: width-proportional copy.
        partition_cost = outer.cost + outer.rows * (
            1.0 + WIDTH_FACTOR * _width(node.outer)
        )
        execution_cost = groups * (per_group.cost + 2.0)
        return Estimate(
            groups * per_group.rows, partition_cost + execution_cost
        )
