"""The Volcano-style transformation engine.

Rules propose semantics-preserving alternatives for individual nodes; the
engine splices them into the enclosing tree, explores the resulting space
to a fixpoint (with a safety cap), costs every alternative with the
Section-4.4 model, and returns the cheapest plan.

The paper observes that its rules "either push GApply down in the join
tree, or altogether eliminate GApply, or add new selections and projections
in the outer subtree ... none of which can be reversed by any of the other
rules. Hence, successive firing of rules will terminate." The engine also
deduplicates explored trees structurally, so even rule sets with inverse
pairs terminate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.operators import LogicalOperator
from repro.errors import OptimizerError
from repro.optimizer.cost import CostModel, Estimate
from repro.optimizer.rules import DEFAULT_RULES
from repro.optimizer.rules.base import Rule, RuleContext
from repro.storage.catalog import Catalog

DEFAULT_MAX_ALTERNATIVES = 128


def rewrite_everywhere(
    tree: LogicalOperator, rule: Rule, context: RuleContext
) -> list[LogicalOperator]:
    """All trees obtained by applying ``rule`` at exactly one node."""
    results: list[LogicalOperator] = list(rule.apply(tree, context))
    children = tree.children()
    for index, child in enumerate(children):
        for new_child in rewrite_everywhere(child, rule, context):
            new_children = list(children)
            new_children[index] = new_child
            try:
                rebuilt = tree.with_children(tuple(new_children))
                rebuilt.schema  # force validation
            except Exception:
                continue
            results.append(rebuilt)
    return results


@dataclass(frozen=True)
class RuleFiring:
    """Exploration statistics for one rule: how many rewrites it proposed
    across the whole search, and how many were new (not structurally equal
    to an already-seen alternative)."""

    rule: str
    proposed: int
    kept: int

    def to_dict(self) -> dict:
        return {"rule": self.rule, "proposed": self.proposed, "kept": self.kept}


@dataclass
class OptimizationReport:
    """Outcome of an optimization run: the chosen plan plus provenance.

    ``fired`` is one reconstructed rule sequence leading to the chosen
    plan; ``rule_trace`` is the full exploration ledger (every rule with
    its proposed/kept counts), and ``truncated`` reports whether the
    alternative cap cut the search short — both feed EXPLAIN output.
    """

    best: LogicalOperator
    best_estimate: Estimate
    original_estimate: Estimate
    explored: int
    fired: list[str] = field(default_factory=list)
    rule_trace: list[RuleFiring] = field(default_factory=list)
    truncated: bool = False

    @property
    def improved(self) -> bool:
        return self.best_estimate.cost < self.original_estimate.cost


class Optimizer:
    """Exhaustive (capped) rule application + cost-based plan choice."""

    def __init__(
        self,
        catalog: Catalog,
        rules: list[Rule] | None = None,
        max_alternatives: int = DEFAULT_MAX_ALTERNATIVES,
    ):
        self.catalog = catalog
        self.rules = list(DEFAULT_RULES if rules is None else rules)
        self.max_alternatives = max_alternatives

    def explore(self, plan: LogicalOperator) -> list[LogicalOperator]:
        """Every distinct plan reachable by rule application (incl. input)."""
        ordered, _, _ = self._explore_traced(plan)
        return ordered

    def _explore_traced(
        self, plan: LogicalOperator
    ) -> tuple[list[LogicalOperator], list[RuleFiring], bool]:
        """Exploration plus the per-rule proposed/kept ledger and whether
        the alternative cap truncated the search."""
        context = RuleContext(self.catalog)
        seen: set[LogicalOperator] = {plan}
        ordered: list[LogicalOperator] = [plan]
        frontier: list[LogicalOperator] = [plan]
        stats = {rule.name: [0, 0] for rule in self.rules}
        truncated = len(ordered) >= self.max_alternatives
        while frontier and not truncated:
            tree = frontier.pop(0)
            for rule in self.rules:
                tally = stats[rule.name]
                for alternative in rewrite_everywhere(tree, rule, context):
                    tally[0] += 1
                    if alternative in seen:
                        continue
                    seen.add(alternative)
                    tally[1] += 1
                    ordered.append(alternative)
                    frontier.append(alternative)
                    if len(ordered) >= self.max_alternatives:
                        truncated = True
                if truncated:
                    break
        trace = [
            RuleFiring(name, proposed, kept)
            for name, (proposed, kept) in stats.items()
        ]
        return ordered, trace, truncated

    def optimize(self, plan: LogicalOperator) -> OptimizationReport:
        """Pick the cheapest alternative under the Section-4.4 cost model."""
        model = CostModel(self.catalog)
        original = model.estimate(plan)
        alternatives, rule_trace, truncated = self._explore_traced(plan)
        best = plan
        best_estimate = original
        for alternative in alternatives[1:]:
            if alternative.schema != plan.schema:
                raise OptimizerError(
                    "rule produced a plan with a different output schema:\n"
                    f"  original: {plan.schema!r}\n"
                    f"  rewritten: {alternative.schema!r}"
                )
            estimate = model.estimate(alternative)
            if estimate.cost < best_estimate.cost:
                best = alternative
                best_estimate = estimate
        fired = _diff_rule_trace(plan, best, self.rules, self.catalog)
        return OptimizationReport(
            best=best,
            best_estimate=best_estimate,
            original_estimate=original,
            explored=len(alternatives),
            fired=fired,
            rule_trace=rule_trace,
            truncated=truncated,
        )


def _diff_rule_trace(
    original: LogicalOperator,
    best: LogicalOperator,
    rules: list[Rule],
    catalog: Catalog,
) -> list[str]:
    """Reconstruct one sequence of rule firings leading to ``best``.

    Breadth-first over single firings, recording the rule names along the
    found path; purely informational (explain output).
    """
    if best == original:
        return []
    context = RuleContext(catalog)
    frontier: list[tuple[LogicalOperator, list[str]]] = [(original, [])]
    seen = {original}
    budget = 512
    while frontier and budget > 0:
        tree, path = frontier.pop(0)
        for rule in rules:
            for alternative in rewrite_everywhere(tree, rule, context):
                budget -= 1
                if alternative == best:
                    return path + [rule.name]
                if alternative not in seen and len(path) < 6:
                    seen.add(alternative)
                    frontier.append((alternative, path + [rule.name]))
    return ["<trace unavailable>"]


def apply_rule_once(
    plan: LogicalOperator, rule: Rule, catalog: Catalog
) -> LogicalOperator | None:
    """First rewrite of ``plan`` by ``rule``, or None. Used by the Table-1
    harness, which measures each rule's effect in isolation."""
    context = RuleContext(catalog)
    rewrites = rewrite_everywhere(plan, rule, context)
    return rewrites[0] if rewrites else None


def optimize(
    plan: LogicalOperator,
    catalog: Catalog,
    rules: list[Rule] | None = None,
    max_alternatives: int = DEFAULT_MAX_ALTERNATIVES,
) -> OptimizationReport:
    """Convenience wrapper around :class:`Optimizer`."""
    return Optimizer(catalog, rules, max_alternatives).optimize(plan)
