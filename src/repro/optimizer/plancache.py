"""Bounded, thread-safe plan cache with adaptive re-optimization.

The serve layer's workload is the paper's workload at production scale:
the same parameterized publishing-query shapes (Fig-8 formulations,
GApply views) arriving over and over, each submission paying full
parse/bind/optimize. This module caches the *optimized logical plan* of
each query shape and replays it for every later arrival of that shape.

Key design points:

* **Key = normalized shape, not text.** The normalizer
  (:mod:`repro.sql.normalize`) extracts literals into ``$N`` markers and
  the printer renders the parameterized AST to canonical text; the cache
  key is a digest of that text plus the parameter *type* signature, the
  catalog version, and the planner-option fields that steer logical
  optimization. Two textually different queries with the same shape share
  an entry; a catalog mutation (DDL, inserts — anything that bumps
  ``Catalog.version``) makes every old key unreachable, so a stale plan
  can never be looked up. Unreachable entries are swept out eagerly on
  the next store.

* **Cached artifact = optimized logical template.** Entries store the
  optimizer's chosen plan with :class:`~repro.algebra.expressions.\
  BindParameter` markers in literal positions. Execution substitutes the
  current parameter vector (markers become plain ``Literal`` nodes — a
  pure tree rewrite) and lowers the result with the per-call
  :class:`~repro.optimizer.planner.Planner`, so physical knobs (engine,
  backends, batch sizes, index usage) stay per-execution and are *not*
  part of the key. Because ``BindParameter`` subclasses ``Literal``, the
  template optimization is bit-for-bit the optimization the literal query
  would get — cached and cold runs produce identical plans, rows,
  counters, and metrics.

* **Runtime feedback.** Each entry keeps the optimizer's root-row
  estimate (computed against the creation-time seed values) and compares
  it with the actual root cardinality of every execution using the
  q-error from the cardinality ratchet
  (``tests/observe/test_cardinality_qerror.py``). When the q-error
  drifts past the entry's threshold the owner re-optimizes the template
  with the *current* parameters as seeds and swaps the entry in place.
  The per-entry threshold doubles after each re-plan so an entry whose
  estimates are simply poor cannot thrash the optimizer.
"""

from __future__ import annotations

import dataclasses
import hashlib
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable

from repro.algebra.expressions import (
    AggregateCall,
    And,
    BindParameter,
    Expression,
    Literal,
    Or,
)
from repro.algebra.operators import LogicalOperator
from repro.errors import PlanError
from repro.observe.metrics import LockedCounters

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.optimizer.engine import OptimizationReport
    from repro.optimizer.planner import PlannerOptions
    from repro.sql.ast import AstQuery

#: Re-plan when max(est/actual, actual/est) (smoothed +1) exceeds this.
DEFAULT_QERROR_THRESHOLD = 4.0
#: Default number of cached templates per Database.
DEFAULT_CAPACITY = 256


def q_error(estimated: float, actual: float) -> float:
    """Symmetric relative cardinality error, smoothed against zeros.

    Same formula as the cardinality ratchet in
    ``tests/observe/test_cardinality_qerror.py``: 1.0 is perfect, k means
    off by a factor of k in either direction.
    """
    return max(
        (estimated + 1.0) / (actual + 1.0), (actual + 1.0) / (estimated + 1.0)
    )


@dataclass(frozen=True)
class PlanKey:
    """Identity of a cached plan.

    ``digest`` hashes the printer-canonicalized parameterized SQL text;
    ``type_tags`` is one tag per parameter (int vs float changes
    arithmetic semantics, str vs int changes inferred schema types);
    ``catalog_version`` pins the entry to the catalog state it was
    planned against; ``options_tag`` fingerprints the planner-option
    fields that change *logical* optimization (disabled rules and the
    exploration cap) — physical knobs deliberately excluded.
    """

    digest: str
    type_tags: tuple[str, ...]
    catalog_version: int
    options_tag: str


def text_digest(canonical_sql: str) -> str:
    return hashlib.sha256(canonical_sql.encode("utf-8")).hexdigest()


def options_tag(options: "PlannerOptions | None") -> str:
    """Fingerprint of the option fields that steer logical optimization."""
    if options is None:
        return ""
    parts = []
    if options.disabled_rules:
        parts.append("rules-off=" + ",".join(sorted(options.disabled_rules)))
    if options.optimizer_max_alternatives is not None:
        parts.append(f"max-alt={options.optimizer_max_alternatives}")
    return ";".join(parts)


@dataclass
class CachedPlan:
    """One cache entry: the template plan plus runtime feedback state.

    Mutable feedback fields are only touched by :class:`PlanCache`
    methods under the cache lock; readers take immutable references
    (``template``, ``report``) and never see a half-written entry.
    """

    key: PlanKey
    #: Parameterized statement AST (seeds = creation-time values); kept so
    #: re-optimization can re-seed and re-bind without re-parsing.
    statement: "AstQuery"
    #: Optimized logical plan containing BindParameter markers.
    template: LogicalOperator
    report: "OptimizationReport"
    param_count: int
    #: Optimizer's root row estimate under the creation-time seeds.
    est_rows: float
    #: Current re-plan threshold; doubles after each re-plan (backoff).
    qerror_threshold: float
    executions: int = 0
    hits: int = 0
    replans: int = 0
    max_q_error: float = 1.0
    last_q_error: float = 1.0
    last_actual_rows: int | None = None

    def describe(self) -> dict[str, Any]:
        return {
            "key": self.key.digest[:12],
            "params": self.param_count,
            "catalog_version": self.key.catalog_version,
            "est_rows": self.est_rows,
            "executions": self.executions,
            "hits": self.hits,
            "replans": self.replans,
            "max_q_error": self.max_q_error,
            "last_q_error": self.last_q_error,
            "last_actual_rows": self.last_actual_rows,
            "qerror_threshold": self.qerror_threshold,
        }


class PlanCache:
    """Bounded LRU of :class:`CachedPlan`, safe for concurrent use.

    One lock guards the LRU order, the entries, and per-entry feedback
    state; counters live in a :class:`LockedCounters` so
    ``Service.stats()`` can snapshot them without taking the cache lock.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        qerror_threshold: float = DEFAULT_QERROR_THRESHOLD,
    ):
        if capacity < 1:
            raise PlanError(f"plan cache capacity must be >= 1, got {capacity}")
        if qerror_threshold < 1.0:
            raise PlanError(
                "q-error threshold must be >= 1.0 (1.0 is a perfect "
                f"estimate), got {qerror_threshold}"
            )
        self.capacity = capacity
        self.qerror_threshold = qerror_threshold
        self.counters = LockedCounters()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[PlanKey, CachedPlan]" = OrderedDict()
        #: Backed-off re-plan thresholds by *version-independent* plan
        #: shape, surviving the version-keyed entry invalidation that
        #: every catalog mutation causes. Without it a write-heavy
        #: workload with chronically bad estimates re-pays the re-plan
        #: probe (threshold reset to the default) after every mutation
        #: (DESIGN.md §13.4). Bounded like the entry LRU.
        self._shape_thresholds: "OrderedDict[tuple, float]" = OrderedDict()

    @staticmethod
    def _shape_key(key: PlanKey) -> tuple:
        return (key.digest, key.type_tags, key.options_tag)

    def seed_threshold(self, key: PlanKey) -> float:
        """The q-error threshold a fresh entry for ``key`` should start
        at: the shape's last backed-off threshold if this plan shape ever
        re-planned (under any catalog version), else the default."""
        with self._lock:
            remembered = self._shape_thresholds.get(self._shape_key(key))
        return self.qerror_threshold if remembered is None else remembered

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def lookup(self, key: PlanKey) -> CachedPlan | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.counters.inc("misses")
                return None
            self._entries.move_to_end(key)
            entry.hits += 1
            self.counters.inc("hits")
            return entry

    def store(self, entry: CachedPlan) -> CachedPlan:
        """Publish a fully-built entry; returns the winning entry.

        Two threads can race a cold miss on the same key — both optimize,
        the first to publish wins, and the loser adopts the winner's entry
        so feedback accounting stays on one object.
        """
        with self._lock:
            current = self._entries.get(entry.key)
            if current is not None:
                self._entries.move_to_end(entry.key)
                return current
            self._sweep_stale_locked(entry.key.catalog_version)
            self._entries[entry.key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.counters.inc("evictions")
            return entry

    def record_bypass(self) -> None:
        """Count a query that was eligible to consult the cache but ran
        uncached (``optimize=False`` or an explicit opt-out)."""
        self.counters.inc("bypass")

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def _sweep_stale_locked(self, current_version: int) -> None:
        stale = [
            key
            for key in self._entries
            if key.catalog_version != current_version
        ]
        for key in stale:
            del self._entries[key]
        if stale:
            self.counters.add_many(invalidations=len(stale))

    def invalidate_stale(self, current_version: int) -> int:
        """Drop entries planned against any other catalog version.

        Version-keyed lookups already make them unreachable; this frees
        the memory eagerly. Returns the number of entries dropped.
        """
        with self._lock:
            before = len(self._entries)
            self._sweep_stale_locked(current_version)
            return before - len(self._entries)

    def clear(self) -> int:
        with self._lock:
            dropped = len(self._entries)
            if dropped:
                self.counters.add_many(invalidations=dropped)
            self._entries.clear()
            self._shape_thresholds.clear()
            return dropped

    # ------------------------------------------------------------------
    # Runtime feedback
    # ------------------------------------------------------------------

    def record_execution(self, entry: CachedPlan, actual_rows: int) -> bool:
        """Fold one execution's actual root cardinality into the entry.

        Returns True when the q-error against the entry's planning-time
        estimate has drifted past the entry's threshold — the caller
        should re-optimize with the current parameters and call
        :meth:`replace`.
        """
        error = q_error(entry.est_rows, actual_rows)
        with self._lock:
            entry.executions += 1
            entry.last_actual_rows = actual_rows
            entry.last_q_error = error
            entry.max_q_error = max(entry.max_q_error, error)
            return error > entry.qerror_threshold

    def replace(self, old: CachedPlan, new: CachedPlan) -> CachedPlan:
        """Swap a re-optimized entry in, preserving accounting history.

        The replacement inherits the old entry's execution/hit counts and
        doubles its q-error threshold so chronically bad estimates back
        off instead of re-planning on every execution.
        """
        with self._lock:
            new.executions = old.executions
            new.hits = old.hits
            new.replans = old.replans + 1
            new.qerror_threshold = old.qerror_threshold * 2.0
            shape = self._shape_key(old.key)
            self._shape_thresholds[shape] = new.qerror_threshold
            self._shape_thresholds.move_to_end(shape)
            while len(self._shape_thresholds) > 4 * self.capacity:
                self._shape_thresholds.popitem(last=False)
            if self._entries.get(old.key) is old:
                self._entries[old.key] = new
                self._entries.move_to_end(old.key)
            self.counters.inc("replans")
            return new

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def entries(self) -> list[CachedPlan]:
        with self._lock:
            return list(self._entries.values())

    def stats(self) -> dict[str, Any]:
        data = self.counters.snapshot()
        for name in ("hits", "misses", "evictions", "invalidations",
                     "replans", "bypass"):
            data.setdefault(name, 0)
        data["size"] = len(self)
        data["capacity"] = self.capacity
        return data


# ----------------------------------------------------------------------
# Parameter substitution over optimized logical plans
# ----------------------------------------------------------------------


def substitute_parameters(
    plan: LogicalOperator, values: tuple[Any, ...]
) -> LogicalOperator:
    """Replace every ``BindParameter`` marker with the bound value.

    Pure structural rewrite: untouched subtrees are shared with the
    template (they are immutable), rebuilt nodes recompute their cached
    schemas against the new literal types.
    """

    def visit(expr: Expression) -> Expression:
        if isinstance(expr, BindParameter):
            if expr.index >= len(values):
                raise PlanError(
                    f"plan template references parameter ${expr.index + 1} "
                    f"but only {len(values)} values were bound"
                )
            return Literal(values[expr.index])
        return expr

    return _rewrite_plan(plan, visit)


def collect_parameters(plan: LogicalOperator) -> list[BindParameter]:
    """Every ``BindParameter`` in the plan, in deterministic tree order."""
    found: list[BindParameter] = []

    def visit(expr: Expression) -> Expression:
        if isinstance(expr, BindParameter):
            found.append(expr)
        return expr

    _rewrite_plan(plan, visit)
    return found


_ExprVisitor = Callable[[Expression], Expression]


def _rewrite_plan(node: LogicalOperator, visit: _ExprVisitor) -> LogicalOperator:
    """Generic bottom-up rewrite of every expression embedded in a plan.

    Walks the operator dataclass fields: child operators recurse,
    expressions (including those inside ``(expr, name)`` projection pairs
    and ``AggregateCall`` arguments) go through ``visit``, everything
    else (names, flags, counts) passes through untouched.
    """
    changes: dict[str, Any] = {}
    for spec in dataclasses.fields(node):
        value = getattr(node, spec.name)
        rewritten = _rewrite_value(value, visit)
        if rewritten is not value:
            changes[spec.name] = rewritten
    if not changes:
        return node
    return dataclasses.replace(node, **changes)


def _rewrite_value(value: Any, visit: _ExprVisitor) -> Any:
    if isinstance(value, LogicalOperator):
        return _rewrite_plan(value, visit)
    if isinstance(value, Expression):
        return _rewrite_expression(value, visit)
    if isinstance(value, AggregateCall):
        if value.argument is None:
            return value
        argument = _rewrite_expression(value.argument, visit)
        if argument is value.argument:
            return value
        return AggregateCall(value.function, argument, value.distinct)
    if isinstance(value, tuple):
        rewritten = tuple(_rewrite_value(item, visit) for item in value)
        if all(a is b for a, b in zip(rewritten, value)):
            return value
        return rewritten
    return value


def _rewrite_expression(expr: Expression, visit: _ExprVisitor) -> Expression:
    # And/Or take *operands in __init__, so dataclasses.replace would
    # mis-call them — rebuild explicitly. Everything else is a plain
    # frozen dataclass whose expression-valued fields recurse.
    if isinstance(expr, (And, Or)):
        operands = tuple(
            _rewrite_expression(op, visit) for op in expr.operands
        )
        if all(a is b for a, b in zip(operands, expr.operands)):
            return visit(expr)
        return visit(type(expr)(*operands))
    if not dataclasses.is_dataclass(expr):
        return visit(expr)
    changes: dict[str, Any] = {}
    for spec in dataclasses.fields(expr):
        value = getattr(expr, spec.name)
        rewritten = _rewrite_expr_value(value, visit)
        if rewritten is not value:
            changes[spec.name] = rewritten
    if not changes:
        return visit(expr)
    return visit(dataclasses.replace(expr, **changes))


def _rewrite_expr_value(value: Any, visit: _ExprVisitor) -> Any:
    if isinstance(value, Expression):
        return _rewrite_expression(value, visit)
    if isinstance(value, tuple):
        rewritten = tuple(_rewrite_expr_value(item, visit) for item in value)
        if all(a is b for a, b in zip(rewritten, value)):
            return value
        return rewritten
    return value
