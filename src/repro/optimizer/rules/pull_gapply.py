"""Pulling GApply above a join — the [12] rule Section 4.3 cites.

Galindo-Legaria & Joshi's SegmentApply work includes a rule to *pull* the
groupwise processing above a join; together with the invariant-grouping
push rule, the optimizer can place GApply at any legal height of the join
chain and pick by cost.

Pattern::

    Join(GApply(T, C, PGQ), R, C = key(R))

where the join equi-matches GApply's grouping-key copies against a
*unique key* of a base-table side ``R`` (uniqueness is what preserves
multiset semantics: each group matches at most one R row, so joining
before or after grouping agrees). Rewrite::

    GApply(Join(T, R), C, PGQ x (select distinct R-columns from $group))

The R columns are constant within each group of the widened outer, so the
per-group query reproduces them by crossing its old output with the
one-row distinct over the group — the exact inverse of the push rule's
Remap adaptation.
"""

from __future__ import annotations

from repro.algebra.expressions import ColumnRef, Comparison, ComparisonOp, conjoin
from repro.algebra.operators import (
    Apply,
    Distinct,
    GApply,
    GroupScan,
    Join,
    JoinKind,
    LogicalOperator,
    Prune,
    Select,
    TableScan,
    replace_group_scans,
)
from repro.optimizer.rules.base import Rule, RuleContext


def _base_scan(node: LogicalOperator) -> TableScan | None:
    current = node
    while isinstance(current, (Select, Prune)):
        current = current.children()[0]
    return current if isinstance(current, TableScan) else None


class PullGApplyAboveJoin(Rule):
    name = "pull_gapply_above_join"

    def apply(
        self, node: LogicalOperator, context: RuleContext
    ) -> list[LogicalOperator]:
        if not isinstance(node, Join) or node.kind != JoinKind.INNER:
            return []
        if not isinstance(node.left, GApply):
            return []
        gapply = node.left
        right_scan = _base_scan(node.right)
        if right_scan is None:
            return []
        pairs = node.equijoin_pairs()
        if not pairs:
            return []

        # Every equi-pair must match a grouping-key copy of the GApply
        # output against the right side, and the matched right columns must
        # form a unique key of the right table.
        key_count = len(gapply.grouping_columns)
        key_names = {
            gapply.schema[i].qualified_name: gapply.grouping_columns[i]
            for i in range(key_count)
        }
        outer_schema = gapply.outer.schema
        rebuilt_conjuncts = []
        right_columns = []
        for left_ref, right_ref in pairs:
            left_column = gapply.schema.column(left_ref)
            grouping_ref = key_names.get(left_column.qualified_name)
            if grouping_ref is None:
                return []  # joins on a per-group output column: not liftable
            right_columns.append(node.right.schema.column(right_ref).name)
            rebuilt_conjuncts.append(
                Comparison(
                    ComparisonOp.EQ,
                    ColumnRef(outer_schema.column(grouping_ref).qualified_name),
                    ColumnRef(right_ref),
                )
            )
        if not context.catalog.has_table(right_scan.table_name):
            return []
        if not context.catalog.is_primary_key(right_scan.table_name, right_columns):
            return []
        # Residual (non-equi) conjuncts may reference per-group outputs;
        # only a pure key-equijoin is safely liftable.
        residual = [
            conjunct
            for conjunct in _conjunct_list(node)
            if not _is_used_pair(conjunct, pairs)
        ]
        if residual:
            return []

        try:
            new_outer = Join(
                gapply.outer, node.right, conjoin(rebuilt_conjuncts), JoinKind.INNER
            )
            widened = new_outer.schema
            pgq = replace_group_scans(gapply.per_group, widened)
            right_refs = tuple(
                column.qualified_name for column in node.right.schema
            )
            constants = Distinct(Prune(GroupScan(gapply.group_variable, widened), right_refs))
            new_pgq = Apply(pgq, constants)
            rewritten = GApply(
                new_outer,
                gapply.grouping_columns,
                new_pgq,
                gapply.group_variable,
            )
            if rewritten.schema != node.schema:
                return []
        except Exception:
            return []
        return [rewritten]


def _conjunct_list(join: Join):
    from repro.algebra.expressions import conjuncts

    return conjuncts(join.predicate)


def _is_used_pair(conjunct, pairs) -> bool:
    if not (
        isinstance(conjunct, Comparison)
        and conjunct.op is ComparisonOp.EQ
        and isinstance(conjunct.left, ColumnRef)
        and isinstance(conjunct.right, ColumnRef)
    ):
        return False
    names = {conjunct.left.name, conjunct.right.name}
    return any({a, b} == names for a, b in pairs)
