"""Pushing GApply below joins: the invariant grouping rule (Section 4.3).

Generalizes Chaudhuri-Shim invariant grouping from groupby to GApply.
If a node ``n`` of the left-deep join tree under GApply satisfies
Definition 2 — (1) ``n`` exposes the grouping and gp-eval columns, (2) all
of ``n``'s join columns are grouping columns, (3) every join above ``n`` is
a foreign-key join — then the GApply (with its per-group query *adapted* to
the columns available at ``n``) can run directly above ``n``, and the
remaining joins run on GApply's (usually far smaller) output (Theorem 2).

Column adaptation: project items in the per-group query whose source
columns are not available at ``n`` are dropped; they are re-attached by the
joins above and a final :class:`Remap` restores the original output schema
exactly.
"""

from __future__ import annotations

from repro.algebra.expressions import ColumnRef
from repro.algebra.operators import (
    GApply,
    Join,
    LogicalOperator,
    Project,
    Prune,
    Remap,
    replace_group_scans,
)
from repro.optimizer.properties import (
    invariant_grouping_node,
)
from repro.optimizer.rules.base import Rule, RuleContext


class PushGApplyBelowJoin(Rule):
    name = "invariant_grouping"

    def apply(
        self, node: LogicalOperator, context: RuleContext
    ) -> list[LogicalOperator]:
        if not isinstance(node, GApply) or not isinstance(node.outer, Join):
            return []
        target = invariant_grouping_node(node, context.catalog)
        if target is None:
            return []
        available = target.operator.schema
        outer_schema = node.outer.schema

        # ---- adapt the per-group query to the columns available at n ----
        adapted, dropped = _adapt_per_group(
            node.per_group, available, outer_schema
        )
        if adapted is None:
            return []
        adapted = replace_group_scans(adapted, available)
        try:
            pushed = GApply(
                target.operator,
                node.grouping_columns,
                adapted,
                node.group_variable,
            )
        except Exception:
            return []

        # ---- rebuild the join chain above the relocated GApply ----
        rebuilt: LogicalOperator = pushed
        for join in reversed(target.joins_above):
            rebuilt = Join(rebuilt, join.right, join.predicate, join.kind)

        # ---- restore the original output schema with a Remap ----
        items = []
        pushed_schema = pushed.schema
        key_count = len(node.grouping_columns)
        original_schema = node.schema
        for position, column in enumerate(original_schema):
            if position < key_count:
                items.append(
                    (pushed_schema[position].qualified_name, column)
                )
                continue
            name = column.qualified_name
            if name in dropped:
                items.append((dropped[name], column))
            else:
                items.append((name, column))
        try:
            remapped = Remap(rebuilt, tuple(items))
            if remapped.schema != original_schema:
                return []
        except Exception:
            return []
        return [remapped]


def _adapt_per_group(per_group, available, outer_schema):
    """Drop unavailable columns from the PGQ's top-level projection.

    Returns ``(adapted_tree, dropped)`` where ``dropped`` maps original
    output column names to the source reference that the joins above will
    re-supply. Returns ``(None, {})`` when the per-group query references
    unavailable columns anywhere it cannot be adapted.
    """
    dropped: dict[str, str] = {}

    def unavailable(reference: str) -> bool:
        return outer_schema.has(reference) and not available.has(reference)

    # Fuse binder-generated Project stacks so the top-level projection is
    # the real output shape.
    from repro.optimizer.rules.column_pruning import compose_projects

    while isinstance(per_group, Project) and isinstance(per_group.child, Project):
        per_group = compose_projects(per_group, per_group.child)

    # Only the top-level projection may need adaptation; anything deeper
    # referencing unavailable columns disqualifies the rewrite (those are
    # gp-eval columns, and Definition 2 should already have excluded them,
    # but unions/subqueries can hide references the property misses).
    if isinstance(per_group, Project):
        kept = []
        for expression, name in per_group.items:
            references = expression.columns()
            if any(unavailable(r) for r in references):
                if isinstance(expression, ColumnRef) and len(references) == 1:
                    dropped[name] = expression.name
                    continue
                return None, {}
            kept.append((expression, name))
        if not kept:
            return None, {}
        adapted: LogicalOperator = Project(per_group.child, tuple(kept))
    elif isinstance(per_group, Prune):
        kept_refs = []
        for reference in per_group.references:
            if unavailable(reference):
                name = per_group.schema.column(reference).qualified_name
                dropped[name] = reference
            else:
                kept_refs.append(reference)
        if not kept_refs:
            return None, {}
        adapted = Prune(per_group.child, tuple(kept_refs))
    else:
        adapted = per_group

    # Interior hygiene Prunes (inserted by the binder) may still carry the
    # dropped columns as pure passthroughs; strip them. Anything *else*
    # still referencing an unavailable column disqualifies the rewrite.
    def strip_prunes(node: LogicalOperator) -> LogicalOperator:
        if isinstance(node, Prune):
            kept = tuple(
                reference
                for reference in node.references
                if not unavailable(reference)
            )
            if kept and kept != node.references:
                return Prune(node.child, kept)
        return node

    adapted = adapted.transform_up(strip_prunes)

    # Verify no remaining unavailable references below the adapted root.
    from repro.optimizer.properties import referenced_columns

    for reference in referenced_columns(adapted):
        if unavailable(reference):
            return None, {}
    return adapted, dropped
