"""Rule protocol for the Volcano-style transformation engine.

A rule inspects a single plan node and proposes *alternative* subtrees with
identical semantics (same multiset of rows, same output schema). The engine
splices alternatives into the enclosing tree and costs the resulting plans;
rules never mutate anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.operators import LogicalOperator
from repro.storage.catalog import Catalog


@dataclass
class RuleContext:
    """State rules may consult: the catalog (keys, foreign keys, stats)."""

    catalog: Catalog


class Rule:
    """Base class. ``name`` identifies the rule in explain output and in the
    Table-1 benchmark harness, which fires rules individually."""

    name: str = "rule"

    def apply(
        self, node: LogicalOperator, context: RuleContext
    ) -> list[LogicalOperator]:
        """Alternatives for ``node`` (empty when the rule does not match)."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Rule {self.name}>"
