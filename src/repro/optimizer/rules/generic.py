"""The paper's two rules that need no traversal of the per-group query.

Section 4, "rules that do not need the per-group query to be traversed":

* ``sigma(RE1 GA_C RE2) = RE1 GA_C sigma(RE2)`` when the selection involves
  only columns returned by RE2 (the per-group query's output), and

* ``pi_{C u B}(RE1 GA_C RE2) = RE1 GA_C pi_B(RE2)`` — a projection above
  GApply that keeps the grouping columns and a subset of the per-group
  output moves inside the per-group query.
"""

from __future__ import annotations

from repro.algebra.operators import (
    GApply,
    LogicalOperator,
    Prune,
    Select,
)
from repro.optimizer.rules.base import Rule, RuleContext


class PushSelectIntoPerGroup(Rule):
    """sigma over GApply -> sigma inside the per-group query."""

    name = "push_select_into_per_group"

    def apply(
        self, node: LogicalOperator, context: RuleContext
    ) -> list[LogicalOperator]:
        if not isinstance(node, Select) or not isinstance(node.child, GApply):
            return []
        gapply = node.child
        pgq_schema = gapply.per_group.schema
        references = node.predicate.columns()
        if not references:
            return []
        if not all(pgq_schema.has(reference) for reference in references):
            return []
        new_per_group = Select(gapply.per_group, node.predicate)
        return [
            GApply(
                gapply.outer,
                gapply.grouping_columns,
                new_per_group,
                gapply.group_variable,
            )
        ]


class PushProjectIntoPerGroup(Rule):
    """pi_{C u B} over GApply -> pi_B inside the per-group query.

    Matches a :class:`Prune` (qualifier-preserving projection) above GApply
    whose kept references split into the grouping-key copies and per-group
    output columns; the per-group part moves inside. The Prune on top is
    retained so the overall output schema is unchanged, but the narrowed
    per-group query now produces less data per group.
    """

    name = "push_project_into_per_group"

    def apply(
        self, node: LogicalOperator, context: RuleContext
    ) -> list[LogicalOperator]:
        if not isinstance(node, Prune) or not isinstance(node.child, GApply):
            return []
        gapply = node.child
        pgq_schema = gapply.per_group.schema
        key_names = {
            gapply.schema[i].qualified_name
            for i in range(len(gapply.grouping_columns))
        }
        pgq_references: list[str] = []
        for reference in node.references:
            column = gapply.schema.column(reference)
            if column.qualified_name in key_names:
                continue
            if pgq_schema.has(reference):
                pgq_references.append(reference)
            else:
                return []  # reference into neither keys nor PGQ output
        if not pgq_references or len(pgq_references) == len(pgq_schema):
            return []
        new_per_group = Prune(gapply.per_group, tuple(pgq_references))
        rewritten = GApply(
            gapply.outer,
            gapply.grouping_columns,
            new_per_group,
            gapply.group_variable,
        )
        return [Prune(rewritten, node.references)]
