"""Classical selection pushdown.

The covering-range rule inserts a selection *on top of* the GApply outer
query; the paper then notes "the selection that is inserted on top of the
outer tree can then be pushed down using the traditional rules for doing
so". These are those traditional rules: pushing a Select through joins,
other selects, prunes and unions. They matter — the measured benefit of
selection-before-GApply comes from filtering *before* the outer join work.
"""

from __future__ import annotations

from repro.algebra.expressions import conjoin, conjuncts
from repro.algebra.operators import (
    Join,
    JoinKind,
    LogicalOperator,
    Prune,
    Select,
    Union,
    UnionAll,
)
from repro.optimizer.rules.base import Rule, RuleContext


class SelectPushdown(Rule):
    """Push a Select toward the leaves (joins, prunes, unions, selects)."""

    name = "select_pushdown"

    def apply(
        self, node: LogicalOperator, context: RuleContext
    ) -> list[LogicalOperator]:
        if not isinstance(node, Select):
            return []
        child = node.child
        if isinstance(child, Join):
            return self._through_join(node, child)
        if isinstance(child, Select):
            # Merge adjacent selects so conjuncts push independently.
            merged = conjoin([child.predicate, node.predicate])
            return [Select(child.child, merged)]
        if isinstance(child, Prune):
            if all(child.child.schema.has(r) for r in node.predicate.columns()):
                return [Prune(Select(child.child, node.predicate), child.references)]
            return []
        if isinstance(child, (Union, UnionAll)):
            pushed = type(child)(
                tuple(Select(branch, node.predicate) for branch in child.inputs)
            )
            return [pushed]
        return []

    @staticmethod
    def _through_join(node: Select, join: Join) -> list[LogicalOperator]:
        if join.kind not in (JoinKind.INNER, JoinKind.CROSS):
            return []
        left_schema = join.left.schema
        right_schema = join.right.schema
        left_conjuncts = []
        right_conjuncts = []
        both_sides = []
        for conjunct in conjuncts(node.predicate):
            references = conjunct.columns()
            if references and all(left_schema.has(r) for r in references):
                left_conjuncts.append(conjunct)
            elif references and all(right_schema.has(r) for r in references):
                right_conjuncts.append(conjunct)
            else:
                # Straddles both sides (or is constant): becomes part of the
                # join predicate — this builds the paper's annotated join
                # tree out of FROM-comma-WHERE formulations.
                both_sides.append(conjunct)
        if not left_conjuncts and not right_conjuncts and not both_sides:
            return []
        new_left = join.left
        if left_conjuncts:
            new_left = Select(new_left, conjoin(left_conjuncts))
        new_right = join.right
        if right_conjuncts:
            new_right = Select(new_right, conjoin(right_conjuncts))
        predicate = conjoin([join.predicate, *both_sides])
        kind = JoinKind.INNER if predicate is not None else join.kind
        return [Join(new_left, new_right, predicate, kind)]
