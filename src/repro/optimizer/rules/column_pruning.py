"""Classical column pruning: narrow a Prune under a consuming operator.

The binder inserts schema-hygiene :class:`~repro.algebra.operators.Prune`
nodes (e.g. to drop internal subquery-result columns). These carry *all*
original columns, which makes the per-group query look like it references
everything and blocks the projection-before-GApply rule. This rule narrows
a Prune to the columns its parent actually consumes:

* ``GroupBy(Prune(x, refs))``  -> keep only grouping keys + aggregate args
* ``Project(Prune(x, refs))``  -> keep only columns in the project items
* ``Select(Prune(x, refs))``   -> fold predicate columns in, narrowing to
  predicate + whatever a further ancestor consumes is handled by repeated
  application through the other two shapes.
"""

from __future__ import annotations

from repro.algebra.operators import (
    GroupBy,
    LogicalOperator,
    Project,
    Prune,
)
from repro.optimizer.rules.base import Rule, RuleContext


def compose_projects(outer: Project, inner: Project) -> Project:
    """Fuse ``Project(Project(x))`` into one Project by substitution.

    The outer items reference the inner's output names; substituting each
    reference with the inner's defining expression yields an equivalent
    single projection over the inner's child.
    """
    mapping = {name: expression for expression, name in inner.items}
    fused = tuple(
        (expression.substitute(mapping), name)
        for expression, name in outer.items
    )
    return Project(inner.child, fused)


class CollapseProject(Rule):
    """Project-over-Project fusion (always sound, always at least as
    cheap; keeps binder-generated rename stacks from hiding patterns the
    GApply rules match on)."""

    name = "collapse_project"

    def apply(
        self, node: LogicalOperator, context: RuleContext
    ) -> list[LogicalOperator]:
        if isinstance(node, Project) and isinstance(node.child, Project):
            return [compose_projects(node, node.child)]
        return []


def _narrow(prune: Prune, needed_references: set[str]) -> Prune | None:
    """Prune restricted to the references its parent needs; None if no
    narrowing is possible."""
    schema = prune.schema
    needed_positions: set[int] = set()
    for reference in needed_references:
        if schema.has(reference):
            needed_positions.add(schema.index_of(reference))
    kept = [
        reference
        for index, reference in enumerate(prune.references)
        if index in needed_positions
    ]
    if not kept:
        # A parent needing zero columns (count(*)) still requires rows to
        # exist; keep the first column as the cheapest carrier.
        kept = [prune.references[0]]
    if len(kept) == len(prune.references):
        return None
    return Prune(prune.child, tuple(kept))


class NarrowPrune(Rule):
    name = "narrow_prune"

    def apply(
        self, node: LogicalOperator, context: RuleContext
    ) -> list[LogicalOperator]:
        if isinstance(node, GroupBy) and isinstance(node.child, Prune):
            needed: set[str] = set(node.keys)
            for aggregate in node.aggregates:
                needed |= aggregate.columns()
            narrowed = _narrow(node.child, needed)
            if narrowed is None:
                return []
            return [GroupBy(narrowed, node.keys, node.aggregates)]
        if isinstance(node, Project) and isinstance(node.child, Prune):
            needed = set()
            for expression, _ in node.items:
                needed |= expression.columns()
            narrowed = _narrow(node.child, needed)
            if narrowed is None:
                return []
            return [Project(narrowed, node.items)]
        return []
