"""Group selection rules (Section 4.2, Figures 5 and 6).

These rules target per-group queries that treat the group as a complex
object and either return the *whole group* or nothing, depending on a
predicate:

* **Exists selection** — "find all suppliers that supply some expensive
  part": the per-group query returns the group iff some tuple satisfies a
  selection condition S. Instead of constructing every group and testing
  it, evaluate S against the outer query, project the distinct group ids,
  and join the ids back to the outer query to reconstruct exactly the
  qualifying groups (Figure 5/6).

* **Aggregate selection** — "suppliers whose average part price exceeds x":
  same two-phase idea, but the qualifying ids come from a GroupBy computing
  the aggregate and filtering on it. The win the paper describes: per-key
  sums/counts are tiny compared to hash-partitioning whole groups.

Both rewrites produce exactly the original GApply's output schema: the key
copies carry the group-variable qualifier (they collide with the returned
group columns by construction), which the rewrite recreates with an
:class:`Alias` over the extracted ids.

The canonical group-selection per-group-query shape recognized here is::

    Apply(outer=GroupScan, inner=Exists(<test tree over GroupScan>))

where the test tree is a chain of Select / Prune / Project / Distinct over
a GroupScan (exists variant), or such a chain over a scalar
``Aggregate(GroupScan)`` (aggregate variant). This is what the binder
produces for ``WHERE EXISTS (...)`` / aggregate HAVING-style group
predicates over the group variable.
"""

from __future__ import annotations

from repro.algebra.expressions import (
    Expression,
    col,
    conjoin,
    eq,
)
from repro.algebra.operators import (
    Alias,
    Apply,
    Distinct,
    Exists,
    GApply,
    GroupBy,
    GroupScan,
    Join,
    LogicalOperator,
    Project,
    Prune,
    Select,
)
from repro.optimizer.rules.base import Rule, RuleContext


def _unwrap_selects(
    node: LogicalOperator,
) -> tuple[list[Expression], LogicalOperator]:
    """Strip Select/Prune/Project/Distinct wrappers, collecting predicates."""
    predicates: list[Expression] = []
    current = node
    while True:
        if isinstance(current, Select):
            predicates.append(current.predicate)
            current = current.child
        elif isinstance(current, (Prune, Project, Distinct)):
            current = current.children()[0]
        else:
            return predicates, current


def _match_group_selection(
    node: LogicalOperator,
) -> tuple[Expression | None, LogicalOperator, "Project | None"] | None:
    """Match ``[Project(...)] Apply(GroupScan, Exists(test))``.

    Returns ``(condition, test_base, projection)`` where ``condition`` is
    the AND of the selects stripped from the test tree, ``test_base`` is
    what remains (GroupScan for the exists variant; scalar GroupBy for the
    aggregate variant), and ``projection`` is an optional row-wise
    projection of the group (the shape the XML whole-subtree translation
    produces: branch constants plus payload columns). ``None`` when the
    pattern does not match.
    """
    from repro.algebra.expressions import ColumnRef as _ColumnRef
    from repro.algebra.expressions import Literal as _Literal

    projection: Project | None = None
    if isinstance(node, Project):
        if not all(
            isinstance(expression, (_ColumnRef, _Literal))
            for expression, _ in node.items
        ):
            return None
        projection = node
        node = node.child
    if not isinstance(node, Apply):
        return None
    if not isinstance(node.outer, GroupScan):
        return None
    if not isinstance(node.inner, Exists) or node.inner.negated:
        return None
    if node.bindings:
        return None
    predicates, base = _unwrap_selects(node.inner.child)
    if not predicates:
        return None
    return conjoin(predicates), base, projection


def _ids_join(
    gapply: GApply,
    qualifying_ids: LogicalOperator,
    projection: "Project | None" = None,
) -> LogicalOperator | None:
    """Join distinct qualifying group ids back to the outer query.

    ``qualifying_ids`` must output exactly the grouping columns (original
    qualifiers). Without a projection the result reproduces the GApply
    output schema directly: the id copies aliased by the group variable,
    then the full group columns. With one (the whole-subtree-with-payload
    shape), the projection is re-applied over the reconstructed rows and a
    Remap restores the exact output column identities.
    """
    from repro.algebra.expressions import ColumnRef as _ColumnRef
    from repro.algebra.operators import Remap

    outer = gapply.outer
    aliased = Alias(qualifying_ids, gapply.group_variable)
    predicates = []
    for reference in gapply.grouping_columns:
        column = outer.schema.column(reference)
        predicates.append(
            eq(
                col(f"{gapply.group_variable}.{column.name}"),
                col(column.qualified_name),
            )
        )
    try:
        joined = Join(aliased, outer, conjoin(predicates))
        if projection is None:
            if joined.schema != gapply.schema:
                return None
            return joined
        # Re-apply the row-wise projection over the reconstructed groups.
        # References are re-qualified against the outer schema so the id
        # copies on the join's left side cannot make them ambiguous.
        mapping = {}
        for column in outer.schema:
            mapping[column.name] = _ColumnRef(column.qualified_name)
        key_count = len(gapply.grouping_columns)
        items = []
        for index in range(key_count):
            key_column = gapply.schema[index]
            items.append(
                (
                    col(f"{gapply.group_variable}.{key_column.name}"),
                    f"__gskey{index}",
                )
            )
        for expression, name in projection.items:
            items.append((expression.substitute(mapping), name))
        projected = Project(joined, tuple(items))
        remap_items = []
        for index, column in enumerate(gapply.schema):
            source = (
                f"__gskey{index}"
                if index < key_count
                else projected.schema[index].qualified_name
            )
            remap_items.append((source, column))
        rewritten = Remap(projected, tuple(remap_items))
        if rewritten.schema != gapply.schema:
            return None
        return rewritten
    except Exception:
        return None


class ExistsGroupSelection(Rule):
    """Figure 5: exists-style group selection -> semijoin-style two-phase
    evaluation."""

    name = "exists_group_selection"

    def apply(
        self, node: LogicalOperator, context: RuleContext
    ) -> list[LogicalOperator]:
        if not isinstance(node, GApply):
            return []
        match = _match_group_selection(node.per_group)
        if match is None:
            return []
        condition, base, projection = match
        if not isinstance(base, GroupScan):
            return []
        outer = node.outer
        if not all(outer.schema.has(r) for r in condition.columns()):
            return []
        ids = Distinct(
            Prune(
                Select(outer, condition),
                tuple(
                    outer.schema.column(r).qualified_name
                    for r in node.grouping_columns
                ),
            )
        )
        rewritten = _ids_join(node, ids, projection)
        return [] if rewritten is None else [rewritten]


class AggregateGroupSelection(Rule):
    """Section 4.2's aggregate-condition variant: qualifying ids come from a
    GroupBy computing the aggregate, filtered on the aggregate condition."""

    name = "aggregate_group_selection"

    def apply(
        self, node: LogicalOperator, context: RuleContext
    ) -> list[LogicalOperator]:
        if not isinstance(node, GApply):
            return []
        match = _match_group_selection(node.per_group)
        if match is None:
            return []
        condition, base, projection = match
        if not isinstance(base, GroupBy) or not base.is_scalar_aggregate:
            return []
        if not isinstance(base.child, GroupScan):
            return []
        outer = node.outer
        aggregated = GroupBy(outer, node.grouping_columns, base.aggregates)
        # The condition references aggregate output names; they are produced
        # under the same names by the rebuilt GroupBy.
        if not all(
            aggregated.schema.has(r) for r in condition.columns()
        ):
            return []
        ids = Prune(
            Select(aggregated, condition),
            tuple(
                outer.schema.column(r).qualified_name
                for r in node.grouping_columns
            ),
        )
        rewritten = _ids_join(node, ids, projection)
        return [] if rewritten is None else [rewritten]
