"""Placing selections before GApply via covering ranges (Section 4.1).

The rule (Theorem 1 plus its empty-relation caveat):

    RE1 GA_C RE2  =  sigma_{covering-range(RE2)}(RE1) GA_C RE2
                                                 if RE2(phi) = phi

After pushing the covering range into the outer query, "any selection in
the operator tree of the per-group query that is logically equivalent to
the covering range of the root can then be eliminated" — we eliminate
selects whose predicate is structurally equal to the pushed range (the
common case where the whole range came from one selection chain).
"""

from __future__ import annotations

from repro.algebra.expressions import Expression
from repro.algebra.operators import (
    GApply,
    LogicalOperator,
    Select,
)
from repro.optimizer.properties import (
    covering_range,
    empty_on_empty,
)
from repro.optimizer.rules.base import Rule, RuleContext


class SelectionBeforeGApply(Rule):
    name = "selection_before_gapply"

    def apply(
        self, node: LogicalOperator, context: RuleContext
    ) -> list[LogicalOperator]:
        if not isinstance(node, GApply):
            return []
        if not empty_on_empty(node.per_group):
            return []
        range_condition = covering_range(node.per_group)
        if range_condition is None:
            return []
        # Guard against re-firing on our own output: skip when the covering
        # range already appears as a selection anywhere in the outer query
        # (pushdown may have moved it off the top).
        if _range_already_applied(node.outer, range_condition):
            return []
        # The range must be expressible over the outer query's columns.
        outer_schema = node.outer.schema
        if not all(
            outer_schema.has(reference)
            for reference in range_condition.columns()
        ):
            return []
        new_outer = Select(node.outer, range_condition)
        new_per_group = _eliminate_equivalent_selects(
            node.per_group, range_condition
        )
        return [
            GApply(
                new_outer,
                node.grouping_columns,
                new_per_group,
                node.group_variable,
            )
        ]


def _range_already_applied(
    outer: LogicalOperator, range_condition: Expression
) -> bool:
    """Is every conjunct of the range already enforced by some Select in the
    outer tree?"""
    from repro.algebra.expressions import conjuncts

    wanted = set(conjuncts(range_condition))
    enforced: set[Expression] = set()
    for node in outer.walk():
        if isinstance(node, Select):
            enforced |= set(conjuncts(node.predicate))
    return wanted <= enforced


def _eliminate_equivalent_selects(
    per_group: LogicalOperator, range_condition: Expression
) -> LogicalOperator:
    """Drop per-group selects made redundant by the pushed covering range.

    Only selects whose predicate equals the whole pushed range are removed;
    they are idempotent re-applications once the outer query is filtered.
    Selects that merely *contributed* a disjunct (union branches) must stay.
    """

    def rewrite(node: LogicalOperator) -> LogicalOperator:
        if isinstance(node, Select) and node.predicate == range_condition:
            return node.child
        return node

    return per_group.transform_up(rewrite)
