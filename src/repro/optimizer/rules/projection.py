"""Placing projections before GApply (Section 4.1).

"We extract from the outer query only those columns required by the
per-group query: only the grouping columns and those columns referred to
somewhere in PGQ need be projected from the result of the outer query.
Since the syntax we propose binds *all* columns of the outer query to the
relation-valued variable, this rule can have a significant impact."

The outer query gets a qualifier-preserving :class:`Prune`, and every
GroupScan in the per-group query is rewritten to the narrowed schema (the
GApply invariant requires GroupScan schema == outer output schema).
"""

from __future__ import annotations

from repro.algebra.operators import (
    GApply,
    LogicalOperator,
    Prune,
    replace_group_scans,
)
from repro.optimizer.properties import referenced_columns
from repro.optimizer.rules.base import Rule, RuleContext


class ProjectionBeforeGApply(Rule):
    name = "projection_before_gapply"

    def apply(
        self, node: LogicalOperator, context: RuleContext
    ) -> list[LogicalOperator]:
        if not isinstance(node, GApply):
            return []
        outer_schema = node.outer.schema
        needed_positions: set[int] = set()
        for reference in node.grouping_columns:
            needed_positions.add(outer_schema.index_of(reference))
        for reference in referenced_columns(node.per_group):
            if outer_schema.has(reference):
                needed_positions.add(outer_schema.index_of(reference))
        if len(needed_positions) >= len(outer_schema):
            return []  # nothing to prune
        references = tuple(
            outer_schema[i].qualified_name for i in sorted(needed_positions)
        )
        pruned_outer = Prune(node.outer, references)
        new_per_group = replace_group_scans(node.per_group, pruned_outer.schema)
        try:
            rewritten = GApply(
                pruned_outer,
                node.grouping_columns,
                new_per_group,
                node.group_variable,
            )
            # A per-group query that passes group columns straight through
            # (e.g. group selection returning the whole group) would change
            # its output shape under pruning; such queries must keep the
            # full outer width.
            if rewritten.schema != node.schema:
                return []
        except Exception:
            return []
        return [rewritten]
