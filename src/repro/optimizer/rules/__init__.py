"""Transformation rules for plans containing GApply (Section 4)."""

from repro.optimizer.rules.base import Rule, RuleContext
from repro.optimizer.rules.column_pruning import CollapseProject, NarrowPrune
from repro.optimizer.rules.generic import (
    PushProjectIntoPerGroup,
    PushSelectIntoPerGroup,
)
from repro.optimizer.rules.group_selection import (
    AggregateGroupSelection,
    ExistsGroupSelection,
)
from repro.optimizer.rules.invariant_grouping import PushGApplyBelowJoin
from repro.optimizer.rules.projection import ProjectionBeforeGApply
from repro.optimizer.rules.pull_gapply import PullGApplyAboveJoin
from repro.optimizer.rules.pushdown import SelectPushdown
from repro.optimizer.rules.selection import SelectionBeforeGApply
from repro.optimizer.rules.to_groupby import GApplyToGroupBy

#: The full rule set, in the order the engine tries them. Order only
#: affects exploration order, not the reachable set.
DEFAULT_RULES: list[Rule] = [
    PushSelectIntoPerGroup(),
    PushProjectIntoPerGroup(),
    SelectionBeforeGApply(),
    ProjectionBeforeGApply(),
    GApplyToGroupBy(),
    ExistsGroupSelection(),
    AggregateGroupSelection(),
    PushGApplyBelowJoin(),
    PullGApplyAboveJoin(),
    SelectPushdown(),
    NarrowPrune(),
    CollapseProject(),
]


def rule_by_name(name: str) -> Rule:
    """Look up one of the default rules by its ``name`` attribute."""
    for rule in DEFAULT_RULES:
        if rule.name == name:
            return rule
    raise KeyError(
        f"unknown rule {name!r}; known: {[r.name for r in DEFAULT_RULES]}"
    )


__all__ = [
    "AggregateGroupSelection",
    "CollapseProject",
    "DEFAULT_RULES",
    "ExistsGroupSelection",
    "GApplyToGroupBy",
    "NarrowPrune",
    "ProjectionBeforeGApply",
    "PullGApplyAboveJoin",
    "PushGApplyBelowJoin",
    "PushProjectIntoPerGroup",
    "PushSelectIntoPerGroup",
    "Rule",
    "RuleContext",
    "SelectPushdown",
    "SelectionBeforeGApply",
    "rule_by_name",
]
