"""Converting GApply to groupby (Section 4.1, Figure 4).

Two shapes convert:

* PGQ is a pure scalar aggregation over the group
  (``Aggregate(GroupScan)``): GApply becomes a GroupBy on the partitioning
  columns with the same aggregates. Safe without the empty-group caveat
  because GApply's partition phase only ever produces non-empty groups.

* PGQ is ``GroupBy_B(GroupScan)``: GApply becomes a GroupBy on C u B.

The paper notes the benefit is modest — GApply does the same aggregation
work — but GApply is blocked per group while a single GroupBy pipelines;
the Table-1 benchmark reproduces that gap.
"""

from __future__ import annotations

from repro.algebra.expressions import ColumnRef
from repro.algebra.operators import (
    GApply,
    GroupBy,
    GroupScan,
    LogicalOperator,
    Project,
    Remap,
)
from repro.optimizer.rules.base import Rule, RuleContext


class GApplyToGroupBy(Rule):
    name = "gapply_to_groupby"

    def apply(
        self, node: LogicalOperator, context: RuleContext
    ) -> list[LogicalOperator]:
        if not isinstance(node, GApply):
            return []
        pgq = node.per_group
        # The binder wraps aggregate outputs in a renaming Project; see
        # through it when it is a pure rename of the GroupBy's outputs.
        rename: Project | None = None
        if isinstance(pgq, Project) and all(
            isinstance(expression, ColumnRef) for expression, _ in pgq.items
        ):
            if isinstance(pgq.child, GroupBy):
                rename = pgq
                pgq = pgq.child
        if not isinstance(pgq, GroupBy):
            return []
        if not isinstance(pgq.child, GroupScan):
            return []
        keys = node.grouping_columns + pgq.keys
        if len(set(keys)) != len(keys):
            return []  # aggregate on grouping columns needs the "little care"
        grouped = GroupBy(node.outer, keys, pgq.aggregates)
        if rename is None:
            rewritten: LogicalOperator = grouped
        else:
            # Reproduce the GApply output exactly: key columns first (with
            # their original identity), then the renamed per-group outputs.
            items = []
            for index, reference in enumerate(node.grouping_columns):
                items.append(
                    (
                        node.outer.schema.column(reference).qualified_name,
                        node.schema[index],
                    )
                )
            key_count = len(node.grouping_columns)
            for position, (expression, _) in enumerate(rename.items):
                assert isinstance(expression, ColumnRef)
                items.append(
                    (expression.name, node.schema[key_count + position])
                )
            rewritten = Remap(grouped, tuple(items))
        try:
            if rewritten.schema != node.schema:
                return []
        except Exception:
            return []
        return [rewritten]
