"""Property derivations over per-group queries (Section 4 of the paper).

Three analyses drive the transformation rules:

* :func:`empty_on_empty` — the paper's ``emptyOnEmpty`` bit: does the
  subtree produce an empty output on an empty input? Needed before pushing
  a covering-range selection into the outer query (Theorem 1's caveat — a
  ``count(*)`` over an empty group still returns a row).

* :func:`covering_range` — the minimal selection condition on the group such
  that running the per-group query on the selected subset equals running it
  on the whole group (Theorem 1). ``None`` encodes the condition *true*
  (the whole group is needed).

* :func:`gp_eval_columns` — the paper's *gp-eval columns*: columns genuinely
  needed to **evaluate** the per-group query (selection columns, aggregated
  columns, grouping keys, ordering columns) as opposed to columns that are
  merely projected and could be re-attached by later joins. Used by the
  invariant-grouping rule when pushing GApply below joins.

Also here: :func:`referenced_columns` (every column the PGQ touches, for the
projection rule) and :func:`invariant_grouping_node` (Definition 2's test
over left-deep join trees).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.expressions import (
    Expression,
    Or,
    conjoin,
)
from repro.algebra.operators import (
    Alias,
    Apply,
    Distinct,
    Exists,
    GApply,
    GroupBy,
    GroupScan,
    Join,
    JoinKind,
    Limit,
    LogicalOperator,
    OrderBy,
    Project,
    Prune,
    Remap,
    Select,
    TableScan,
    Union,
    UnionAll,
)
from repro.errors import OptimizerError
from repro.storage.catalog import Catalog


# ----------------------------------------------------------------------
# emptyOnEmpty
# ----------------------------------------------------------------------


def empty_on_empty(node: LogicalOperator) -> bool:
    """Does this per-group subtree map the empty group to an empty output?

    Follows the paper's table exactly:

    * scan (GroupScan): True
    * select, project, distinct, groupby, orderby, exists: child's value
    * aggregate (our scalar GroupBy): False
    * apply: the value of the *outer* child
    * union / union all: True iff True for all children
    """
    if isinstance(node, GroupScan):
        return True
    if isinstance(node, (Select, Project, Prune, Remap, Alias, Distinct, OrderBy, Exists, Limit)):
        return empty_on_empty(node.children()[0])
    if isinstance(node, GroupBy):
        if node.is_scalar_aggregate:
            return False
        return empty_on_empty(node.child)
    if isinstance(node, Apply):
        return empty_on_empty(node.outer)
    if isinstance(node, (Union, UnionAll)):
        return all(empty_on_empty(child) for child in node.children())
    if isinstance(node, GApply):
        # A nested GApply partitions its input; no rows -> no groups -> empty.
        return empty_on_empty(node.outer)
    if isinstance(node, Join):
        # An inner join with an empty input is empty.
        return empty_on_empty(node.left) or empty_on_empty(node.right)
    if isinstance(node, TableScan):
        # A base-table scan does not depend on the group at all; it is not
        # empty on an empty group. (The paper's PGQ grammar excludes this.)
        return False
    raise OptimizerError(
        f"emptyOnEmpty not defined for {type(node).__name__}"
    )


# ----------------------------------------------------------------------
# Covering ranges (Theorem 1)
# ----------------------------------------------------------------------


def _has_blocking_descendant(node: LogicalOperator) -> bool:
    """Does the subtree under ``node`` contain apply, groupby or aggregate?

    A selection sitting above such an operator filters *derived* rows, not
    group rows, so its condition cannot join the covering range.
    """
    for descendant in node.walk():
        if descendant is node:
            continue
        if isinstance(descendant, (Apply, GroupBy, GApply)):
            return True
    return False


def covering_range(node: LogicalOperator) -> Expression | None:
    """The covering range of ``node`` as a condition on the group tuples.

    ``None`` means *true* — the operator needs the whole group. The rules
    from the paper:

    * scan: true (the whole group)
    * select: child's range ANDed with its own condition, unless it has an
      apply/groupby/aggregate descendant, in which case just the child's
    * other unary operators: the child's range
    * apply, union, union all: the disjunction of the children's ranges
    """
    if isinstance(node, GroupScan):
        return None
    if isinstance(node, Limit):
        return None
    if isinstance(node, Select):
        child_range = covering_range(node.child)
        if _has_blocking_descendant(node):
            return child_range
        # Condition may reference columns computed by an Apply below; those
        # are not group columns, so such a select cannot tighten the range.
        if not _references_only_group_columns(node):
            return child_range
        return conjoin([c for c in (child_range, node.predicate) if c is not None])
    if isinstance(node, (Project, Prune, Remap, Alias, Distinct, OrderBy, Exists, GroupBy)):
        return covering_range(node.children()[0])
    if isinstance(node, Apply):
        return _disjoin_ranges(
            [covering_range(child) for child in node.children()]
        )
    if isinstance(node, (Union, UnionAll)):
        return _disjoin_ranges(
            [covering_range(child) for child in node.children()]
        )
    if isinstance(node, GApply):
        return covering_range(node.outer)
    if isinstance(node, Join):
        return _disjoin_ranges([covering_range(c) for c in node.children()])
    if isinstance(node, TableScan):
        # Independent of the group: contributes nothing, i.e. range false?
        # Being conservative (range true) is always sound.
        return None
    raise OptimizerError(
        f"covering range not defined for {type(node).__name__}"
    )


def _references_only_group_columns(select: Select) -> bool:
    """A select whose predicate mentions columns that are not in the group
    schema (e.g. appended Apply outputs) cannot contribute to the range."""
    if _contains_parameter(select.predicate):
        # A correlated Parameter is bound per outer row by an enclosing
        # Apply; lifting it into the covering range would move it outside
        # the Apply that binds it (unbound at execution, and unsound).
        return False
    group_schema = None
    for descendant in select.walk():
        if isinstance(descendant, GroupScan):
            group_schema = descendant.group_schema
            break
    if group_schema is None:
        return False
    return all(group_schema.has(ref) for ref in select.predicate.columns())


def _contains_parameter(expression: Expression) -> bool:
    from repro.algebra.expressions import Parameter

    if isinstance(expression, Parameter):
        return True
    return any(_contains_parameter(child) for child in expression.children())


def _disjoin_ranges(ranges: list[Expression | None]) -> Expression | None:
    """OR together child ranges; any *true* (None) child makes the result
    true. Structural duplicates collapse (p OR p = p), which keeps ranges
    from e.g. an Apply whose outer and inner filter identically tidy."""
    if any(r is None for r in ranges):
        return None
    unique: list[Expression] = []
    for candidate in ranges:
        if candidate not in unique:
            unique.append(candidate)
    if not unique:
        return None
    if len(unique) == 1:
        return unique[0]
    return Or(*unique)


# ----------------------------------------------------------------------
# Column requirement analyses
# ----------------------------------------------------------------------


def referenced_columns(node: LogicalOperator) -> frozenset[str]:
    """Every group column referenced anywhere in the per-group query.

    This is the set the projection-before-GApply rule must retain (plus the
    grouping columns). It includes projected columns — unlike gp-eval
    columns — because GApply's output must still produce them.
    """
    result: set[str] = set()
    for descendant in node.walk():
        if isinstance(descendant, Select):
            result |= descendant.predicate.columns()
        elif isinstance(descendant, Project):
            for expression, _ in descendant.items:
                result |= expression.columns()
        elif isinstance(descendant, Prune):
            result |= set(descendant.references)
        elif isinstance(descendant, Remap):
            result |= {reference for reference, _ in descendant.items}
        elif isinstance(descendant, GroupBy):
            result |= set(descendant.keys)
            for aggregate in descendant.aggregates:
                result |= aggregate.columns()
        elif isinstance(descendant, OrderBy):
            result |= {reference for reference, _ in descendant.items}
        elif isinstance(descendant, Apply):
            result |= {reference for _, reference in descendant.bindings}
        elif isinstance(descendant, Join) and descendant.predicate is not None:
            result |= descendant.predicate.columns()
        elif isinstance(descendant, GApply):
            result |= set(descendant.grouping_columns)
    return frozenset(result)


def gp_eval_columns(node: LogicalOperator) -> frozenset[str]:
    """The paper's gp-eval columns: columns needed to *evaluate* the PGQ.

    Per-operator eval columns:

    * scan: empty set
    * select: child's ∪ selection-condition columns
    * groupby: child's ∪ grouping columns of the node ∪ returned (aggregated)
      columns
    * aggregate / orderby: child's ∪ aggregated / ordering columns
    * other unary operators: child's
    * apply: union of both children (plus correlation binding columns)
    * union / union all: union of all children

    Projected-but-not-aggregated columns are deliberately *excluded*: they
    can be re-attached by joins above the relocated GApply.
    """
    if isinstance(node, GroupScan):
        return frozenset()
    if isinstance(node, Select):
        return gp_eval_columns(node.child) | node.predicate.columns()
    if isinstance(node, GroupBy):
        result = set(gp_eval_columns(node.child))
        result |= set(node.keys)
        for aggregate in node.aggregates:
            result |= aggregate.columns()
        return frozenset(result)
    if isinstance(node, OrderBy):
        return gp_eval_columns(node.child) | {
            reference for reference, _ in node.items
        }
    if isinstance(node, (Project, Prune, Remap, Alias, Distinct, Exists, Limit)):
        return gp_eval_columns(node.children()[0])
    if isinstance(node, Apply):
        result = set(gp_eval_columns(node.outer)) | set(
            gp_eval_columns(node.inner)
        )
        result |= {reference for _, reference in node.bindings}
        return frozenset(result)
    if isinstance(node, (Union, UnionAll)):
        result: set[str] = set()
        for child in node.children():
            result |= gp_eval_columns(child)
        return frozenset(result)
    if isinstance(node, GApply):
        return (
            gp_eval_columns(node.outer)
            | set(node.grouping_columns)
            | gp_eval_columns(node.per_group)
        )
    if isinstance(node, Join):
        result = set()
        for child in node.children():
            result |= gp_eval_columns(child)
        if node.predicate is not None:
            result |= node.predicate.columns()
        return frozenset(result)
    if isinstance(node, TableScan):
        return frozenset()
    raise OptimizerError(
        f"gp-eval columns not defined for {type(node).__name__}"
    )


# ----------------------------------------------------------------------
# Invariant grouping (Definition 2 / Theorem 2)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class JoinTreeNode:
    """One node of the left-deep join tree under a GApply outer child.

    ``operator`` points into the original plan; ``joins_above`` lists the
    Join ancestors between this node and the GApply (nearest first).
    """

    operator: LogicalOperator
    joins_above: tuple[Join, ...]


def left_deep_nodes(root: LogicalOperator) -> list[JoinTreeNode]:
    """Enumerate candidate placements in a left-deep join tree.

    Walks left children of joins, collecting the chain of joins above each
    node. The root itself (no joins above) is included first.
    """
    nodes = [JoinTreeNode(root, ())]
    joins: list[Join] = []
    current = root
    while isinstance(current, Join):
        joins.append(current)
        current = current.left
        nodes.append(JoinTreeNode(current, tuple(joins)))
    return nodes


def _base_binding(node: LogicalOperator) -> TableScan | None:
    """The single base table a join input ultimately scans, if discernible
    through selections/prunes (the paper's annotated-join-tree leaves)."""
    current = node
    while isinstance(current, (Select, Prune)):
        current = current.children()[0]
    if isinstance(current, TableScan):
        return current
    return None


def is_foreign_key_join(join: Join, catalog: Catalog) -> bool:
    """Is ``join`` a key/foreign-key equijoin with the FK on the *left*
    (outer) child, per the paper's definition?

    The left child must expose a declared foreign key to the right child's
    primary key, the equijoin pairs must cover exactly that FK, and the
    right child must be a bare (possibly filtered) base-table scan so that
    key semantics actually hold.
    """
    if join.kind != JoinKind.INNER or join.predicate is None:
        return False
    pairs = join.equijoin_pairs()
    if not pairs:
        return False
    right_scan = _base_binding(join.right)
    if right_scan is None:
        return False
    # Identify which base table each left-side column belongs to by
    # resolving through the left schema's qualifiers.
    left_schema = join.left.schema
    child_columns: list[str] = []
    parent_columns: list[str] = []
    child_qualifiers: set[str | None] = set()
    for left_ref, right_ref in pairs:
        left_column = left_schema.column(left_ref)
        right_column = join.right.schema.column(right_ref)
        child_columns.append(left_column.name)
        parent_columns.append(right_column.name)
        child_qualifiers.add(left_column.qualifier)
    if len(child_qualifiers) != 1:
        return False
    child_qualifier = next(iter(child_qualifiers))
    if child_qualifier is None:
        return False
    # The qualifier is the alias; find the underlying base table name by
    # scanning the left subtree for the TableScan with this binding name.
    child_table = None
    for descendant in join.left.walk():
        if isinstance(descendant, TableScan) and descendant.binding_name == child_qualifier:
            child_table = descendant.table_name
            break
    if child_table is None:
        return False
    parent_table = right_scan.table_name
    if not catalog.has_table(child_table) or not catalog.has_table(parent_table):
        return False
    fk = catalog.find_foreign_key(
        child_table, child_columns, parent_table, parent_columns
    )
    if fk is None:
        return False
    # The join must also hit the parent's full primary key, otherwise a
    # single left row could match several right rows.
    return catalog.is_primary_key(parent_table, parent_columns)


def join_columns(node: JoinTreeNode) -> frozenset[str]:
    """Columns of ``node`` participating in join predicates above it
    (Definition 1's *join columns*)."""
    schema = node.operator.schema
    result: set[str] = set()
    for join in node.joins_above:
        if join.predicate is None:
            continue
        for reference in join.predicate.columns():
            if schema.has(reference):
                result.add(reference)
    return frozenset(result)


def invariant_grouping_node(
    gapply: GApply, catalog: Catalog
) -> JoinTreeNode | None:
    """Find the deepest node with the invariant grouping property.

    Definition 2: a node ``n`` qualifies when (1) its columns contain the
    grouping columns and the gp-eval columns, (2) every join column of ``n``
    is a grouping column, and (3) every join above ``n`` is a foreign-key
    join. Returns the *deepest* such node strictly below the root (pushing
    to the root is a no-op), or ``None``.
    """
    outer_schema = gapply.outer.schema
    required = set(gapply.grouping_columns)
    for reference in gp_eval_columns(gapply.per_group):
        # gp-eval columns computed *inside* the per-group query (aggregate
        # outputs, subquery results) are not group columns; only references
        # into the outer query constrain the placement.
        if outer_schema.has(reference):
            required.add(reference)
    candidates = left_deep_nodes(gapply.outer)
    best: JoinTreeNode | None = None
    grouping = set(gapply.grouping_columns)
    for node in candidates[1:]:  # skip the root placement
        schema = node.operator.schema
        if not all(schema.has(reference) for reference in required):
            continue
        jc = join_columns(node)
        if not jc <= _expand_references(schema, grouping):
            continue
        if not all(
            is_foreign_key_join(join, catalog) for join in node.joins_above
        ):
            continue
        best = node  # deeper nodes come later in the enumeration
    return best


def _expand_references(schema, references: set[str]) -> frozenset[str]:
    """All reference spellings (bare and qualified) for the given columns
    resolvable in ``schema`` — join predicates may use either spelling."""
    result: set[str] = set()
    for reference in references:
        if not schema.has(reference):
            continue
        column = schema.column(reference)
        result.add(reference)
        result.add(column.name)
        result.add(column.qualified_name)
    return frozenset(result)
