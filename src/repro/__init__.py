"""repro: a reproduction of "On Relational Support for XML Publishing:
Beyond Sorting and Tagging" (Chaudhuri, Kaushik, Naughton; SIGMOD 2003).

A from-scratch relational engine with the paper's GApply operator,
its optimizer transformation rules, the SQL syntax extension, and an XML
publishing layer (XML views, sorted outer unions, constant-space tagging).
"""

__version__ = "1.0.0"

from repro.api import Database, QueryResult  # noqa: E402  (public facade)

__all__ = ["Database", "QueryResult", "__version__"]
