"""Recursive-descent SQL parser.

Supported dialect (a practical SQL-92 subset plus the paper's extensions):

.. code-block:: text

    query      := select ( UNION [ALL] select )* [ORDER BY order_items] [LIMIT n]
    select     := SELECT [DISTINCT] select_list
                  FROM from_item (',' from_item | join_clause)*
                  [WHERE expr]
                  [GROUP BY column (',' column)* [':' ident]]
                  [HAVING expr]
    select_list:= GAPPLY '(' query ')' [AS '(' ident_list ')']
                | item (',' item)*         where item := expr [[AS] ident] | '*'
    from_item  := ident [[AS] ident]
                | '(' query ')' [AS] ident ['(' ident_list ')']
    join_clause:= [INNER|CROSS] JOIN from_item [ON expr]

Expressions cover literals, qualified column references, arithmetic,
comparisons, AND/OR/NOT, IS [NOT] NULL, [NOT] IN (list | subquery),
[NOT] BETWEEN, [NOT] EXISTS (subquery), scalar subqueries, CASE WHEN, the
aggregates count/sum/avg/min/max (incl. ``count(*)`` and
``count(distinct x)``) and the registered scalar functions.

The two paper extensions are exactly those of Section 3.1: the ``gapply``
keyword in the select list and the ``: var`` group-variable declaration at
the end of GROUP BY.
"""

from __future__ import annotations

from typing import Any

from repro.errors import SqlSyntaxError
from repro.sql.ast import (
    AstBetween,
    AstBinary,
    AstCase,
    AstColumn,
    AstDerivedTable,
    AstExists,
    AstExplain,
    AstExpression,
    AstFunction,
    AstGApplyItem,
    AstInList,
    AstInSubquery,
    AstIsNull,
    AstJoin,
    AstLiteral,
    AstNode,
    AstParameter,
    AstQuery,
    AstScalarSubquery,
    AstSelect,
    AstSelectItem,
    AstStar,
    AstTableRef,
    AstUnary,
)
from repro.sql.lexer import Token, TokenType, tokenize

AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})


class Parser:
    """One-shot parser over a token list."""

    def __init__(self, text: str):
        self.tokens = tokenize(text)
        self.position = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        if token.type is not TokenType.EOF:
            self.position += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        token = self.current
        shown = token.value or "<end of input>"
        return SqlSyntaxError(
            f"{message}, found {shown!r}", token.line, token.column
        )

    def accept_keyword(self, word: str) -> bool:
        if self.current.is_keyword(word):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word.upper()}")

    def accept_symbol(self, symbol: str) -> bool:
        if self.current.is_symbol(symbol):
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            raise self.error(f"expected {symbol!r}")

    def expect_ident(self) -> str:
        if self.current.type is TokenType.IDENT:
            return self.advance().value
        raise self.error("expected identifier")

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------

    def parse_query(self) -> AstQuery:
        query = self._query()
        if self.current.type is not TokenType.EOF:
            raise self.error("unexpected trailing input")
        return query

    def parse_statement(self) -> "AstQuery | AstExplain":
        """A query, optionally wrapped in ``EXPLAIN [ANALYZE]``."""
        if self.accept_keyword("explain"):
            analyze = self.accept_keyword("analyze")
            return AstExplain(self.parse_query(), analyze)
        return self.parse_query()

    def _query(self) -> AstQuery:
        selects = [self._select()]
        union_all = True
        while self.current.is_keyword("union"):
            self.advance()
            if self.accept_keyword("all"):
                union_all = True
            else:
                union_all = False
            selects.append(self._select())
        order_by: list[tuple[str, bool]] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            while True:
                column = self._qualified_name()
                ascending = True
                if self.accept_keyword("desc"):
                    ascending = False
                else:
                    self.accept_keyword("asc")
                order_by.append((column, ascending))
                if not self.accept_symbol(","):
                    break
        limit = None
        if self.accept_keyword("limit"):
            token = self.current
            if token.type is not TokenType.NUMBER:
                raise self.error("expected LIMIT count")
            self.advance()
            limit = int(token.value)
        return AstQuery(tuple(selects), union_all, tuple(order_by), limit)

    # ------------------------------------------------------------------
    # SELECT blocks
    # ------------------------------------------------------------------

    def _select(self) -> AstSelect:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")

        gapply: AstGApplyItem | None = None
        items: list[AstSelectItem] = []
        if self.current.is_keyword("gapply"):
            self.advance()
            self.expect_symbol("(")
            per_group = self._query()
            self.expect_symbol(")")
            column_names: tuple[str, ...] = ()
            if self.accept_keyword("as"):
                self.expect_symbol("(")
                column_names = tuple(self._ident_list())
                self.expect_symbol(")")
            gapply = AstGApplyItem(per_group, column_names)
        else:
            while True:
                items.append(self._select_item())
                if not self.accept_symbol(","):
                    break

        self.expect_keyword("from")
        from_items: list[AstNode] = [self._from_item()]
        while True:
            if self.accept_symbol(","):
                from_items.append(self._from_item())
                continue
            if (
                self.current.is_keyword("join")
                or self.current.is_keyword("inner")
                or self.current.is_keyword("cross")
            ):
                cross = self.accept_keyword("cross")
                self.accept_keyword("inner")
                self.expect_keyword("join")
                right = self._from_item()
                condition = None
                if not cross and self.accept_keyword("on"):
                    condition = self._expression()
                left = from_items.pop()
                from_items.append(AstJoin(left, right, condition))
                continue
            break

        where = self._expression() if self.accept_keyword("where") else None

        group_by: list[str] = []
        group_variable: str | None = None
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self._qualified_name())
            while self.accept_symbol(","):
                group_by.append(self._qualified_name())
            if self.accept_symbol(":"):
                group_variable = self.expect_ident()

        having = self._expression() if self.accept_keyword("having") else None

        return AstSelect(
            items=tuple(items),
            from_items=tuple(from_items),
            where=where,
            group_by=tuple(group_by),
            group_variable=group_variable,
            having=having,
            distinct=distinct,
            gapply=gapply,
        )

    def _select_item(self) -> AstSelectItem:
        if self.current.is_symbol("*"):
            self.advance()
            return AstSelectItem(AstStar())
        # alias.* needs two-token lookahead
        if (
            self.current.type is TokenType.IDENT
            and self.tokens[self.position + 1].is_symbol(".")
            and self.tokens[self.position + 2].is_symbol("*")
        ):
            qualifier = self.advance().value
            self.advance()  # '.'
            self.advance()  # '*'
            return AstSelectItem(AstStar(qualifier))
        expression = self._expression()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return AstSelectItem(expression, alias)

    def _from_item(self) -> AstNode:
        if self.accept_symbol("("):
            query = self._query()
            self.expect_symbol(")")
            self.accept_keyword("as")
            alias = self.expect_ident()
            column_names: tuple[str, ...] = ()
            if self.accept_symbol("("):
                column_names = tuple(self._ident_list())
                self.expect_symbol(")")
            return AstDerivedTable(query, alias, column_names)
        name = self.expect_ident()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect_ident()
        elif self.current.type is TokenType.IDENT:
            alias = self.advance().value
        return AstTableRef(name, alias)

    def _ident_list(self) -> list[str]:
        names = [self.expect_ident()]
        while self.accept_symbol(","):
            names.append(self.expect_ident())
        return names

    def _qualified_name(self) -> str:
        name = self.expect_ident()
        while self.accept_symbol("."):
            name += "." + self.expect_ident()
        return name

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------

    def _expression(self) -> AstExpression:
        return self._or_expr()

    def _or_expr(self) -> AstExpression:
        left = self._and_expr()
        while self.current.is_keyword("or"):
            self.advance()
            left = AstBinary("or", left, self._and_expr())
        return left

    def _and_expr(self) -> AstExpression:
        left = self._not_expr()
        while self.current.is_keyword("and"):
            self.advance()
            left = AstBinary("and", left, self._not_expr())
        return left

    def _not_expr(self) -> AstExpression:
        if self.accept_keyword("not"):
            return AstUnary("not", self._not_expr())
        return self._predicate()

    def _predicate(self) -> AstExpression:
        if self.current.is_keyword("exists"):
            self.advance()
            self.expect_symbol("(")
            subquery = self._query()
            self.expect_symbol(")")
            return AstExists(subquery)
        left = self._additive()
        # IS [NOT] NULL
        if self.current.is_keyword("is"):
            self.advance()
            negated = self.accept_keyword("not")
            self.expect_keyword("null")
            return AstIsNull(left, negated)
        negated = False
        if self.current.is_keyword("not"):
            # NOT IN / NOT BETWEEN
            lookahead = self.tokens[self.position + 1]
            if lookahead.is_keyword("in") or lookahead.is_keyword("between"):
                self.advance()
                negated = True
        if self.accept_keyword("in"):
            self.expect_symbol("(")
            if self.current.is_keyword("select"):
                subquery = self._query()
                self.expect_symbol(")")
                return AstInSubquery(left, subquery, negated)
            items = [self._expression()]
            while self.accept_symbol(","):
                items.append(self._expression())
            self.expect_symbol(")")
            return AstInList(left, tuple(items), negated)
        if self.accept_keyword("between"):
            low = self._additive()
            self.expect_keyword("and")
            high = self._additive()
            return AstBetween(left, low, high, negated)
        for op in ("=", "<>", "!=", "<=", ">=", "<", ">"):
            if self.current.is_symbol(op):
                self.advance()
                right = self._additive()
                return AstBinary("<>" if op == "!=" else op, left, right)
        return left

    def _additive(self) -> AstExpression:
        left = self._multiplicative()
        while self.current.is_symbol("+") or self.current.is_symbol("-"):
            op = self.advance().value
            left = AstBinary(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> AstExpression:
        left = self._unary()
        while (
            self.current.is_symbol("*")
            or self.current.is_symbol("/")
            or self.current.is_symbol("%")
        ):
            op = self.advance().value
            left = AstBinary(op, left, self._unary())
        return left

    def _unary(self) -> AstExpression:
        if self.accept_symbol("-"):
            return AstUnary("-", self._unary())
        if self.accept_symbol("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> AstExpression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            return AstLiteral(self._number(token.value))
        if token.type is TokenType.STRING:
            self.advance()
            return AstLiteral(token.value)
        if token.is_keyword("null"):
            self.advance()
            return AstLiteral(None)
        if token.is_keyword("true"):
            self.advance()
            return AstLiteral(True)
        if token.is_keyword("false"):
            self.advance()
            return AstLiteral(False)
        if token.is_keyword("case"):
            return self._case()
        if token.is_symbol("("):
            self.advance()
            if self.current.is_keyword("select"):
                subquery = self._query()
                self.expect_symbol(")")
                return AstScalarSubquery(subquery)
            inner = self._expression()
            self.expect_symbol(")")
            return inner
        if token.type is TokenType.IDENT:
            if token.value.startswith("$"):
                return self._parameter()
            # Function call or column reference.
            if self.tokens[self.position + 1].is_symbol("("):
                return self._function_call()
            return AstColumn(self._qualified_name())
        raise self.error("expected expression")

    def _parameter(self) -> AstExpression:
        # The lexer treats '$' as an identifier character, so `$3` arrives
        # as one IDENT token. Only `$<positive integer>` is a marker.
        text = self.advance().value
        digits = text[1:]
        if not digits.isdigit() or int(digits) < 1:
            raise self.error(
                f"invalid parameter marker {text!r}; use $1, $2, ..."
            )
        return AstParameter(int(digits) - 1)

    def _case(self) -> AstExpression:
        self.expect_keyword("case")
        whens: list[tuple[AstExpression, AstExpression]] = []
        while self.accept_keyword("when"):
            condition = self._expression()
            self.expect_keyword("then")
            value = self._expression()
            whens.append((condition, value))
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        default = None
        if self.accept_keyword("else"):
            default = self._expression()
        self.expect_keyword("end")
        return AstCase(tuple(whens), default)

    def _function_call(self) -> AstExpression:
        name = self.expect_ident().lower()
        self.expect_symbol("(")
        if name == "count" and self.accept_symbol("*"):
            self.expect_symbol(")")
            return AstFunction("count", (), star=True)
        distinct = self.accept_keyword("distinct")
        args: list[AstExpression] = []
        if not self.current.is_symbol(")"):
            args.append(self._expression())
            while self.accept_symbol(","):
                args.append(self._expression())
        self.expect_symbol(")")
        if distinct and name not in AGGREGATE_NAMES:
            raise self.error(f"DISTINCT is not valid in {name}()")
        return AstFunction(name, tuple(args), distinct=distinct)

    @staticmethod
    def _number(text: str) -> Any:
        if "." in text or "e" in text or "E" in text:
            return float(text)
        return int(text)


def parse(text: str) -> AstQuery:
    """Parse SQL text into an :class:`AstQuery`."""
    return Parser(text).parse_query()


def parse_statement(text: str) -> "AstQuery | AstExplain":
    """Parse a statement: a query or ``EXPLAIN [ANALYZE] <query>``."""
    return Parser(text).parse_statement()
