"""Query normalization for the plan cache: literal extraction.

The plan cache (:mod:`repro.optimizer.plancache`) keys entries by query
*shape*, not text: two queries that differ only in literal values should
share one cached plan. :func:`parameterize` walks a parsed statement and
replaces every literal in expression position with an
:class:`~repro.sql.ast.AstParameter` marker (left-to-right, so slot order
is deterministic), returning the parameterized AST plus the extracted
value vector. The printer renders markers as ``$1``/``$2``/... — the
canonical parameterized text is the cache key.

Structural constants stay in the key on purpose: ``LIMIT`` counts,
``ORDER BY`` / ``GROUP BY`` column lists, and the implicit NULL default
of a CASE without ELSE are plan *shape*, not parameters.

:func:`bind_ast_parameters` is the inverse — substitute values back into
markers — used by property tests and by prepared statements that fall
back to uncached execution.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import BindError
from repro.sql import ast as A

#: Type tags for the cache key: a cached plan is only reused when the new
#: parameter vector has the same shape (int vs float changes arithmetic
#: semantics; str vs int changes inferred schema types).
_TYPE_TAGS: tuple[tuple[type, str], ...] = (
    (bool, "bool"),  # before int: bool is an int subclass
    (int, "int"),
    (float, "float"),
    (str, "str"),
)


def type_signature(values: tuple[Any, ...]) -> tuple[str, ...]:
    """One tag per parameter value, for inclusion in the cache key."""
    tags = []
    for value in values:
        if value is None:
            tags.append("null")
            continue
        for pytype, tag in _TYPE_TAGS:
            if isinstance(value, pytype):
                tags.append(tag)
                break
        else:
            tags.append(type(value).__name__)
    return tuple(tags)


def parameterize(
    statement: "A.AstQuery | A.AstExplain",
) -> tuple["A.AstQuery | A.AstExplain", tuple[Any, ...]]:
    """Extract literals into ``$N`` markers.

    Returns the parameterized statement and the extracted values in slot
    order. Statements already containing explicit markers are returned
    unchanged with an empty value vector — mixing handwritten markers
    with extraction would renumber the user's slots.
    """
    if count_parameters(statement) > 0:
        return statement, ()
    values: list[Any] = []

    def visit(node: A.AstExpression) -> A.AstExpression:
        if isinstance(node, A.AstLiteral):
            index = len(values)
            values.append(node.value)
            return A.AstParameter(index, seed=node.value)
        return node

    return _rewrite_statement(statement, visit), tuple(values)


def bind_ast_parameters(
    statement: "A.AstQuery | A.AstExplain", values: tuple[Any, ...]
) -> "A.AstQuery | A.AstExplain":
    """Substitute ``values`` back into the statement's ``$N`` markers."""

    def visit(node: A.AstExpression) -> A.AstExpression:
        if isinstance(node, A.AstParameter):
            if node.index >= len(values):
                raise BindError(
                    f"parameter ${node.index + 1} has no bound value "
                    f"({len(values)} given)"
                )
            return A.AstLiteral(values[node.index])
        return node

    return _rewrite_statement(statement, visit)


def seed_parameters(
    statement: "A.AstQuery | A.AstExplain", values: tuple[Any, ...]
) -> "A.AstQuery | A.AstExplain":
    """Re-seed every marker's planning value without removing the marker.

    Used by adaptive re-optimization: the template is re-planned as if
    the *current* parameter vector were the original literals.
    """

    def visit(node: A.AstExpression) -> A.AstExpression:
        if isinstance(node, A.AstParameter) and node.index < len(values):
            return A.AstParameter(node.index, seed=values[node.index])
        return node

    return _rewrite_statement(statement, visit)


def count_parameters(statement: "A.AstQuery | A.AstExplain") -> int:
    """Number of parameter slots (max index + 1); validates density.

    Explicit markers must form a dense ``$1..$N`` range — a gap means a
    slot that can never be bound, which is always a typo.
    """
    seen: set[int] = set()

    def visit(node: A.AstExpression) -> A.AstExpression:
        if isinstance(node, A.AstParameter):
            seen.add(node.index)
        return node

    _rewrite_statement(statement, visit)
    if not seen:
        return 0
    count = max(seen) + 1
    missing = sorted(set(range(count)) - seen)
    if missing:
        slots = ", ".join(f"${index + 1}" for index in missing)
        raise BindError(f"parameter markers are not dense: missing {slots}")
    return count


# ----------------------------------------------------------------------
# Generic AST rewriting
# ----------------------------------------------------------------------

_Visitor = Callable[[A.AstExpression], A.AstExpression]


def _rewrite_statement(
    statement: "A.AstQuery | A.AstExplain", visit: _Visitor
) -> "A.AstQuery | A.AstExplain":
    if isinstance(statement, A.AstExplain):
        query = _rewrite_query(statement.query, visit)
        if query is statement.query:
            return statement
        return A.AstExplain(query, statement.analyze)
    return _rewrite_query(statement, visit)


def _rewrite_query(query: A.AstQuery, visit: _Visitor) -> A.AstQuery:
    selects = _tuple(query.selects, lambda s: _rewrite_select(s, visit))
    if selects is query.selects:
        return query
    return A.AstQuery(selects, query.union_all, query.order_by, query.limit)


def _rewrite_select(select: A.AstSelect, visit: _Visitor) -> A.AstSelect:
    items = _tuple(select.items, lambda i: _rewrite_select_item(i, visit))
    from_items = _tuple(
        select.from_items, lambda f: _rewrite_from_item(f, visit)
    )
    where = _optional(select.where, visit)
    having = _optional(select.having, visit)
    gapply = select.gapply
    if gapply is not None:
        inner = _rewrite_query(gapply.query, visit)
        if inner is not gapply.query:
            gapply = A.AstGApplyItem(inner, gapply.column_names)
    if (
        items is select.items
        and from_items is select.from_items
        and where is select.where
        and having is select.having
        and gapply is select.gapply
    ):
        return select
    return A.AstSelect(
        items=items,
        from_items=from_items,
        where=where,
        group_by=select.group_by,
        group_variable=select.group_variable,
        having=having,
        distinct=select.distinct,
        gapply=gapply,
    )


def _rewrite_select_item(
    item: A.AstSelectItem, visit: _Visitor
) -> A.AstSelectItem:
    expression = _rewrite_expression(item.expression, visit)
    if expression is item.expression:
        return item
    return A.AstSelectItem(expression, item.alias)


def _rewrite_from_item(item: A.AstNode, visit: _Visitor) -> A.AstNode:
    if isinstance(item, A.AstTableRef):
        return item
    if isinstance(item, A.AstDerivedTable):
        query = _rewrite_query(item.query, visit)
        if query is item.query:
            return item
        return A.AstDerivedTable(query, item.alias, item.column_names)
    if isinstance(item, A.AstJoin):
        left = _rewrite_from_item(item.left, visit)
        right = _rewrite_from_item(item.right, visit)
        condition = _optional(item.condition, visit)
        if (
            left is item.left
            and right is item.right
            and condition is item.condition
        ):
            return item
        return A.AstJoin(left, right, condition)
    raise BindError(f"cannot rewrite FROM item {type(item).__name__}")


def _rewrite_expression(
    node: A.AstExpression, visit: _Visitor
) -> A.AstExpression:
    if isinstance(node, (A.AstLiteral, A.AstParameter)):
        return visit(node)
    if isinstance(node, (A.AstColumn, A.AstStar)):
        return node
    if isinstance(node, A.AstUnary):
        operand = _rewrite_expression(node.operand, visit)
        return node if operand is node.operand else A.AstUnary(node.op, operand)
    if isinstance(node, A.AstBinary):
        left = _rewrite_expression(node.left, visit)
        right = _rewrite_expression(node.right, visit)
        if left is node.left and right is node.right:
            return node
        return A.AstBinary(node.op, left, right)
    if isinstance(node, A.AstIsNull):
        operand = _rewrite_expression(node.operand, visit)
        if operand is node.operand:
            return node
        return A.AstIsNull(operand, node.negated)
    if isinstance(node, A.AstBetween):
        operand = _rewrite_expression(node.operand, visit)
        low = _rewrite_expression(node.low, visit)
        high = _rewrite_expression(node.high, visit)
        if operand is node.operand and low is node.low and high is node.high:
            return node
        return A.AstBetween(operand, low, high, node.negated)
    if isinstance(node, A.AstInList):
        operand = _rewrite_expression(node.operand, visit)
        items = _tuple(node.items, lambda i: _rewrite_expression(i, visit))
        if operand is node.operand and items is node.items:
            return node
        return A.AstInList(operand, items, node.negated)
    if isinstance(node, A.AstInSubquery):
        operand = _rewrite_expression(node.operand, visit)
        subquery = _rewrite_query(node.subquery, visit)
        if operand is node.operand and subquery is node.subquery:
            return node
        return A.AstInSubquery(operand, subquery, node.negated)
    if isinstance(node, A.AstExists):
        subquery = _rewrite_query(node.subquery, visit)
        if subquery is node.subquery:
            return node
        return A.AstExists(subquery, node.negated)
    if isinstance(node, A.AstScalarSubquery):
        subquery = _rewrite_query(node.subquery, visit)
        if subquery is node.subquery:
            return node
        return A.AstScalarSubquery(subquery)
    if isinstance(node, A.AstFunction):
        args = _tuple(node.args, lambda a: _rewrite_expression(a, visit))
        if args is node.args:
            return node
        return A.AstFunction(node.name, args, node.star, node.distinct)
    if isinstance(node, A.AstCase):
        whens = _tuple(
            node.whens,
            lambda pair: _rewrite_when(pair, visit),
        )
        default = _optional(node.default, visit)
        if whens is node.whens and default is node.default:
            return node
        return A.AstCase(whens, default)
    raise BindError(f"cannot rewrite expression {type(node).__name__}")


def _rewrite_when(
    pair: tuple[A.AstExpression, A.AstExpression], visit: _Visitor
) -> tuple[A.AstExpression, A.AstExpression]:
    condition = _rewrite_expression(pair[0], visit)
    value = _rewrite_expression(pair[1], visit)
    if condition is pair[0] and value is pair[1]:
        return pair
    return (condition, value)


def _optional(
    node: A.AstExpression | None, visit: _Visitor
) -> A.AstExpression | None:
    if node is None:
        return None
    return _rewrite_expression(node, visit)


def _tuple(items: tuple, fn: Callable[[Any], Any]) -> tuple:
    rewritten = tuple(fn(item) for item in items)
    if all(a is b for a, b in zip(rewritten, items)):
        return items
    return rewritten
