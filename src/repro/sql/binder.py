"""Semantic analysis: AST -> logical algebra.

The binder resolves names, types SELECT lists, decorrelates subqueries into
:class:`~repro.algebra.operators.Apply` nodes (the paper's subquery model),
and turns the ``gapply``/``group by ... : x`` extension into a
:class:`~repro.algebra.operators.GApply` whose per-group query reads
:class:`~repro.algebra.operators.GroupScan` leaves.

Correlation: while binding a subquery, a column reference that fails to
resolve in the subquery's own scope but resolves in an enclosing scope
becomes a fresh :class:`~repro.algebra.expressions.Parameter`; the
(parameter, outer column) pairs accumulate on the subquery scope and become
the bindings of the Apply that splices the subquery into the outer plan —
exactly the correlated-subquery execution model of Section 3.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.algebra.expressions import (
    AggregateCall,
    AggregateFunction,
    And,
    Arithmetic,
    ArithmeticOp,
    BindParameter,
    CaseWhen,
    ColumnRef,
    Comparison,
    ComparisonOp,
    Expression,
    FunctionCall,
    InList,
    IsNull,
    Literal,
    Negate,
    Not,
    Or,
    Parameter,
    conjoin,
)
from repro.algebra.operators import (
    Alias,
    Apply,
    Distinct,
    Exists,
    GApply,
    GroupBy,
    GroupScan,
    Join,
    JoinKind,
    Limit,
    LogicalOperator,
    OrderBy,
    Project,
    Prune,
    Select,
    TableScan,
    Union,
    UnionAll,
)
from repro.errors import BindError
from repro.sql import ast as A
from repro.sql.parser import AGGREGATE_NAMES, parse
from repro.storage.catalog import Catalog
from repro.storage.schema import Schema

_AGG_MAP = {
    "count": AggregateFunction.COUNT,
    "sum": AggregateFunction.SUM,
    "avg": AggregateFunction.AVG,
    "min": AggregateFunction.MIN,
    "max": AggregateFunction.MAX,
}

_COMPARISON_MAP = {
    "=": ComparisonOp.EQ,
    "<>": ComparisonOp.NE,
    "<": ComparisonOp.LT,
    "<=": ComparisonOp.LE,
    ">": ComparisonOp.GT,
    ">=": ComparisonOp.GE,
}

_ARITHMETIC_MAP = {
    "+": ArithmeticOp.ADD,
    "-": ArithmeticOp.SUB,
    "*": ArithmeticOp.MUL,
    "/": ArithmeticOp.DIV,
    "%": ArithmeticOp.MOD,
}


@dataclass
class Scope:
    """Name-resolution scope for one query block.

    ``correlations`` collects (parameter name, outer reference) pairs when
    expressions in this scope reach through to ``parent``.
    """

    schema: Schema
    parent: "Scope | None" = None
    correlations: list[tuple[str, str]] = field(default_factory=list)
    _param_counter: itertools.count = field(default_factory=itertools.count)

    def resolve(self, reference: str) -> Expression:
        if self.schema.has(reference):
            return ColumnRef(reference)
        if self.parent is not None:
            outer = self.parent.resolve(reference)
            if isinstance(outer, ColumnRef):
                parameter = self._correlate(outer.name)
                return parameter
            return outer  # already a parameter from a further-out scope
        raise BindError(
            f"unknown column {reference!r}; in scope: "
            + ", ".join(self.schema.qualified_names())
        )

    def _correlate(self, reference: str) -> Parameter:
        for name, existing in self.correlations:
            if existing == reference:
                return Parameter(name)
        name = f"corr_{reference.replace('.', '_')}_{next(self._param_counter)}"
        self.correlations.append((name, reference))
        return Parameter(name)


class Binder:
    """Bind AST queries against a catalog (plus group-variable env)."""

    def __init__(self, catalog: Catalog):
        self.catalog = catalog
        self._counter = itertools.count()

    def _fresh(self, prefix: str) -> str:
        return f"__{prefix}{next(self._counter)}"

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def bind(self, query: A.AstQuery) -> LogicalOperator:
        """Bind a top-level query (no enclosing scope)."""
        plan = self.bind_query(query, outer_scope=None, relations={})
        # Schema derivation is lazy; force it now so resolution problems
        # (e.g. ambiguous bare names in projection lists) surface at bind
        # time rather than during planning.
        for node in plan.walk():
            node.schema
        return plan

    def bind_query(
        self,
        query: A.AstQuery,
        outer_scope: Scope | None,
        relations: dict[str, Schema],
    ) -> LogicalOperator:
        if len(query.selects) == 1:
            # Single-select queries may ORDER BY columns that are not in the
            # output (standard SQL); delegate ordering to bind_select, which
            # can sort before the final projection.
            return self.bind_select(
                query.selects[0],
                outer_scope,
                relations,
                order_by=query.order_by,
                limit=query.limit,
            )
        plans = [
            self.bind_select(select, outer_scope, relations)
            for select in query.selects
        ]
        widths = {len(p.schema) for p in plans}
        if len(widths) != 1:
            raise BindError(
                f"UNION branches have different widths: {sorted(widths)}"
            )
        normalized = [self._bare_names(p) for p in plans]
        plan = (
            UnionAll(tuple(normalized))
            if query.union_all
            else Union(tuple(normalized))
        )
        if query.order_by:
            items = []
            for reference, ascending in query.order_by:
                if not plan.schema.has(reference):
                    raise BindError(f"ORDER BY column {reference!r} not in output")
                items.append((reference, ascending))
            plan = OrderBy(plan, tuple(items))
        if query.limit is not None:
            plan = Limit(plan, query.limit)
        return plan

    def _bare_names(self, plan: LogicalOperator) -> LogicalOperator:
        """Rename output columns to unique bare names (UNION alignment)."""
        names = self._dedupe([c.name for c in plan.schema])
        if names == [c.qualified_name for c in plan.schema]:
            return plan
        items = tuple(
            (ColumnRef(column.qualified_name), name)
            for column, name in zip(plan.schema, names)
        )
        return Project(plan, items)

    @staticmethod
    def _dedupe(names: list[str]) -> list[str]:
        seen: dict[str, int] = {}
        result = []
        for name in names:
            count = seen.get(name, 0)
            seen[name] = count + 1
            result.append(name if count == 0 else f"{name}_{count + 1}")
        return result

    # ------------------------------------------------------------------
    # SELECT blocks
    # ------------------------------------------------------------------

    def bind_select(
        self,
        select: A.AstSelect,
        outer_scope: Scope | None,
        relations: dict[str, Schema],
        order_by: tuple[tuple[str, bool], ...] = (),
        limit: int | None = None,
    ) -> LogicalOperator:
        plan = self._bind_from(select.from_items, relations)
        scope = Scope(plan.schema, outer_scope)

        if select.where is not None:
            plan, scope = self._apply_where(plan, scope, select.where, relations)

        if select.gapply is not None:
            bound = self._bind_gapply(select, plan, scope, relations)
        else:
            source = plan
            bound = self._bind_projection(select, plan, scope, relations)
            if order_by and not all(bound.schema.has(r) for r, _ in order_by):
                # ORDER BY a source column not in the output: sort before
                # the projection (row-at-a-time operators preserve order).
                if (
                    all(source.schema.has(r) for r, _ in order_by)
                    and not select.group_by
                    and not select.distinct
                ):
                    rebuilt = self._bind_projection(
                        select,
                        OrderBy(source, tuple(order_by)),
                        Scope(source.schema, scope.parent, scope.correlations),
                        relations,
                    )
                    bound = rebuilt
                    order_by = ()
                else:
                    raise BindError(
                        "ORDER BY column not in output: "
                        + ", ".join(r for r, _ in order_by)
                    )
        if order_by:
            for reference, _ in order_by:
                if not bound.schema.has(reference):
                    raise BindError(
                        f"ORDER BY column {reference!r} not in output"
                    )
            bound = OrderBy(bound, tuple(order_by))
        if limit is not None:
            bound = Limit(bound, limit)
        return bound

    # ------------------------------------------------------------------
    # FROM clause
    # ------------------------------------------------------------------

    def _bind_from(
        self,
        from_items: tuple[A.AstNode, ...],
        relations: dict[str, Schema],
    ) -> LogicalOperator:
        if not from_items:
            raise BindError("FROM clause is required")
        plan = self._bind_from_item(from_items[0], relations)
        for item in from_items[1:]:
            right = self._bind_from_item(item, relations)
            plan = Join(plan, right, None, JoinKind.CROSS)
        return plan

    def _bind_from_item(
        self, item: A.AstNode, relations: dict[str, Schema]
    ) -> LogicalOperator:
        if isinstance(item, A.AstTableRef):
            if item.name in relations:
                # A group variable: scan of the bound temporary relation.
                if item.alias is not None and item.alias != item.name:
                    raise BindError(
                        f"group variable {item.name!r} cannot be aliased"
                    )
                return GroupScan(item.name, relations[item.name])
            table = self.catalog.table(item.name)
            return TableScan.of(table, item.alias)
        if isinstance(item, A.AstDerivedTable):
            child = self.bind_query(item.query, None, relations)
            if item.column_names:
                if len(item.column_names) != len(child.schema):
                    raise BindError(
                        f"derived table {item.alias!r} declares "
                        f"{len(item.column_names)} columns but the query "
                        f"produces {len(child.schema)}"
                    )
                items = tuple(
                    (ColumnRef(column.qualified_name), name)
                    for column, name in zip(child.schema, item.column_names)
                )
                child = Project(child, items)
            else:
                child = self._bare_names(child)
            return Alias(child, item.alias)
        if isinstance(item, A.AstJoin):
            left = self._bind_from_item(item.left, relations)
            right = self._bind_from_item(item.right, relations)
            combined = Scope(left.schema.concat(right.schema))
            predicate = (
                None
                if item.condition is None
                else self._bind_scalar(item.condition, combined, relations)
            )
            kind = JoinKind.CROSS if predicate is None else JoinKind.INNER
            return Join(left, right, predicate, kind)
        raise BindError(f"unsupported FROM item {type(item).__name__}")

    # ------------------------------------------------------------------
    # WHERE clause (incl. subquery decorrelation)
    # ------------------------------------------------------------------

    def _apply_where(
        self,
        plan: LogicalOperator,
        scope: Scope,
        where: A.AstExpression,
        relations: dict[str, Schema],
    ) -> tuple[LogicalOperator, Scope]:
        original_references = plan.schema.qualified_names()
        appended = False
        # Bind subquery-free conjuncts first and apply them *below* any
        # subquery Applies: the resulting selection sits on the Apply's
        # outer side, where the covering-range analysis can see it
        # (a selection above an Apply contributes nothing to the range).
        conjunct_list = self._ast_conjuncts(where)
        simple = [c for c in conjunct_list if not self._has_subquery(c)]
        complex_ = [c for c in conjunct_list if self._has_subquery(c)]
        if simple:
            bound = [self._bind_scalar(c, scope, relations) for c in simple]
            plan = Select(plan, conjoin(bound))
            scope = Scope(plan.schema, scope.parent, scope.correlations)
        plain: list[Expression] = []
        for conjunct in complex_:
            handled, plan, scope, added = self._bind_where_conjunct(
                conjunct, plan, scope, relations
            )
            appended = appended or added
            if handled is not None:
                plain.append(handled)
        predicate = conjoin(plain)
        if predicate is not None:
            plan = Select(plan, predicate)
        if appended:
            # Drop internal subquery-result columns appended by Apply.
            plan = Prune(plan, tuple(original_references))
            scope = Scope(plan.schema, scope.parent, scope.correlations)
        return plan, scope

    @classmethod
    def _has_subquery(cls, node: A.AstExpression) -> bool:
        """Whether an AST expression contains any kind of subquery."""
        if isinstance(node, (A.AstScalarSubquery, A.AstExists, A.AstInSubquery)):
            return True
        if isinstance(node, A.AstBinary):
            return cls._has_subquery(node.left) or cls._has_subquery(node.right)
        if isinstance(node, A.AstUnary):
            return cls._has_subquery(node.operand)
        if isinstance(node, A.AstIsNull):
            return cls._has_subquery(node.operand)
        if isinstance(node, A.AstBetween):
            return (
                cls._has_subquery(node.operand)
                or cls._has_subquery(node.low)
                or cls._has_subquery(node.high)
            )
        if isinstance(node, A.AstInList):
            return cls._has_subquery(node.operand) or any(
                cls._has_subquery(i) for i in node.items
            )
        if isinstance(node, A.AstFunction):
            return any(cls._has_subquery(a) for a in node.args)
        if isinstance(node, A.AstCase):
            if node.default is not None and cls._has_subquery(node.default):
                return True
            return any(
                cls._has_subquery(c) or cls._has_subquery(v)
                for c, v in node.whens
            )
        return False

    @staticmethod
    def _ast_conjuncts(expression: A.AstExpression) -> list[A.AstExpression]:
        if isinstance(expression, A.AstBinary) and expression.op == "and":
            return Binder._ast_conjuncts(expression.left) + Binder._ast_conjuncts(
                expression.right
            )
        return [expression]

    def _bind_where_conjunct(
        self,
        conjunct: A.AstExpression,
        plan: LogicalOperator,
        scope: Scope,
        relations: dict[str, Schema],
    ) -> tuple[Expression | None, LogicalOperator, Scope, bool]:
        """Returns (residual predicate, plan, scope, appended_columns)."""
        negated = False
        node = conjunct
        if isinstance(node, A.AstUnary) and node.op == "not":
            if isinstance(node.operand, A.AstExists):
                negated = True
                node = node.operand
        if isinstance(node, A.AstExists):
            plan = self._bind_exists(
                node.subquery, plan, scope, relations, node.negated or negated
            )
            return None, plan, Scope(plan.schema, scope.parent, scope.correlations), False
        if isinstance(node, A.AstInSubquery):
            plan = self._bind_in_subquery(node, plan, scope, relations)
            return None, plan, Scope(plan.schema, scope.parent, scope.correlations), False
        expression, plan, appended = self._bind_with_scalar_subqueries(
            conjunct, plan, scope, relations
        )
        if appended:
            scope = Scope(plan.schema, scope.parent, scope.correlations)
        return expression, plan, scope, appended

    def _bind_exists(
        self,
        subquery: A.AstQuery,
        plan: LogicalOperator,
        scope: Scope,
        relations: dict[str, Schema],
        negated: bool,
    ) -> LogicalOperator:
        sub_scope = Scope(Schema(()), parent=scope)
        inner = self._bind_correlated_query(subquery, sub_scope, relations)
        bindings = tuple(sub_scope.correlations)
        return Apply(plan, Exists(inner, negated), bindings)

    def _bind_in_subquery(
        self,
        node: A.AstInSubquery,
        plan: LogicalOperator,
        scope: Scope,
        relations: dict[str, Schema],
    ) -> LogicalOperator:
        sub_scope = Scope(Schema(()), parent=scope)
        inner = self._bind_correlated_query(node.subquery, sub_scope, relations)
        if len(inner.schema) != 1:
            raise BindError("IN subquery must produce exactly one column")
        operand = self._bind_scalar_in_subscope(node.operand, sub_scope, relations)
        inner_column = ColumnRef(inner.schema[0].qualified_name)
        test = Comparison(ComparisonOp.EQ, inner_column, operand)
        if node.negated:
            # SQL three-valued logic: ``x NOT IN S`` is UNKNOWN (so the row
            # is filtered) when x is NULL and S is non-empty, or when S
            # contains a NULL and no definite match. Widening the match
            # test to "equal OR either side NULL" makes plain NOT EXISTS
            # implement exactly that: any widened match kills the row,
            # while an empty S keeps it.
            test = Or(test, IsNull(inner_column), IsNull(operand))
        filtered = Select(inner, test)
        bindings = tuple(sub_scope.correlations)
        return Apply(plan, Exists(filtered, node.negated), bindings)

    def _bind_scalar_in_subscope(
        self,
        expression: A.AstExpression,
        sub_scope: Scope,
        relations: dict[str, Schema],
    ) -> Expression:
        """Bind an outer-side expression *inside* the subquery scope, so its
        column references become correlation parameters."""
        return self._bind_scalar(expression, sub_scope, relations)

    def _bind_correlated_query(
        self,
        subquery: A.AstQuery,
        sub_scope: Scope,
        relations: dict[str, Schema],
    ) -> LogicalOperator:
        """Bind a subquery whose correlations accumulate on ``sub_scope``.

        The subquery's own FROM scope chains to ``sub_scope`` (which has an
        empty schema and chains to the outer row scope), so unresolved names
        inside fall through and correlate.
        """
        if (
            len(subquery.selects) == 1
            and not subquery.order_by
            and subquery.limit is None
        ):
            return self._bind_select_correlated(
                subquery.single, sub_scope, relations
            )
        # Unions of correlated branches: bind each branch against sub_scope.
        plans = [
            self._bind_select_correlated(select, sub_scope, relations)
            for select in subquery.selects
        ]
        if len(plans) == 1:
            plan = plans[0]
        else:
            plans = [self._bare_names(p) for p in plans]
            plan = (
                UnionAll(tuple(plans))
                if subquery.union_all
                else Union(tuple(plans))
            )
        if subquery.order_by:
            plan = OrderBy(plan, tuple(subquery.order_by))
        if subquery.limit is not None:
            plan = Limit(plan, subquery.limit)
        return plan

    def _bind_select_correlated(
        self,
        select: A.AstSelect,
        sub_scope: Scope,
        relations: dict[str, Schema],
    ) -> LogicalOperator:
        plan = self._bind_from(select.from_items, relations)
        scope = Scope(plan.schema, parent=sub_scope)
        if select.where is not None:
            plan, scope = self._apply_where(plan, scope, select.where, relations)
        if select.gapply is not None:
            raise BindError("gapply is not allowed inside subqueries")
        bound = self._bind_projection(select, plan, scope, relations)
        # Correlations found while binding this block bubble to sub_scope
        # automatically (scope.parent chain); nothing else to do.
        return bound

    def _bind_with_scalar_subqueries(
        self,
        expression: A.AstExpression,
        plan: LogicalOperator,
        scope: Scope,
        relations: dict[str, Schema],
    ) -> tuple[Expression, LogicalOperator, bool]:
        """Bind an expression, splicing scalar subqueries in as Applies."""
        collected: list[tuple[str, A.AstQuery]] = []

        def replace(node: A.AstExpression) -> A.AstExpression:
            if isinstance(node, A.AstScalarSubquery):
                name = self._fresh("sq")
                collected.append((name, node.subquery))
                return A.AstColumn(name)
            if isinstance(node, A.AstBinary):
                return A.AstBinary(node.op, replace(node.left), replace(node.right))
            if isinstance(node, A.AstUnary):
                return A.AstUnary(node.op, replace(node.operand))
            if isinstance(node, A.AstIsNull):
                return A.AstIsNull(replace(node.operand), node.negated)
            if isinstance(node, A.AstBetween):
                return A.AstBetween(
                    replace(node.operand),
                    replace(node.low),
                    replace(node.high),
                    node.negated,
                )
            if isinstance(node, A.AstInList):
                return A.AstInList(
                    replace(node.operand),
                    tuple(replace(i) for i in node.items),
                    node.negated,
                )
            if isinstance(node, A.AstFunction):
                return A.AstFunction(
                    node.name,
                    tuple(replace(a) for a in node.args),
                    node.star,
                    node.distinct,
                )
            if isinstance(node, A.AstCase):
                return A.AstCase(
                    tuple((replace(c), replace(v)) for c, v in node.whens),
                    None if node.default is None else replace(node.default),
                )
            return node

        rewritten = replace(expression)
        appended = False
        current_scope = scope
        for name, subquery in collected:
            sub_scope = Scope(Schema(()), parent=current_scope)
            inner = self._bind_correlated_query(subquery, sub_scope, relations)
            if len(inner.schema) != 1:
                raise BindError("scalar subquery must produce exactly one column")
            inner = Project(
                inner, ((ColumnRef(inner.schema[0].qualified_name), name),)
            )
            plan = Apply(plan, inner, tuple(sub_scope.correlations))
            current_scope = Scope(plan.schema, scope.parent, scope.correlations)
            appended = True
        bound = self._bind_scalar(rewritten, current_scope, relations)
        return bound, plan, appended

    # ------------------------------------------------------------------
    # GApply selects
    # ------------------------------------------------------------------

    def _bind_gapply(
        self,
        select: A.AstSelect,
        plan: LogicalOperator,
        scope: Scope,
        relations: dict[str, Schema],
    ) -> LogicalOperator:
        if select.group_variable is None:
            raise BindError(
                "gapply requires a group variable: GROUP BY cols : var"
            )
        if not select.group_by:
            raise BindError("gapply requires at least one grouping column")
        if select.having is not None:
            raise BindError("HAVING is not allowed with gapply")
        variable = select.group_variable
        outer_schema = plan.schema
        for reference in select.group_by:
            outer_schema.index_of(reference)  # validate eagerly

        inner_relations = dict(relations)
        inner_relations[variable] = outer_schema
        per_group = self.bind_query(
            select.gapply.query, outer_scope=scope.parent, relations=inner_relations
        )
        if select.gapply.column_names:
            names = select.gapply.column_names
            if len(names) == len(per_group.schema):
                items = tuple(
                    (ColumnRef(column.qualified_name), name)
                    for column, name in zip(per_group.schema, names)
                )
                per_group = Project(per_group, items)
            else:
                raise BindError(
                    f"gapply AS clause names {len(names)} columns but the "
                    f"per-group query produces {len(per_group.schema)}"
                )
        return GApply(plan, tuple(select.group_by), per_group, variable)

    # ------------------------------------------------------------------
    # Projection / aggregation
    # ------------------------------------------------------------------

    def _bind_projection(
        self,
        select: A.AstSelect,
        plan: LogicalOperator,
        scope: Scope,
        relations: dict[str, Schema],
    ) -> LogicalOperator:
        # `select *` alone passes the input through unchanged (qualifiers
        # preserved). Besides avoiding a useless Project, this keeps
        # whole-group-returning per-group queries (`select * from g where
        # exists(...)`) in the canonical shape the group-selection rules
        # match.
        if (
            len(select.items) == 1
            and isinstance(select.items[0].expression, A.AstStar)
            and select.items[0].expression.qualifier is None
            and not select.group_by
            and select.having is None
        ):
            return Distinct(plan) if select.distinct else plan
        items = self._expand_stars(select.items, plan.schema)
        aggregates = self._collect_aggregates(items, select.having)
        if select.group_by or aggregates:
            plan = self._bind_aggregation(
                select, plan, scope, items, aggregates, relations
            )
        else:
            plan = self._bind_plain_projection(items, plan, scope, relations)
        if select.distinct:
            plan = Distinct(plan)
        return plan

    def _expand_stars(
        self, items: tuple[A.AstSelectItem, ...], schema: Schema
    ) -> list[A.AstSelectItem]:
        expanded: list[A.AstSelectItem] = []
        for item in items:
            if isinstance(item.expression, A.AstStar):
                qualifier = item.expression.qualifier
                for column in schema:
                    if qualifier is not None and column.qualifier != qualifier:
                        continue
                    expanded.append(
                        A.AstSelectItem(
                            A.AstColumn(column.qualified_name), column.name
                        )
                    )
                if qualifier is not None and not any(
                    column.qualifier == qualifier for column in schema
                ):
                    raise BindError(f"unknown qualifier {qualifier!r} in select *")
            else:
                expanded.append(item)
        if not expanded:
            raise BindError("empty select list")
        return expanded

    def _collect_aggregates(
        self,
        items: list[A.AstSelectItem],
        having: A.AstExpression | None,
    ) -> list[A.AstFunction]:
        found: list[A.AstFunction] = []

        def walk(node: A.AstExpression) -> None:
            if isinstance(node, A.AstFunction):
                if node.name in AGGREGATE_NAMES:
                    if node not in found:
                        found.append(node)
                    return  # aggregates cannot nest
                for arg in node.args:
                    walk(arg)
            elif isinstance(node, A.AstBinary):
                walk(node.left)
                walk(node.right)
            elif isinstance(node, A.AstUnary):
                walk(node.operand)
            elif isinstance(node, A.AstIsNull):
                walk(node.operand)
            elif isinstance(node, A.AstBetween):
                walk(node.operand)
                walk(node.low)
                walk(node.high)
            elif isinstance(node, A.AstInList):
                walk(node.operand)
                for item in node.items:
                    walk(item)
            elif isinstance(node, A.AstCase):
                for condition, value in node.whens:
                    walk(condition)
                    walk(value)
                if node.default is not None:
                    walk(node.default)
            # Subqueries are separate scopes; do not descend.

        for item in items:
            walk(item.expression)
        if having is not None:
            walk(having)
        return found

    def _bind_aggregation(
        self,
        select: A.AstSelect,
        plan: LogicalOperator,
        scope: Scope,
        items: list[A.AstSelectItem],
        aggregates: list[A.AstFunction],
        relations: dict[str, Schema],
    ) -> LogicalOperator:
        # 1. Build AggregateCalls with internal aliases.
        agg_aliases: dict[A.AstFunction, str] = {}
        calls: list[AggregateCall] = []
        for aggregate in aggregates:
            alias = self._fresh("agg")
            agg_aliases[aggregate] = alias
            if aggregate.star:
                calls.append(
                    AggregateCall(AggregateFunction.COUNT_STAR, None, alias=alias)
                )
                continue
            if len(aggregate.args) != 1:
                raise BindError(
                    f"{aggregate.name}() takes exactly one argument"
                )
            argument = self._bind_scalar(aggregate.args[0], scope, relations)
            calls.append(
                AggregateCall(
                    _AGG_MAP[aggregate.name],
                    argument,
                    aggregate.distinct,
                    alias,
                )
            )

        # 2. Group.
        for reference in select.group_by:
            plan.schema.index_of(reference)
        grouped = GroupBy(plan, tuple(select.group_by), tuple(calls))
        grouped_scope = Scope(grouped.schema, scope.parent, scope.correlations)

        # 3. HAVING.
        result: LogicalOperator = grouped
        if select.having is not None:
            having = self._bind_scalar(
                self._replace_aggregates(select.having, agg_aliases),
                grouped_scope,
                relations,
            )
            result = Select(result, having)

        # 4. Final projection.
        out_items = []
        for index, item in enumerate(items):
            rewritten = self._replace_aggregates(item.expression, agg_aliases)
            expression = self._bind_scalar(rewritten, grouped_scope, relations)
            out_items.append(
                (expression, self._output_name(item, expression, index))
            )
        return Project(result, self._dedupe_items(out_items))

    def _replace_aggregates(
        self,
        node: A.AstExpression,
        agg_aliases: dict[A.AstFunction, str],
    ) -> A.AstExpression:
        if isinstance(node, A.AstFunction):
            if node in agg_aliases:
                return A.AstColumn(agg_aliases[node])
            return A.AstFunction(
                node.name,
                tuple(self._replace_aggregates(a, agg_aliases) for a in node.args),
                node.star,
                node.distinct,
            )
        if isinstance(node, A.AstBinary):
            return A.AstBinary(
                node.op,
                self._replace_aggregates(node.left, agg_aliases),
                self._replace_aggregates(node.right, agg_aliases),
            )
        if isinstance(node, A.AstUnary):
            return A.AstUnary(
                node.op, self._replace_aggregates(node.operand, agg_aliases)
            )
        if isinstance(node, A.AstIsNull):
            return A.AstIsNull(
                self._replace_aggregates(node.operand, agg_aliases), node.negated
            )
        if isinstance(node, A.AstBetween):
            return A.AstBetween(
                self._replace_aggregates(node.operand, agg_aliases),
                self._replace_aggregates(node.low, agg_aliases),
                self._replace_aggregates(node.high, agg_aliases),
                node.negated,
            )
        if isinstance(node, A.AstCase):
            return A.AstCase(
                tuple(
                    (
                        self._replace_aggregates(c, agg_aliases),
                        self._replace_aggregates(v, agg_aliases),
                    )
                    for c, v in node.whens
                ),
                None
                if node.default is None
                else self._replace_aggregates(node.default, agg_aliases),
            )
        return node

    def _bind_plain_projection(
        self,
        items: list[A.AstSelectItem],
        plan: LogicalOperator,
        scope: Scope,
        relations: dict[str, Schema],
    ) -> LogicalOperator:
        out_items = []
        appended = False
        for index, item in enumerate(items):
            expression, plan, added = self._bind_with_scalar_subqueries(
                item.expression, plan, scope, relations
            )
            if added:
                scope = Scope(plan.schema, scope.parent, scope.correlations)
                appended = True
            out_items.append(
                (expression, self._output_name(item, expression, index))
            )
        return Project(plan, self._dedupe_items(out_items))

    @staticmethod
    def _output_name(
        item: A.AstSelectItem, expression: Expression, index: int
    ) -> str:
        if item.alias:
            return item.alias
        if isinstance(expression, ColumnRef):
            return expression.bare_name
        return f"col{index + 1}"

    @staticmethod
    def _dedupe_items(
        items: list[tuple[Expression, str]]
    ) -> tuple[tuple[Expression, str], ...]:
        names = Binder._dedupe([name for _, name in items])
        return tuple(
            (expression, name)
            for (expression, _), name in zip(items, names)
        )

    # ------------------------------------------------------------------
    # Scalar expressions (no subqueries)
    # ------------------------------------------------------------------

    def _bind_scalar(
        self,
        node: A.AstExpression,
        scope: Scope,
        relations: dict[str, Schema],
    ) -> Expression:
        if isinstance(node, A.AstColumn):
            return scope.resolve(node.name)
        if isinstance(node, A.AstLiteral):
            return Literal(node.value)
        if isinstance(node, A.AstParameter):
            # Seed-valued so the optimizer costs the template exactly as
            # it would the original literal query (see BindParameter).
            return BindParameter(node.seed, node.index)
        if isinstance(node, A.AstUnary):
            operand = self._bind_scalar(node.operand, scope, relations)
            return Not(operand) if node.op == "not" else Negate(operand)
        if isinstance(node, A.AstBinary):
            left = self._bind_scalar(node.left, scope, relations)
            right = self._bind_scalar(node.right, scope, relations)
            if node.op == "and":
                return And(left, right)
            if node.op == "or":
                return Or(left, right)
            if node.op in _COMPARISON_MAP:
                return Comparison(_COMPARISON_MAP[node.op], left, right)
            if node.op in _ARITHMETIC_MAP:
                return Arithmetic(_ARITHMETIC_MAP[node.op], left, right)
            raise BindError(f"unsupported operator {node.op!r}")
        if isinstance(node, A.AstIsNull):
            return IsNull(
                self._bind_scalar(node.operand, scope, relations), node.negated
            )
        if isinstance(node, A.AstBetween):
            operand = self._bind_scalar(node.operand, scope, relations)
            low = self._bind_scalar(node.low, scope, relations)
            high = self._bind_scalar(node.high, scope, relations)
            between = And(
                Comparison(ComparisonOp.GE, operand, low),
                Comparison(ComparisonOp.LE, operand, high),
            )
            return Not(between) if node.negated else between
        if isinstance(node, A.AstInList):
            return InList(
                self._bind_scalar(node.operand, scope, relations),
                tuple(self._bind_scalar(i, scope, relations) for i in node.items),
                node.negated,
            )
        if isinstance(node, A.AstCase):
            whens = tuple(
                (
                    self._bind_scalar(c, scope, relations),
                    self._bind_scalar(v, scope, relations),
                )
                for c, v in node.whens
            )
            default = (
                Literal(None)
                if node.default is None
                else self._bind_scalar(node.default, scope, relations)
            )
            return CaseWhen(whens, default)
        if isinstance(node, A.AstFunction):
            if node.name in AGGREGATE_NAMES:
                raise BindError(
                    f"aggregate {node.name}() is not allowed here (only in "
                    "select lists and HAVING of grouped queries)"
                )
            args = tuple(
                self._bind_scalar(a, scope, relations) for a in node.args
            )
            return FunctionCall(node.name, args)
        if isinstance(node, (A.AstScalarSubquery, A.AstExists, A.AstInSubquery)):
            raise BindError(
                "subquery is not allowed in this position (supported in "
                "WHERE conjuncts and plain select items)"
            )
        if isinstance(node, A.AstStar):
            raise BindError("* is only allowed as a whole select item")
        raise BindError(f"unsupported expression {type(node).__name__}")


def bind_sql(text: str, catalog: Catalog) -> LogicalOperator:
    """Parse and bind SQL text into a logical plan."""
    return Binder(catalog).bind(parse(text))
