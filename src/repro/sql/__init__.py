"""SQL front end: lexer, parser, AST and binder (with the GApply syntax)."""

from repro.sql.ast import AstQuery, AstSelect
from repro.sql.binder import Binder, bind_sql
from repro.sql.lexer import Token, TokenType, tokenize
from repro.sql.parser import Parser, parse

__all__ = [
    "AstQuery",
    "AstSelect",
    "Binder",
    "Parser",
    "Token",
    "TokenType",
    "bind_sql",
    "parse",
    "tokenize",
]
