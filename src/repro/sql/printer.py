"""AST -> SQL text in the engine's own dialect.

The inverse of :mod:`repro.sql.parser`: ``parse(print_query(ast)) == ast``
for every AST the parser can produce (modulo redundant parentheses, which
the printer inserts liberally instead of tracking precedence).

This exists for the differential fuzzer (:mod:`repro.fuzz`), which
generates random :class:`~repro.sql.ast.AstQuery` trees and needs to

* persist minimized reproducers as plain SQL text under
  ``tests/fuzz_corpus/``, and
* feed the *same* query text to the engine and to the SQLite oracle
  (:mod:`repro.sql.sqlite`), so a mismatch is attributable to execution,
  not to two divergent in-memory copies of the query.
"""

from __future__ import annotations

from repro.errors import SqlSyntaxError
from repro.sql import ast as A


def print_statement(statement: "A.AstQuery | A.AstExplain") -> str:
    """Render a statement: a query, or ``EXPLAIN [ANALYZE] <query>``."""
    if isinstance(statement, A.AstExplain):
        prefix = "explain analyze " if statement.analyze else "explain "
        return prefix + print_query(statement.query)
    return print_query(statement)


def print_query(query: A.AstQuery) -> str:
    """Render a full query (union chain + ORDER BY / LIMIT)."""
    parts = []
    for index, select in enumerate(query.selects):
        if index:
            parts.append("union all" if query.union_all else "union")
        parts.append(print_select(select))
    if query.order_by:
        items = ", ".join(
            ref if ascending else f"{ref} desc" for ref, ascending in query.order_by
        )
        parts.append(f"order by {items}")
    if query.limit is not None:
        parts.append(f"limit {query.limit}")
    return " ".join(parts)


def print_select(select: A.AstSelect) -> str:
    parts = ["select"]
    if select.distinct:
        parts.append("distinct")
    if select.gapply is not None:
        inner = print_query(select.gapply.query)
        clause = f"gapply({inner})"
        if select.gapply.column_names:
            clause += " as (" + ", ".join(select.gapply.column_names) + ")"
        parts.append(clause)
    else:
        parts.append(", ".join(print_select_item(item) for item in select.items))
    parts.append("from")
    parts.append(", ".join(print_from_item(item) for item in select.from_items))
    if select.where is not None:
        parts.append("where " + print_expression(select.where))
    if select.group_by:
        clause = "group by " + ", ".join(select.group_by)
        if select.group_variable is not None:
            clause += f" : {select.group_variable}"
        parts.append(clause)
    if select.having is not None:
        parts.append("having " + print_expression(select.having))
    return " ".join(parts)


def print_select_item(item: A.AstSelectItem) -> str:
    if isinstance(item.expression, A.AstStar):
        qualifier = item.expression.qualifier
        star = f"{qualifier}.*" if qualifier else "*"
        return star  # * takes no alias in the dialect
    rendered = print_expression(item.expression)
    if item.alias:
        return f"{rendered} as {item.alias}"
    return rendered


def print_from_item(item: A.AstNode) -> str:
    if isinstance(item, A.AstTableRef):
        if item.alias and item.alias != item.name:
            return f"{item.name} as {item.alias}"
        return item.name
    if isinstance(item, A.AstDerivedTable):
        rendered = f"({print_query(item.query)}) as {item.alias}"
        if item.column_names:
            rendered += "(" + ", ".join(item.column_names) + ")"
        return rendered
    if isinstance(item, A.AstJoin):
        left = print_from_item(item.left)
        right = print_from_item(item.right)
        if item.condition is None:
            return f"{left} cross join {right}"
        return f"{left} join {right} on {print_expression(item.condition)}"
    raise SqlSyntaxError(f"cannot print FROM item {type(item).__name__}")


def print_literal(value) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    if isinstance(value, float):
        # repr round-trips doubles exactly, but bare "1e-05"/"inf" shapes
        # are avoided by the fuzzer; keep a '.0' so the lexer sees a float.
        text = repr(value)
        if "e" not in text and "E" not in text and "." not in text:
            text += ".0"
        return text
    return str(value)


def print_expression(node: A.AstExpression) -> str:
    """Render an expression, parenthesizing instead of tracking precedence."""
    if isinstance(node, A.AstColumn):
        return node.name
    if isinstance(node, A.AstLiteral):
        return print_literal(node.value)
    if isinstance(node, A.AstParameter):
        # 1-based on the wire, matching prepared-statement convention.
        return f"${node.index + 1}"
    if isinstance(node, A.AstStar):
        return "*"
    if isinstance(node, A.AstUnary):
        if node.op == "not":
            return f"(not {print_expression(node.operand)})"
        return f"(- {print_expression(node.operand)})"
    if isinstance(node, A.AstBinary):
        op = node.op
        return f"({print_expression(node.left)} {op} {print_expression(node.right)})"
    if isinstance(node, A.AstIsNull):
        word = "is not null" if node.negated else "is null"
        return f"({print_expression(node.operand)} {word})"
    if isinstance(node, A.AstBetween):
        word = "not between" if node.negated else "between"
        return (
            f"({print_expression(node.operand)} {word} "
            f"{print_expression(node.low)} and {print_expression(node.high)})"
        )
    if isinstance(node, A.AstInList):
        word = "not in" if node.negated else "in"
        items = ", ".join(print_expression(i) for i in node.items)
        return f"({print_expression(node.operand)} {word} ({items}))"
    if isinstance(node, A.AstInSubquery):
        word = "not in" if node.negated else "in"
        return (
            f"({print_expression(node.operand)} {word} "
            f"({print_query(node.subquery)}))"
        )
    if isinstance(node, A.AstExists):
        prefix = "not exists" if node.negated else "exists"
        return f"({prefix} ({print_query(node.subquery)}))"
    if isinstance(node, A.AstScalarSubquery):
        return f"({print_query(node.subquery)})"
    if isinstance(node, A.AstFunction):
        if node.star:
            return "count(*)"
        prefix = "distinct " if node.distinct else ""
        args = ", ".join(print_expression(a) for a in node.args)
        return f"{node.name}({prefix}{args})"
    if isinstance(node, A.AstCase):
        parts = ["case"]
        for condition, value in node.whens:
            parts.append(
                f"when {print_expression(condition)} then {print_expression(value)}"
            )
        if node.default is not None:
            parts.append(f"else {print_expression(node.default)}")
        parts.append("end")
        return " ".join(parts)
    raise SqlSyntaxError(f"cannot print expression {type(node).__name__}")
