"""Abstract syntax tree for the SQL dialect.

The AST is produced by :mod:`repro.sql.parser` and consumed by
:mod:`repro.sql.binder`. Expression nodes are separate from the algebra's
:class:`~repro.algebra.expressions.Expression` because AST expressions may
contain *subqueries*, which the binder decorrelates into
:class:`~repro.algebra.operators.Apply` plan nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import BindError


class AstNode:
    """Marker base class for AST nodes."""


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


class AstExpression(AstNode):
    pass


@dataclass(frozen=True)
class AstColumn(AstExpression):
    """A possibly-qualified column reference, e.g. ``part.p_name``."""

    name: str


@dataclass(frozen=True)
class AstLiteral(AstExpression):
    value: Any


@dataclass(frozen=True)
class AstParameter(AstExpression):
    """A positional parameter marker, printed as ``$<index+1>``.

    Produced two ways: written explicitly in prepared-statement text
    (``where p_size < $1``), or synthesized by the plan-cache normalizer
    (:mod:`repro.sql.normalize`), which extracts literals into markers so
    queries differing only in literal values share one cache key. ``seed``
    carries the literal value the marker replaced — the optimizer plans
    against it — and is excluded from equality so two parameterizations of
    the same shape compare (and hash) identically.
    """

    index: int  # 0-based slot into the parameter vector
    seed: Any = field(default=None, compare=False)


@dataclass(frozen=True)
class AstStar(AstExpression):
    """``*`` in a select list (optionally ``alias.*``)."""

    qualifier: str | None = None


@dataclass(frozen=True)
class AstUnary(AstExpression):
    """Unary operators: ``-expr`` and ``NOT expr``."""

    op: str  # "-" | "not"
    operand: AstExpression


@dataclass(frozen=True)
class AstBinary(AstExpression):
    """Binary operators: arithmetic, comparison, AND, OR."""

    op: str  # "+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "and", "or"
    left: AstExpression
    right: AstExpression


@dataclass(frozen=True)
class AstIsNull(AstExpression):
    operand: AstExpression
    negated: bool = False


@dataclass(frozen=True)
class AstBetween(AstExpression):
    operand: AstExpression
    low: AstExpression
    high: AstExpression
    negated: bool = False


@dataclass(frozen=True)
class AstInList(AstExpression):
    operand: AstExpression
    items: tuple[AstExpression, ...]
    negated: bool = False


@dataclass(frozen=True)
class AstInSubquery(AstExpression):
    operand: AstExpression
    subquery: "AstQuery"
    negated: bool = False


@dataclass(frozen=True)
class AstExists(AstExpression):
    subquery: "AstQuery"
    negated: bool = False


@dataclass(frozen=True)
class AstScalarSubquery(AstExpression):
    """A parenthesized query used as a scalar value."""

    subquery: "AstQuery"


@dataclass(frozen=True)
class AstFunction(AstExpression):
    """Function call: scalar functions and the five aggregates.

    ``star`` marks ``count(*)``; ``distinct`` marks ``count(distinct x)``.
    """

    name: str
    args: tuple[AstExpression, ...]
    star: bool = False
    distinct: bool = False


@dataclass(frozen=True)
class AstCase(AstExpression):
    whens: tuple[tuple[AstExpression, AstExpression], ...]
    default: AstExpression | None = None


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class AstSelectItem(AstNode):
    expression: AstExpression
    alias: str | None = None


@dataclass(frozen=True)
class AstTableRef(AstNode):
    """Plain table reference with optional alias."""

    name: str
    alias: str | None = None


@dataclass(frozen=True)
class AstDerivedTable(AstNode):
    """Parenthesized subquery in FROM, with mandatory alias and optional
    column renames: ``(select ...) as tmp(a, b, c)``."""

    query: "AstQuery"
    alias: str
    column_names: tuple[str, ...] = ()


@dataclass(frozen=True)
class AstJoin(AstNode):
    """Explicit ``A [INNER] JOIN B ON cond`` (cond None for CROSS JOIN)."""

    left: AstNode
    right: AstNode
    condition: AstExpression | None


@dataclass(frozen=True)
class AstGApplyItem(AstNode):
    """The paper's select-clause extension: ``gapply(<query>) [as (cols)]``.

    ``query`` is the per-group query; its FROM clause references the group
    variable declared after ':' in the GROUP BY clause.
    """

    query: "AstQuery"
    column_names: tuple[str, ...] = ()


@dataclass(frozen=True)
class AstSelect(AstNode):
    """One SELECT block."""

    items: tuple[AstSelectItem, ...]
    from_items: tuple[AstNode, ...]
    where: AstExpression | None = None
    group_by: tuple[str, ...] = ()
    group_variable: str | None = None  # the ": x" extension
    having: AstExpression | None = None
    distinct: bool = False
    gapply: AstGApplyItem | None = None


@dataclass(frozen=True)
class AstQuery(AstNode):
    """A full query: UNION ALL chain of selects plus optional ORDER BY."""

    selects: tuple[AstSelect, ...]
    union_all: bool = True  # False => UNION (distinct)
    order_by: tuple[tuple[str, bool], ...] = ()
    limit: int | None = None

    @property
    def single(self) -> AstSelect:
        if len(self.selects) != 1:
            raise BindError("query is a union, not a single select")
        return self.selects[0]


@dataclass(frozen=True)
class AstExplain(AstNode):
    """``EXPLAIN [ANALYZE] <query>``: render the plan for ``query`` instead
    of its result; with ANALYZE, execute it and annotate the plan with the
    per-operator metrics actually observed."""

    query: AstQuery
    analyze: bool = False
