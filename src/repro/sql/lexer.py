"""SQL lexer.

Tokenizes the dialect described in :mod:`repro.sql.parser`, including the
paper's two syntax extensions: the ``gapply`` keyword and the ``:`` group-
variable separator in the GROUP BY clause ("group by ps_suppkey : tmpSupp").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SqlSyntaxError


class TokenType(enum.Enum):
    IDENT = "ident"
    KEYWORD = "keyword"
    NUMBER = "number"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "select", "from", "where", "group", "by", "having", "order",
        "union", "all", "distinct", "as", "and", "or", "not", "null",
        "true", "false", "is", "in", "exists", "between", "case", "when",
        "then", "else", "end", "gapply", "join", "inner", "cross", "on",
        "asc", "desc", "limit", "explain", "analyze",
    }
)

# Multi-character symbols first so '<=' wins over '<'.
SYMBOLS = ("<>", "<=", ">=", "!=", "(", ")", ",", ".", "+", "-", "*", "/",
           "%", "=", "<", ">", ":", ";")


@dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.type is TokenType.KEYWORD and self.value == word

    def is_symbol(self, symbol: str) -> bool:
        return self.type is TokenType.SYMBOL and self.value == symbol

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Token({self.type.value}, {self.value!r})"


def tokenize(text: str) -> list[Token]:
    """Tokenize SQL text; raises :class:`SqlSyntaxError` on bad input."""
    tokens: list[Token] = []
    index = 0
    line = 1
    line_start = 0
    length = len(text)

    def location() -> tuple[int, int]:
        return line, index - line_start + 1

    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
            index += 1
            line_start = index
            continue
        if char.isspace():
            index += 1
            continue
        if text.startswith("--", index):
            newline = text.find("\n", index)
            index = length if newline == -1 else newline
            continue
        if char == "'":
            token_line, token_column = location()
            index += 1
            chunks: list[str] = []
            while True:
                if index >= length:
                    raise SqlSyntaxError(
                        "unterminated string literal", token_line, token_column
                    )
                if text[index] == "'":
                    if index + 1 < length and text[index + 1] == "'":
                        chunks.append("'")
                        index += 2
                        continue
                    index += 1
                    break
                chunks.append(text[index])
                index += 1
            tokens.append(
                Token(TokenType.STRING, "".join(chunks), token_line, token_column)
            )
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            token_line, token_column = location()
            start = index
            seen_dot = False
            while index < length and (
                text[index].isdigit() or (text[index] == "." and not seen_dot)
            ):
                if text[index] == ".":
                    # A dot not followed by a digit is a qualifier separator.
                    if index + 1 >= length or not text[index + 1].isdigit():
                        break
                    seen_dot = True
                index += 1
            if index < length and text[index] in "eE":
                probe = index + 1
                if probe < length and text[probe] in "+-":
                    probe += 1
                if probe < length and text[probe].isdigit():
                    index = probe
                    while index < length and text[index].isdigit():
                        index += 1
            tokens.append(
                Token(TokenType.NUMBER, text[start:index], token_line, token_column)
            )
            continue
        if char.isalpha() or char == "_" or char == "$":
            token_line, token_column = location()
            start = index
            while index < length and (
                text[index].isalnum() or text[index] in "_$"
            ):
                index += 1
            word = text[start:index]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(
                    Token(TokenType.KEYWORD, lowered, token_line, token_column)
                )
            else:
                tokens.append(
                    Token(TokenType.IDENT, word, token_line, token_column)
                )
            continue
        matched = False
        for symbol in SYMBOLS:
            if text.startswith(symbol, index):
                token_line, token_column = location()
                tokens.append(
                    Token(TokenType.SYMBOL, symbol, token_line, token_column)
                )
                index += len(symbol)
                matched = True
                break
        if not matched:
            bad_line, bad_column = location()
            raise SqlSyntaxError(
                f"unexpected character {char!r}", bad_line, bad_column
            )
    final_line, final_column = location()
    tokens.append(Token(TokenType.EOF, "", final_line, final_column))
    return tokens
