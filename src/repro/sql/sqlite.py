"""AST -> plain SQLite SQL: the differential-testing oracle lowering.

:mod:`repro.fuzz` checks the engine against ``sqlite3`` (an independent,
mature implementation) by translating each dialect query into SQL that
SQLite can execute and comparing result multisets. Everything except
GApply maps almost one-to-one; the two genuinely interesting parts are:

**GApply expansion.** SQLite (3.40, no LATERAL) cannot run a per-group
query directly, so ``select gapply(PGQ) ... group by k1..kn : g`` becomes

.. code-block:: sql

    WITH __outer AS (SELECT * FROM <outer from> [WHERE <outer where>]),
         __keys  AS (SELECT DISTINCT k1..kn FROM __outer)
    <branch 1> UNION ALL <branch 2> ...

with one SQL block per union branch of the PGQ. A branch whose select
list is a scalar aggregate (aggregates, no GROUP BY) yields exactly one
row per group, so each aggregate item becomes its own correlated scalar
subquery over ``__outer``::

    SELECT __keys.k1.., (SELECT <item> FROM __outer g1
                         WHERE g1.k1 IS __keys.k1 .. [AND <branch where>])
    FROM __keys

Any other branch joins ``__keys`` back to ``__outer``::

    SELECT [DISTINCT] __keys.k1.., <items>
    FROM __keys, __outer g1
    WHERE (g1.k1 IS __keys.k1 AND ..) [AND <branch where>]
    [GROUP BY __keys.k1.., <branch keys>] [HAVING ..]

``IS`` is SQLite's null-safe equality, which matches the engine's
treatment of NULL grouping keys (NULLs form one group). Subqueries
*inside* a branch that scan the group variable get a fresh ``__outer``
alias (g2, g3, ..) plus the same correlation conjuncts, so the paper's
Q2/Q3/Q4 per-group averages translate faithfully.

**Dialect gaps.** SQLite has no ``AS t(a, b)`` derived-table column
aliases, so those names are pushed down onto the subquery's select items;
``concat(..)`` becomes ``||``; ``true``/``false`` become ``1``/``0``.

Known semantic gaps (the fuzz generator steers around them; see
DESIGN.md): division by zero (engine raises, SQLite returns NULL),
cross-type comparisons (engine raises, SQLite's type ordering allows
them), scalar subqueries returning more than one row, and float
aggregation order (sidestepped by generating exactly-representable
values).
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.sql import ast as A

AGGREGATE_NAMES = frozenset({"count", "sum", "avg", "min", "max"})

# Engine scalar functions with an identical SQLite builtin.
_DIRECT_FUNCTIONS = frozenset({"abs", "length", "upper", "lower", "coalesce", "round"})

OUTER_CTE = "__outer"
KEYS_CTE = "__keys"


class OracleUnsupportedError(ReproError):
    """The oracle lowering does not cover this construct.

    Raised instead of producing SQL with different semantics; the fuzzer
    treats it as "skip", never as "pass".
    """


def contains_aggregate(node: A.AstExpression) -> bool:
    """True when the expression calls an aggregate outside any subquery."""
    if isinstance(node, A.AstFunction):
        if node.name.lower() in AGGREGATE_NAMES:
            return True
        return any(contains_aggregate(arg) for arg in node.args)
    if isinstance(node, A.AstUnary):
        return contains_aggregate(node.operand)
    if isinstance(node, A.AstBinary):
        return contains_aggregate(node.left) or contains_aggregate(node.right)
    if isinstance(node, A.AstIsNull):
        return contains_aggregate(node.operand)
    if isinstance(node, A.AstBetween):
        return any(
            contains_aggregate(part) for part in (node.operand, node.low, node.high)
        )
    if isinstance(node, A.AstInList):
        return contains_aggregate(node.operand) or any(
            contains_aggregate(item) for item in node.items
        )
    if isinstance(node, A.AstCase):
        parts = [part for when in node.whens for part in when]
        if node.default is not None:
            parts.append(node.default)
        return any(contains_aggregate(part) for part in parts)
    # Subqueries (scalar / exists / in) form their own aggregation scope.
    return False


def _references_columns(node: A.AstExpression) -> bool:
    """True when the expression reads any column (outside subqueries)."""
    if isinstance(node, (A.AstColumn, A.AstStar)):
        return True
    if isinstance(node, A.AstUnary):
        return _references_columns(node.operand)
    if isinstance(node, A.AstBinary):
        return _references_columns(node.left) or _references_columns(node.right)
    if isinstance(node, A.AstIsNull):
        return _references_columns(node.operand)
    if isinstance(node, A.AstBetween):
        return any(
            _references_columns(part) for part in (node.operand, node.low, node.high)
        )
    if isinstance(node, A.AstInList):
        return _references_columns(node.operand) or any(
            _references_columns(item) for item in node.items
        )
    if isinstance(node, A.AstFunction):
        return node.star or any(_references_columns(arg) for arg in node.args)
    if isinstance(node, A.AstCase):
        parts = [part for when in node.whens for part in when]
        if node.default is not None:
            parts.append(node.default)
        return any(_references_columns(part) for part in parts)
    return False


def _bare(name: str) -> str:
    return name.split(".")[-1]


def to_sqlite(query: A.AstQuery) -> str:
    """Lower a dialect query to SQLite SQL (top-level ORDER BY dropped).

    The oracle compares *multisets*, so result order is irrelevant; a
    top-level LIMIT would make the multiset nondeterministic and is
    rejected.
    """
    if query.limit is not None:
        raise OracleUnsupportedError("LIMIT yields a nondeterministic multiset")
    gapply_selects = [s for s in query.selects if s.gapply is not None]
    if gapply_selects:
        if len(query.selects) != 1:
            raise OracleUnsupportedError("gapply must be the only union branch")
        return _GApplyLowering(query.selects[0]).sql()
    writer = _Writer()
    connector = " union all " if query.union_all else " union "
    return connector.join(writer.select(select) for select in query.selects)


class _Writer:
    """Plain (non-GApply) dialect -> SQLite printer.

    ``group_var``/``correlation`` are set by :class:`_GApplyLowering` so
    that subqueries scanning the group variable are rewritten to scan
    ``__outer`` under a fresh alias with the group-key correlation
    conjuncts appended.
    """

    def __init__(
        self,
        group_var: str | None = None,
        keys: tuple[str, ...] = (),
        alias_counter: list[int] | None = None,
    ):
        self.group_var = group_var
        self.keys = keys
        # Shared, mutable: every __outer occurrence in one lowering gets a
        # distinct alias regardless of nesting depth.
        self.alias_counter = alias_counter if alias_counter is not None else [0]
        # Innermost __outer alias while printing a select that scans the
        # group variable: grouping-key columns exist in both __keys and
        # that alias, so bare references to them must be qualified.
        self.scan_alias: str | None = None

    # -- group-variable plumbing --------------------------------------

    def fresh_alias(self) -> str:
        self.alias_counter[0] += 1
        return f"g{self.alias_counter[0]}"

    def correlation(self, alias: str) -> list[str]:
        return [f"{alias}.{k} IS {KEYS_CTE}.{k}" for k in self.keys]

    def qualify(self, name: str) -> str:
        """Disambiguate a bare grouping-key reference against __keys.

        Inside a select scanning the group variable, key columns exist in
        both ``__keys`` and the ``__outer`` alias; the group's own rows
        (the alias) are what the engine's GroupScan reads.
        """
        if self.scan_alias is not None and "." not in name and name in self.keys:
            return f"{self.scan_alias}.{name}"
        return name

    # -- queries ------------------------------------------------------

    def query(self, query: A.AstQuery) -> str:
        if query.limit is not None or query.order_by:
            raise OracleUnsupportedError("ORDER BY / LIMIT in a subquery")
        if any(s.gapply is not None for s in query.selects):
            raise OracleUnsupportedError("nested gapply")
        connector = " union all " if query.union_all else " union "
        return connector.join(self.select(select) for select in query.selects)

    def select(self, select: A.AstSelect) -> str:
        from_parts = []
        extra_where = []
        outer_scan_alias = self.scan_alias
        for item in select.from_items:
            rendered, conjuncts = self.from_item(item)
            from_parts.append(rendered)
            extra_where.extend(conjuncts)
        try:
            parts = ["select"]
            if select.distinct:
                parts.append("distinct")
            parts.append(", ".join(self.select_item(item) for item in select.items))
            parts.append("from " + ", ".join(from_parts))
            where = extra_where
            if select.where is not None:
                where = where + [self.expr(select.where)]
            if where:
                parts.append("where " + " and ".join(f"({w})" for w in where))
            if select.group_by:
                keys = [self.qualify(k) for k in select.group_by]
                parts.append("group by " + ", ".join(keys))
            if select.having is not None:
                parts.append("having " + self.expr(select.having))
            return " ".join(parts)
        finally:
            self.scan_alias = outer_scan_alias

    def select_item(self, item: A.AstSelectItem) -> str:
        if isinstance(item.expression, A.AstStar):
            qualifier = item.expression.qualifier
            return f"{qualifier}.*" if qualifier else "*"
        rendered = self.expr(item.expression)
        if item.alias:
            return f"{rendered} as {item.alias}"
        return rendered

    def from_item(self, item: A.AstNode) -> tuple[str, list[str]]:
        """Render one FROM item; also returns WHERE conjuncts it requires
        (group-variable correlation)."""
        if isinstance(item, A.AstTableRef):
            if self.group_var is not None and item.name == self.group_var:
                alias = self.fresh_alias()
                self.scan_alias = alias
                return f"{OUTER_CTE} as {alias}", self.correlation(alias)
            if item.alias and item.alias != item.name:
                return f"{item.name} as {item.alias}", []
            return item.name, []
        if isinstance(item, A.AstDerivedTable):
            inner = item.query
            if item.column_names:
                inner = _rename_query_columns(inner, item.column_names)
            return f"({self.query(inner)}) as {item.alias}", []
        if isinstance(item, A.AstJoin):
            left, left_extra = self.from_item(item.left)
            right, right_extra = self.from_item(item.right)
            extra = left_extra + right_extra
            if item.condition is None:
                return f"{left} cross join {right}", extra
            return f"{left} join {right} on {self.expr(item.condition)}", extra
        raise OracleUnsupportedError(f"FROM item {type(item).__name__}")

    # -- expressions --------------------------------------------------

    def literal(self, value) -> str:
        if value is None:
            return "null"
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, str):
            return "'" + value.replace("'", "''") + "'"
        if isinstance(value, float):
            return repr(value)
        return str(value)

    def expr(self, node: A.AstExpression) -> str:
        if isinstance(node, A.AstColumn):
            return self.qualify(node.name)
        if isinstance(node, A.AstLiteral):
            return self.literal(node.value)
        if isinstance(node, A.AstUnary):
            if node.op == "not":
                return f"(not {self.expr(node.operand)})"
            return f"(- {self.expr(node.operand)})"
        if isinstance(node, A.AstBinary):
            return f"({self.expr(node.left)} {node.op} {self.expr(node.right)})"
        if isinstance(node, A.AstIsNull):
            word = "is not null" if node.negated else "is null"
            return f"({self.expr(node.operand)} {word})"
        if isinstance(node, A.AstBetween):
            word = "not between" if node.negated else "between"
            return (
                f"({self.expr(node.operand)} {word} "
                f"{self.expr(node.low)} and {self.expr(node.high)})"
            )
        if isinstance(node, A.AstInList):
            word = "not in" if node.negated else "in"
            items = ", ".join(self.expr(i) for i in node.items)
            return f"({self.expr(node.operand)} {word} ({items}))"
        if isinstance(node, A.AstInSubquery):
            word = "not in" if node.negated else "in"
            return f"({self.expr(node.operand)} {word} ({self.query(node.subquery)}))"
        if isinstance(node, A.AstExists):
            prefix = "not exists" if node.negated else "exists"
            return f"({prefix} ({self.query(node.subquery)}))"
        if isinstance(node, A.AstScalarSubquery):
            return f"({self.query(node.subquery)})"
        if isinstance(node, A.AstFunction):
            return self.function(node)
        if isinstance(node, A.AstCase):
            parts = ["case"]
            for condition, value in node.whens:
                parts.append(f"when {self.expr(condition)} then {self.expr(value)}")
            if node.default is not None:
                parts.append(f"else {self.expr(node.default)}")
            parts.append("end")
            return " ".join(parts)
        raise OracleUnsupportedError(f"expression {type(node).__name__}")

    def function(self, node: A.AstFunction) -> str:
        name = node.name.lower()
        if node.star:
            return "count(*)"
        args = [self.expr(arg) for arg in node.args]
        if name in AGGREGATE_NAMES or name in _DIRECT_FUNCTIONS:
            prefix = "distinct " if node.distinct else ""
            return f"{name}({prefix}{', '.join(args)})"
        if name == "concat":
            # Engine concat coerces via str(); SQLite || coerces numerics
            # the same way for the int/float/text values the fuzzer emits.
            return "(" + " || ".join(args) + ")"
        raise OracleUnsupportedError(f"scalar function {node.name!r}")


def _rename_query_columns(query: A.AstQuery, names: tuple[str, ...]) -> A.AstQuery:
    """Push ``AS t(a, b)`` column aliases down onto select items.

    SQLite has no derived-table column-alias syntax, so the names become
    item aliases on *every* union branch (only the first matters to
    SQLite; renaming all is harmless and keeps the rewrite uniform).
    """
    selects = []
    for select in query.selects:
        if any(isinstance(item.expression, A.AstStar) for item in select.items):
            raise OracleUnsupportedError("column aliases over SELECT *")
        if len(select.items) != len(names):
            raise OracleUnsupportedError(
                f"{len(names)} column aliases for {len(select.items)} items"
            )
        items = tuple(
            A.AstSelectItem(expression=item.expression, alias=name)
            for item, name in zip(select.items, names)
        )
        selects.append(_replace(select, items=items))
    return _replace(query, selects=tuple(selects))


def _replace(node, **changes):
    from dataclasses import replace

    return replace(node, **changes)


class _GApplyLowering:
    """Expand one top-level gapply select into the CTE encoding."""

    def __init__(self, select: A.AstSelect):
        if select.group_variable is None or not select.group_by:
            raise OracleUnsupportedError("gapply without `group by .. : var`")
        if select.distinct:
            raise OracleUnsupportedError("DISTINCT over gapply output")
        if select.having is not None:
            raise OracleUnsupportedError("HAVING on the gapply outer block")
        self.select = select
        self.keys = tuple(_bare(k) for k in select.group_by)
        self.group_var = select.group_variable
        self.alias_counter = [0]

    def writer(self) -> _Writer:
        return _Writer(self.group_var, self.keys, self.alias_counter)

    def sql(self) -> str:
        outer = self._outer_sql()
        keys = f"select distinct {', '.join(self.keys)} from {OUTER_CTE}"
        pgq = self.select.gapply.query
        if pgq.limit is not None or pgq.order_by:
            raise OracleUnsupportedError("ORDER BY / LIMIT in a per-group query")
        connector = " union all " if pgq.union_all else " union "
        branches = connector.join(self._branch(s) for s in pgq.selects)
        return (
            f"with {OUTER_CTE} as ({outer}), {KEYS_CTE} as ({keys}) {branches}"
        )

    def _outer_sql(self) -> str:
        # The outer block feeding the partitioning: plain SQL, no group
        # variable in scope yet.
        plain = _Writer()
        from_parts = []
        for item in self.select.from_items:
            rendered, extra = plain.from_item(item)
            assert not extra
            from_parts.append(rendered)
        sql = "select * from " + ", ".join(from_parts)
        if self.select.where is not None:
            sql += " where " + plain.expr(self.select.where)
        return sql

    def _key_items(self) -> str:
        return ", ".join(f"{KEYS_CTE}.{k}" for k in self.keys)

    def _branch(self, branch: A.AstSelect) -> str:
        if branch.gapply is not None:
            raise OracleUnsupportedError("nested gapply")
        is_aggregate = not branch.group_by and any(
            contains_aggregate(item.expression) for item in branch.items
        )
        if is_aggregate:
            return self._aggregate_branch(branch)
        return self._row_branch(branch)

    def _aggregate_branch(self, branch: A.AstSelect) -> str:
        """Scalar-aggregate branch: one row per group, each aggregate item
        its own correlated scalar subquery over ``__outer``."""
        if branch.having is not None:
            raise OracleUnsupportedError("HAVING in a scalar-aggregate branch")
        items = []
        for item in branch.items:
            expression = item.expression
            if contains_aggregate(expression):
                items.append(self._scalar_aggregate(branch, expression))
            elif _references_columns(expression):
                # The engine's binder rejects these too; mirror that.
                raise OracleUnsupportedError(
                    "non-aggregated column in a scalar-aggregate select"
                )
            else:
                items.append(self.writer().expr(expression))
        key_items = self._key_items()
        all_items = ", ".join([key_items] + items) if items else key_items
        return f"select {all_items} from {KEYS_CTE}"

    def _scalar_aggregate(self, branch: A.AstSelect, expression) -> str:
        writer = self.writer()
        alias = writer.fresh_alias()
        writer.scan_alias = alias
        conjuncts = writer.correlation(alias)
        from_parts = [f"{OUTER_CTE} as {alias}"]
        for item in branch.from_items:
            if isinstance(item, A.AstTableRef) and item.name == self.group_var:
                continue  # the group variable became the correlated scan
            rendered, extra = writer.from_item(item)
            from_parts.append(rendered)
            conjuncts.extend(extra)
        if branch.where is not None:
            conjuncts.append(writer.expr(branch.where))
        where = " and ".join(f"({c})" for c in conjuncts)
        return (
            f"(select {writer.expr(expression)} "
            f"from {', '.join(from_parts)} where {where})"
        )

    def _row_branch(self, branch: A.AstSelect) -> str:
        writer = self.writer()
        from_parts = [KEYS_CTE]
        conjuncts: list[str] = []
        saw_group_var = False
        for item in branch.from_items:
            rendered, extra = writer.from_item(item)
            from_parts.append(rendered)
            conjuncts.extend(extra)
            if extra:
                saw_group_var = True
        if not saw_group_var:
            raise OracleUnsupportedError(
                "per-group branch does not scan the group variable"
            )
        if branch.where is not None:
            conjuncts.append(writer.expr(branch.where))
        parts = ["select"]
        if branch.distinct:
            parts.append("distinct")
        item_sql = [self._key_items()]
        item_sql += [writer.select_item(item) for item in branch.items]
        parts.append(", ".join(item_sql))
        parts.append("from " + ", ".join(from_parts))
        parts.append("where " + " and ".join(f"({c})" for c in conjuncts))
        if branch.group_by:
            keys = [f"{KEYS_CTE}.{k}" for k in self.keys]
            inner = [writer.qualify(k) for k in branch.group_by]
            parts.append("group by " + ", ".join(keys + inner))
        if branch.having is not None:
            parts.append("having " + writer.expr(branch.having))
        return " ".join(parts)
